"""Futures-style submit/gather API over any simulator.

Search algorithms often *generate* candidates incrementally but are happy
to *evaluate* them together.  :class:`EvalBatch` separates those phases:

>>> batch = EvalBatch(simulator)
>>> futures = [batch.submit(design) for design in candidates]
>>> evaluations = batch.gather()          # one parallel pool submission
>>> futures[0].result()                   # or per-future access

``gather`` routes through ``simulator.query_plan`` — so against an
:class:`~repro.engine.service.EngineSimulator` the whole batch is
deduplicated, cache-served and pushed through one vectorized
population synthesis (:mod:`repro.synth.batched`, chunked across pool
workers when available), while against a plain serial
:class:`~repro.opt.simulator.CircuitSimulator` it degrades to the exact
serial loop.  Either way the semantics (budget accounting, ``sim_index``
assignment, refusal behaviour) are identical — the backends are
bit-identical by construction.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..obs import trace
from ..opt.simulator import BudgetExhausted, CircuitSimulator, Evaluation
from ..prefix.graph import PrefixGraph

__all__ = ["EvalFuture", "EvalBatch"]


class EvalFuture:
    """Handle for one submitted design; resolved by ``EvalBatch.gather``."""

    __slots__ = ("_evaluation", "_refused", "_resolved")

    def __init__(self) -> None:
        self._evaluation: Optional[Evaluation] = None
        self._refused = False
        self._resolved = False

    def _resolve(self, evaluation: Optional[Evaluation]) -> None:
        self._evaluation = evaluation
        self._refused = evaluation is None
        self._resolved = True

    @property
    def done(self) -> bool:
        return self._resolved

    @property
    def refused(self) -> bool:
        """True when the budget refused this (new, unique) design."""
        return self._resolved and self._refused

    def result(self) -> Evaluation:
        """The evaluation; raises like the scalar ``query`` would have.

        ``BudgetExhausted`` if the design was refused, ``RuntimeError`` if
        the owning batch has not been gathered yet.
        """
        if not self._resolved:
            raise RuntimeError("future not resolved: call EvalBatch.gather() first")
        if self._evaluation is None:
            raise BudgetExhausted("simulation budget exhausted for this design")
        return self._evaluation


class EvalBatch:
    """Collects designs, evaluates them in one ``query_plan`` round-trip."""

    def __init__(self, simulator: CircuitSimulator) -> None:
        self.simulator = simulator
        self._designs: List[Union[PrefixGraph, np.ndarray]] = []
        self._futures: List[EvalFuture] = []
        self._gathered = False

    def __len__(self) -> int:
        return len(self._designs)

    def submit(self, design: Union[PrefixGraph, np.ndarray]) -> EvalFuture:
        """Enqueue a design; returns its future (resolved at gather time)."""
        if self._gathered:
            raise RuntimeError("batch already gathered; start a new EvalBatch")
        future = EvalFuture()
        self._designs.append(design)
        self._futures.append(future)
        return future

    def gather(self) -> List[Evaluation]:
        """Evaluate everything submitted; returns fulfilled evaluations.

        Resolves every future, then returns the non-refused evaluations in
        submission order — the same contract as ``query_many``.  Idempotent.
        """
        if not self._gathered:
            with trace.span("gather") as span:
                span.set_attr("submitted", len(self._designs))
                plan = self.simulator.query_plan(self._designs)
            for future, evaluation in zip(self._futures, plan):
                future._resolve(evaluation)
            self._gathered = True
        return [f._evaluation for f in self._futures if f._evaluation is not None]
