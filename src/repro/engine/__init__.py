"""``repro.engine`` — parallel, persistent, batched evaluation engine.

The single evaluation path for every search method in the reproduction.
The scalar oracle API (:class:`~repro.opt.simulator.CircuitSimulator`)
stays exactly as the paper's accounting needs it; underneath, the engine
adds the production machinery the ROADMAP's north star calls for:

``cache``
    :class:`EvaluationCache` — persistent canonical-key result store: an
    in-memory LRU front over append-only JSONL shards shared across runs,
    seeds, methods and benchmark invocations.  Keys combine the legalized
    graph's packed-bit identity with a SHA-256 *task fingerprint* of the
    synthesis-relevant configuration (``omega`` excluded, so delay-weight
    sweeps share synthesis results and cost is recomputed at serve time).
``pool``
    :class:`SynthesisPool` — multiprocessing workers that synthesize
    batches of unique legalized graphs in parallel, with a serial
    fallback.  Only metrics cross the process boundary; accounting stays
    in the parent.
``batch``
    :class:`EvalBatch` / :class:`EvalFuture` — futures-style
    ``submit``/``gather`` over any simulator.
``service``
    :class:`EvaluationEngine` (shared cache + pool + telemetry) and
    :class:`EngineSimulator`, the drop-in ``CircuitSimulator`` facade.
``telemetry``
    :class:`EngineTelemetry` — cache hit-rate, synthesis throughput and
    per-stage timers, snapshotted into every ``RunRecord``.

Guarantees
----------
Engine-backed runs are **bit-identical** to serial runs: batch
classification walks designs in submission order and assigns budget +
``sim_index`` before any parallel work starts, and a persistent-cache hit
still charges the budget (it removes physical synthesis work, not
paper-semantics accounting).  Warm caches therefore change wall-clock
only — a repeated benchmark invocation performs zero new synthesis calls
and produces the same curves.

Environment knobs
-----------------
``REPRO_CACHE_DIR``
    Directory for the persistent disk cache.  Unset (the default) keeps
    the cache memory-only.  Format: ``<dir>/<task-fingerprint>.jsonl``,
    one ``{"k": <hex packed grid>, "a": <area_um2>, "d": <delay_ns>}``
    record per line, append-only, last-writer-wins, crash-tolerant.
``REPRO_ENGINE_WORKERS``
    Default worker-process count for :class:`SynthesisPool` (1 = serial,
    no processes spawned).  Explicit constructor arguments win.
"""

from .batch import EvalBatch, EvalFuture
from .cache import EvaluationCache, default_cache_dir, task_fingerprint
from .pool import SynthesisPool, default_worker_count
from .service import EngineSimulator, EvaluationEngine
from .telemetry import EngineTelemetry, stage

__all__ = [
    "EvaluationEngine",
    "EngineSimulator",
    "EvaluationCache",
    "task_fingerprint",
    "default_cache_dir",
    "SynthesisPool",
    "default_worker_count",
    "EvalBatch",
    "EvalFuture",
    "EngineTelemetry",
    "stage",
]
