"""Throughput, hit-rate and per-stage timing counters for the engine.

One :class:`EngineTelemetry` instance is a thread-safe bag of counters and
stage timers.  The engine keeps a global aggregate across every simulator
it backs; each :class:`~repro.engine.service.EngineSimulator` additionally
owns a per-run instance whose snapshot lands in
:class:`~repro.opt.results.RunRecord.telemetry`, so every figure/table
bench can report cache hit-rates and synthesis throughput alongside the
paper's sample-efficiency numbers.

Since the :mod:`repro.obs` subsystem landed, the counters are cells in a
:class:`~repro.obs.metrics.MetricsRegistry` (exposed as ``.metrics``):
attribute reads, ``add()`` and ``as_dict()`` are unchanged in shape, but
the registry additionally keeps per-stage latency *histograms* (one
observation per timed call) and guards every snapshot with a single
registry-wide lock, so ``as_dict()`` — including its derived
``hit_rate``/``synth_throughput`` ratios — is computed from one atomic
snapshot.  The :func:`stage`/:func:`stage_all` helpers also emit
:mod:`repro.obs.trace` spans (marked ``attrs.stage``) whose durations
are *imposed* from the same single wall-clock measurement that feeds
``stage_seconds``, so a trace-derived report reproduces the engine's
stage totals exactly.

This module only imports the stdlib-only :mod:`repro.obs` cores (no
engine/core imports), so the rest of the codebase — core, baselines —
can record stage timings without creating import cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..obs import trace
from ..obs.metrics import MetricsRegistry

__all__ = [
    "EngineTelemetry",
    "KNOWN_HISTOGRAMS",
    "KNOWN_SPANS",
    "KNOWN_STAGES",
    "stage",
    "stage_all",
    "snapshot_delta",
]

#: ratio fields of :meth:`EngineTelemetry.as_dict` — meaningless to
#: difference, so :func:`snapshot_delta` drops them.
_DERIVED_KEYS = ("hit_rate", "synth_throughput")

#: shared attrs dict for stage spans (Span copies it; never mutated) —
#: a module constant so the tracing-off path allocates nothing.
#: thread-safe: written once at import time, read-only afterwards.
_STAGE_ATTRS = {"stage": True}

#: The canonical stage vocabulary.  :func:`stage`/:func:`stage_all`/
#: ``EngineTelemetry.time`` names must come from this set (plus the
#: dynamic ``train_kernel:<op>`` family from REPRO_PROFILE=1) — a typo'd
#: stage would silently create a fresh ``stage_seconds`` series, so the
#: static checker (``python -m repro check``) resolves every literal
#: stage name against this frozenset.
KNOWN_STAGES = frozenset(
    {
        "synthesis",
        "synthesis_vectorized",
        "synthesis_scalar",
        "synthesis_incremental",
        "train",
        "acquisition",
        "variation",
        "proposal",
        "decode",
        "latent_search",
    }
)

#: The canonical trace-span vocabulary (stage spans reuse KNOWN_STAGES).
#: Same discipline as KNOWN_STAGES: report tooling groups by these names,
#: so new span call sites register here and the checker enforces it.
KNOWN_SPANS = frozenset(
    {
        "experiment",
        "seed",
        "engine_evaluate",
        "evaluate",
        "evaluate_batch",
        "gather",
        "synthesize",
        "synthesize_chunk",
        "cache_load",
        "cache_refresh",
        "serve_job",
        "serve_evaluate",
        "bench",
    }
)

#: Named latency histograms fed through ``observe_latency`` (per-stage
#: ``stage_latency:<stage>`` histograms are derived, not listed).
KNOWN_HISTOGRAMS = frozenset(
    {"cache_lookup", "train_step_replay", "train_step_eager", "train_loop_replay"}
)


def snapshot_delta(before: Dict, after: Dict) -> Dict:
    """The counter increments between two ``as_dict`` snapshots.

    Returns only the keys that changed (nested stage dicts included), so
    the deltas attached to streaming
    :class:`~repro.api.events.EvaluationDone` events stay compact: a
    scalar cache-hit query shows ``{"queries": 1, "memory_hits": 1}``, a
    scalar synthesis shows its ``synth_calls`` and stage seconds, and a
    batched submission's whole-batch counters arrive with its first
    evaluation (the engine records batch work before announcing any of
    it).  Derived ratios (``hit_rate``, ``synth_throughput``) are
    dropped — they are not additive.  ``before`` may be empty (the first
    event's delta is the snapshot itself).
    """
    delta: Dict = {}
    for key, value in after.items():
        if key in _DERIVED_KEYS:
            continue
        if isinstance(value, dict):
            prev = before.get(key, {})
            sub = {
                name: amount - prev.get(name, 0)
                for name, amount in value.items()
                if amount - prev.get(name, 0) != 0
            }
            if sub:
                delta[key] = sub
        else:
            diff = value - before.get(key, 0)
            if diff != 0:
                delta[key] = diff
    return delta


class EngineTelemetry:
    """Counters for one engine (or one engine-backed run).

    Counter semantics
    -----------------
    ``queries``
        Designs submitted through ``query``/``query_plan``/``query_many``.
    ``run_hits``
        Served from the per-run memo (same design queried twice in a run).
    ``memory_hits`` / ``disk_hits``
        Served from the shared persistent cache (RAM front / loaded from
        the on-disk store).  Both still charge the run's budget — the
        cache removes *physical synthesis work*, never accounting.
    ``inflight_hits``
        Served by waiting on another thread's concurrent synthesis of the
        same design (parallel seeds).  Not a cache hit: the work happened,
        just once, elsewhere.
    ``synth_calls``
        Designs that actually went through the physical-synthesis flow.
    ``budget_refusals``
        Batch entries skipped because the budget was exhausted.
    ``batches`` / ``batch_designs``
        Parallel batch submissions and their total size.
    ``vector_batches`` / ``vector_designs``
        Batch submissions (and their total size) that went through the
        vectorized population fast path (:mod:`repro.synth.batched`)
        instead of per-graph scalar synthesis.  Stage timers mirror the
        split: ``synthesis`` is total synthesis wall-clock, with
        ``synthesis_vectorized`` / ``synthesis_scalar`` /
        ``synthesis_incremental`` attributing it to the execution paths.
    ``incremental_evals`` / ``cone_hits`` / ``full_fallbacks``
        Delta-aware population synthesis (:mod:`repro.synth.incremental`):
        designs that rode the delta pipeline, the fanin cones they shared
        with their chosen base, and designs that paid a full evaluation
        (anchors, guard failures, or ``REPRO_INCREMENTAL_EVAL=0``).
    ``train_*``
        Neural-training engine counters (CircuitVAE / latent-BO rounds):
        epochs trained vs restored from checkpoints, and the
        compiled-step compile/replay/fusion/fallback counts from
        :mod:`repro.nn.compile` (``train_fused_kernels`` counts ops
        folded into fused chains across compiles).
    ``loop_replays`` / ``stacked_replicas``
        Recorded-loop segments replayed (:mod:`repro.nn.loop`) and
        training rounds that ran as one replica of a stacked
        multi-model program (:mod:`repro.core.replicas`).
    """

    _COUNTERS = (
        "queries",
        "run_hits",
        "memory_hits",
        "disk_hits",
        "inflight_hits",
        "synth_calls",
        "budget_refusals",
        "batches",
        "batch_designs",
        "vector_batches",
        "vector_designs",
        "incremental_evals",
        "cone_hits",
        "full_fallbacks",
        "train_epochs",
        "train_epochs_skipped",
        "train_compiles",
        "train_replays",
        "train_fused_kernels",
        "train_fallbacks",
        "loop_replays",
        "stacked_replicas",
    )

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        #: every instrument shares the registry lock, so multi-counter
        #: snapshots (and the derived ratios computed from them) are
        #: atomic with respect to concurrent ``add`` calls.
        self._lock = self.metrics.lock
        self._counter_cells = {
            name: self.metrics.counter(name) for name in self._COUNTERS
        }
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}

    def __getattr__(self, name: str):
        # counters read straight from their registry cells; everything
        # else is a real attribute (this only fires on misses).
        cells = self.__dict__.get("_counter_cells")
        if cells is not None and name in cells:
            return cells[name].value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    def add(self, counter: str, amount: int = 1) -> None:
        """Atomically bump one of the named counters."""
        cell = self._counter_cells.get(counter)
        if cell is None:
            raise KeyError(f"unknown telemetry counter {counter!r}")
        cell.add(amount)

    def add_stage_time(self, name: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
            self.stage_calls[name] = self.stage_calls.get(name, 0) + calls
            if calls == 1:
                # single timed call -> one latency observation
                self.metrics.histogram("stage_latency:" + name).observe(seconds)

    def observe_latency(self, name: str, seconds: float) -> None:
        """One latency observation into a named registry histogram
        (cache lookups, train-step replays, ...)."""
        self.metrics.histogram(name).observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager charging wall-clock to stage ``name``."""
        with stage(self, name):
            yield

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Persistent-cache hits (memory + disk, excluding run memos)."""
        with self._lock:
            return self._counter_cells["memory_hits"].value + self._counter_cells["disk_hits"].value

    def hit_rate(self) -> float:
        """Fraction of charged evaluations served without synthesis."""
        with self._lock:
            hits = self._counter_cells["memory_hits"].value + self._counter_cells["disk_hits"].value
            charged = hits + self._counter_cells["synth_calls"].value
            return hits / charged if charged else 0.0

    def synth_throughput(self) -> float:
        """Physical synthesis calls per second of synthesis wall-clock."""
        with self._lock:
            seconds = self.stage_seconds.get("synthesis", 0.0)
            calls = self._counter_cells["synth_calls"].value
            return calls / seconds if seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (the shape stored in RunRecord).

        The whole payload — derived ratios included — is computed from
        values read under one lock acquisition, so the ratios can never
        disagree with the counters in the same snapshot.
        """
        with self._lock:
            payload: Dict[str, object] = {
                name: self._counter_cells[name].value for name in self._COUNTERS
            }
            payload["stage_seconds"] = dict(self.stage_seconds)
            payload["stage_calls"] = dict(self.stage_calls)
            synthesis_seconds = self.stage_seconds.get("synthesis", 0.0)
        cache_hits = payload["memory_hits"] + payload["disk_hits"]  # type: ignore[operator]
        payload["cache_hits"] = cache_hits
        charged = cache_hits + payload["synth_calls"]  # type: ignore[operator]
        payload["hit_rate"] = cache_hits / charged if charged else 0.0  # type: ignore[operator]
        payload["synth_throughput"] = (
            payload["synth_calls"] / synthesis_seconds if synthesis_seconds > 0 else 0.0  # type: ignore[operator]
        )
        return payload

    def merge(self, other: "EngineTelemetry") -> None:
        """Fold another telemetry instance into this one (counters,
        stage timers and the registry's latency histograms)."""
        self.metrics.merge(other.metrics)
        with other._lock:
            stage_seconds = dict(other.stage_seconds)
            stage_calls = dict(other.stage_calls)
        with self._lock:
            for name, seconds in stage_seconds.items():
                self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
                self.stage_calls[name] = (
                    self.stage_calls.get(name, 0) + stage_calls.get(name, 0)
                )

    def __repr__(self) -> str:
        return (
            f"EngineTelemetry(queries={self.queries}, hits={self.cache_hits}, "
            f"synth={self.synth_calls}, hit_rate={self.hit_rate():.2f})"
        )


@contextmanager
def stage(telemetry: Optional[EngineTelemetry], name: str) -> Iterator[None]:
    """Time a named stage, or do nothing when ``telemetry`` is None.

    Algorithms call ``stage(getattr(simulator, "telemetry", None), "train")``
    so the same code runs unchanged against the plain serial simulator.
    When tracing is active the stage also becomes a span whose duration
    is imposed from the same measurement charged to ``stage_seconds``.
    """
    if telemetry is None:
        yield
        return
    span = trace.span(name, _STAGE_ATTRS)
    span.__enter__()
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        telemetry.add_stage_time(name, elapsed)
        span.finish(elapsed=elapsed)


@contextmanager
def stage_all(telemetries, name: str) -> Iterator[None]:
    """Charge one wall-clock measurement to several telemetry sinks.

    ``None`` entries are skipped (same convention as :func:`stage`), so
    mixed sink lists — e.g. an engine aggregate plus an optional per-run
    instance — work without the caller filtering.
    """
    span = trace.span(name, _STAGE_ATTRS)
    span.__enter__()
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for telemetry in telemetries:
            if telemetry is not None:
                telemetry.add_stage_time(name, elapsed)
        span.finish(elapsed=elapsed)
