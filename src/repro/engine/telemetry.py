"""Throughput, hit-rate and per-stage timing counters for the engine.

One :class:`EngineTelemetry` instance is a thread-safe bag of counters and
stage timers.  The engine keeps a global aggregate across every simulator
it backs; each :class:`~repro.engine.service.EngineSimulator` additionally
owns a per-run instance whose snapshot lands in
:class:`~repro.opt.results.RunRecord.telemetry`, so every figure/table
bench can report cache hit-rates and synthesis throughput alongside the
paper's sample-efficiency numbers.

This module is deliberately dependency-free (no ``repro`` imports) so the
rest of the codebase — core, baselines — can record stage timings without
creating import cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["EngineTelemetry", "stage", "snapshot_delta"]

#: ratio fields of :meth:`EngineTelemetry.as_dict` — meaningless to
#: difference, so :func:`snapshot_delta` drops them.
_DERIVED_KEYS = ("hit_rate", "synth_throughput")


def snapshot_delta(before: Dict, after: Dict) -> Dict:
    """The counter increments between two ``as_dict`` snapshots.

    Returns only the keys that changed (nested stage dicts included), so
    the deltas attached to streaming
    :class:`~repro.api.events.EvaluationDone` events stay compact: a
    scalar cache-hit query shows ``{"queries": 1, "memory_hits": 1}``, a
    scalar synthesis shows its ``synth_calls`` and stage seconds, and a
    batched submission's whole-batch counters arrive with its first
    evaluation (the engine records batch work before announcing any of
    it).  Derived ratios (``hit_rate``, ``synth_throughput``) are
    dropped — they are not additive.  ``before`` may be empty (the first
    event's delta is the snapshot itself).
    """
    delta: Dict = {}
    for key, value in after.items():
        if key in _DERIVED_KEYS:
            continue
        if isinstance(value, dict):
            prev = before.get(key, {})
            sub = {
                name: amount - prev.get(name, 0)
                for name, amount in value.items()
                if amount - prev.get(name, 0) != 0
            }
            if sub:
                delta[key] = sub
        else:
            diff = value - before.get(key, 0)
            if diff != 0:
                delta[key] = diff
    return delta


class EngineTelemetry:
    """Counters for one engine (or one engine-backed run).

    Counter semantics
    -----------------
    ``queries``
        Designs submitted through ``query``/``query_plan``/``query_many``.
    ``run_hits``
        Served from the per-run memo (same design queried twice in a run).
    ``memory_hits`` / ``disk_hits``
        Served from the shared persistent cache (RAM front / loaded from
        the on-disk store).  Both still charge the run's budget — the
        cache removes *physical synthesis work*, never accounting.
    ``inflight_hits``
        Served by waiting on another thread's concurrent synthesis of the
        same design (parallel seeds).  Not a cache hit: the work happened,
        just once, elsewhere.
    ``synth_calls``
        Designs that actually went through the physical-synthesis flow.
    ``budget_refusals``
        Batch entries skipped because the budget was exhausted.
    ``batches`` / ``batch_designs``
        Parallel batch submissions and their total size.
    ``vector_batches`` / ``vector_designs``
        Batch submissions (and their total size) that went through the
        vectorized population fast path (:mod:`repro.synth.batched`)
        instead of per-graph scalar synthesis.  Stage timers mirror the
        split: ``synthesis`` is total synthesis wall-clock, with
        ``synthesis_vectorized`` / ``synthesis_scalar`` attributing it
        to the two execution paths.
    ``train_*``
        Neural-training engine counters (CircuitVAE / latent-BO rounds):
        epochs trained vs restored from checkpoints, and the
        compiled-step compile/replay/fusion/fallback counts from
        :mod:`repro.nn.compile` (``train_fused_kernels`` counts ops
        folded into fused chains across compiles).
    """

    _COUNTERS = (
        "queries",
        "run_hits",
        "memory_hits",
        "disk_hits",
        "inflight_hits",
        "synth_calls",
        "budget_refusals",
        "batches",
        "batch_designs",
        "vector_batches",
        "vector_designs",
        "train_epochs",
        "train_epochs_skipped",
        "train_compiles",
        "train_replays",
        "train_fused_kernels",
        "train_fallbacks",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, counter: str, amount: int = 1) -> None:
        """Atomically bump one of the named counters."""
        if counter not in self._COUNTERS:
            raise KeyError(f"unknown telemetry counter {counter!r}")
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def add_stage_time(self, name: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
            self.stage_calls[name] = self.stage_calls.get(name, 0) + calls

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager charging wall-clock to stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Persistent-cache hits (memory + disk, excluding run memos)."""
        return self.memory_hits + self.disk_hits

    def hit_rate(self) -> float:
        """Fraction of charged evaluations served without synthesis."""
        charged = self.cache_hits + self.synth_calls
        return self.cache_hits / charged if charged else 0.0

    def synth_throughput(self) -> float:
        """Physical synthesis calls per second of synthesis wall-clock."""
        seconds = self.stage_seconds.get("synthesis", 0.0)
        return self.synth_calls / seconds if seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (the shape stored in RunRecord)."""
        with self._lock:
            payload: Dict[str, object] = {
                name: getattr(self, name) for name in self._COUNTERS
            }
            payload["stage_seconds"] = dict(self.stage_seconds)
            payload["stage_calls"] = dict(self.stage_calls)
        payload["cache_hits"] = payload["memory_hits"] + payload["disk_hits"]  # type: ignore[operator]
        payload["hit_rate"] = self.hit_rate()
        payload["synth_throughput"] = self.synth_throughput()
        return payload

    def merge(self, other: "EngineTelemetry") -> None:
        """Fold another telemetry instance into this one."""
        snapshot = other.as_dict()
        for name in self._COUNTERS:
            self.add(name, int(snapshot[name]))
        for name, seconds in snapshot["stage_seconds"].items():  # type: ignore[union-attr]
            self.add_stage_time(
                name, float(seconds), calls=int(snapshot["stage_calls"][name])  # type: ignore[index]
            )

    def __repr__(self) -> str:
        return (
            f"EngineTelemetry(queries={self.queries}, hits={self.cache_hits}, "
            f"synth={self.synth_calls}, hit_rate={self.hit_rate():.2f})"
        )


@contextmanager
def stage(telemetry: Optional[EngineTelemetry], name: str) -> Iterator[None]:
    """Time a named stage, or do nothing when ``telemetry`` is None.

    Algorithms call ``stage(getattr(simulator, "telemetry", None), "train")``
    so the same code runs unchanged against the plain serial simulator.
    """
    if telemetry is None:
        yield
        return
    with telemetry.time(name):
        yield


@contextmanager
def stage_all(telemetries, name: str) -> Iterator[None]:
    """Charge one wall-clock measurement to several telemetry sinks."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for telemetry in telemetries:
            telemetry.add_stage_time(name, elapsed)
