"""Persistent, canonical-key evaluation cache shared across runs.

The paper charges one simulation per *unique legalized circuit*; a real
deployment memoizes synthesis results fleet-wide so re-running a sweep, a
different seed, or a different method never re-synthesizes a design it
has already measured.  This module provides that store:

* **Canonical keys** — a design is identified by the packed bits of its
  legal prefix grid (:meth:`repro.prefix.graph.PrefixGraph.key`), so every
  encoding of the same circuit shares one entry.
* **Task fingerprints** — entries are namespaced by a SHA-256 fingerprint
  of everything that influences *synthesis*: bitwidth, circuit type, cell
  library, IO timing and flow options.  The cost weight ``omega`` is
  deliberately **excluded** — cost is recomputed from the stored
  area/delay at serve time, so omega sweeps reuse each other's synthesis
  results.
* **Two tiers** — an in-memory LRU front (bounded by ``memory_limit``)
  over an append-only JSONL file per fingerprint under ``cache_dir``
  (default: the ``REPRO_CACHE_DIR`` environment variable; unset means
  memory-only).

Disk format: ``<cache_dir>/<fingerprint>.jsonl``, one record per line::

    {"k": "<hex of packed grid bits>", "a": <area_um2>, "d": <delay_ns>,
     "t": <unix seconds written>}

Append-only and last-writer-wins, so concurrent processes can share a
directory; a truncated or otherwise corrupt line (crash mid-append,
bit rot, manual edits) is skipped with a ``RuntimeWarning`` on load,
and duplicate keys resolve to the newest record.  ``t`` feeds the
age-eviction policy of :mod:`repro.serve.compact`; readers ignore it
(and any other unknown key), so shards written before it existed stay
loadable.

Sharing with external writers is incremental: each instance remembers
how far into every shard it has parsed, so a miss against a shard that
another process (a daemon, a parallel sweep) has since appended to only
parses the *new* tail — a long-lived daemon never re-reads its whole
history to discover one new record.  A shard that *shrank* (another
process compacted it) is detected the same way and triggers one full
reload.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import warnings
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..obs import trace

__all__ = [
    "task_fingerprint",
    "ConeBaseTier",
    "EvaluationCache",
    "default_cache_dir",
]

#: (area_um2, delay_ns) — everything synthesis produces that Evaluation needs.
Metrics = Tuple[float, float]

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[str]:
    """The cache directory named by ``$REPRO_CACHE_DIR`` (None = disabled)."""
    value = os.environ.get(_ENV_CACHE_DIR, "").strip()
    return value or None


def task_fingerprint(task) -> str:
    """Stable hex digest of a task's synthesis-relevant configuration.

    Two tasks with the same fingerprint produce bit-identical
    :class:`~repro.synth.physical.PhysicalResult` metrics for any graph,
    so their cache entries are interchangeable.  ``delay_weight`` and the
    display ``name`` are excluded on purpose (see module docstring).
    """
    library = task.library
    payload = {
        "n": task.n,
        "circuit_type": task.circuit_type,
        "library": {
            "name": library.name,
            "tau_ns": library.tau_ns,
            "wire_cap_per_um": library.wire_cap_per_um,
            "bit_pitch_um": library.bit_pitch_um,
            "row_height_um": library.row_height_um,
            "cells": sorted(
                (
                    c.name,
                    c.function,
                    c.drive,
                    c.area,
                    c.input_cap,
                    c.logical_effort,
                    c.intrinsic_delay,
                )
                for c in (library.cell(name) for name in sorted(library._cells))
            ),
        },
        "io_timing": {
            "input_arrival": sorted(task.io_timing.input_arrival.items()),
            "output_margin": sorted(task.io_timing.output_margin.items()),
        },
        "options": {
            "max_fanout": task.options.max_fanout,
            "sizing_passes": task.options.sizing_passes,
            "area_recovery": task.options.area_recovery,
            "slack_threshold": task.options.slack_threshold,
            "mapping_style": task.options.mapping_style,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class EvaluationCache:
    """Two-tier (LRU memory / JSONL disk) store of synthesis metrics.

    Thread-safe; one instance is shared by every simulator an engine
    backs, including thread-parallel per-seed runs.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memory_limit: int = 200_000,
    ) -> None:
        if memory_limit < 1:
            raise ValueError("memory_limit must be positive")
        self.cache_dir = cache_dir
        self.memory_limit = memory_limit
        self._lock = threading.RLock()
        # (fingerprint, key) -> (metrics, loaded_from_disk)
        self._memory: "OrderedDict[Tuple[str, bytes], Tuple[Metrics, bool]]" = (
            OrderedDict()
        )
        self._loaded_fingerprints: set = set()
        # Byte offset of each key's latest record in its disk shard.
        # Entries evicted from the LRU front stay findable here, so a
        # memory miss seeks straight to the one record instead of
        # becoming a silent re-synthesis (or a full-shard rescan).
        self._disk_offsets: Dict[str, Dict[bytes, int]] = {}
        # How far into each shard this instance has parsed; external
        # appends beyond this point are picked up incrementally by
        # _refresh_fingerprint, never by re-reading the whole file.
        self._read_positions: Dict[str, int] = {}
        # Lines parsed so far per shard, so corrupt-line warnings from
        # incremental refreshes still report absolute line numbers.
        self._line_counts: Dict[str, int] = {}
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{fingerprint}.jsonl")

    def _load_fingerprint(self, fingerprint: str) -> None:
        """Pull one fingerprint's disk shard into the memory front."""
        self._loaded_fingerprints.add(fingerprint)
        if not self.cache_dir:
            return
        path = self._path(fingerprint)
        if not os.path.exists(path):
            return
        # Disk-shard loads are the engine's only bulk cache I/O — worth a
        # span of their own when a run is traced (near-free otherwise).
        with trace.span("cache_load") as span:
            span.set_attr("fingerprint", fingerprint[:16])
            offsets = self._disk_offsets.setdefault(fingerprint, {})
            position = 0
            loaded = 0
            lineno = 0
            with open(path, "rb") as handle:
                for raw in handle:
                    lineno += 1
                    parsed = self._parse_line(raw, f"{path}:{lineno}")
                    if parsed is not None:  # skip crashed-writer truncation
                        key, metrics = parsed
                        offsets[key] = position  # last record wins
                        self._insert(fingerprint, key, metrics, from_disk=True)
                        loaded += 1
                    position += len(raw)
            self._read_positions[fingerprint] = position
            self._line_counts[fingerprint] = lineno
            span.set_attr("entries", loaded)

    @staticmethod
    def _parse_line(raw: bytes, where: str = "unknown location"):
        """One JSONL record, or None (with a warning) if unparseable.

        Corrupt lines — a crashed writer's truncated tail, bit rot, a
        hand-edited shard — must never take the engine down: the record
        is skipped and synthesis regenerates it on demand.  ``where``
        names the shard path and line (or byte offset) so the warning
        points at the exact record even with many shards on disk.
        """
        line = raw.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
            return bytes.fromhex(record["k"]), (
                float(record["a"]),
                float(record["d"]),
            )
        except (ValueError, KeyError, TypeError):
            preview = line[:60].decode("utf-8", errors="replace")
            warnings.warn(
                f"skipping corrupt evaluation-cache line at {where}: "
                f"{preview!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def _read_at(
        self, fingerprint: str, key: bytes, offset: int
    ) -> Optional[Metrics]:
        """One record by byte offset; None if absent or the offset is stale."""
        path = self._path(fingerprint)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            handle.seek(offset)
            parsed = self._parse_line(
                handle.readline(), f"{path} (byte offset {offset})"
            )
        if parsed is not None and parsed[0] == key:
            return parsed[1]
        return None

    def _reload_entry(self, fingerprint: str, key: bytes) -> Optional[Metrics]:
        """Re-read one LRU-evicted record from its shard by byte offset."""
        offset = self._disk_offsets.get(fingerprint, {}).get(key)
        if self.cache_dir is None or offset is None:
            return None
        metrics = self._read_at(fingerprint, key, offset)
        if metrics is not None:
            return metrics
        # Offset went stale (e.g. another process compacted the shard):
        # fall back to one full rescan, rebuilding the index.
        self._disk_offsets.pop(fingerprint, None)
        self._read_positions.pop(fingerprint, None)
        self._line_counts.pop(fingerprint, None)
        self._loaded_fingerprints.discard(fingerprint)
        self._load_fingerprint(fingerprint)
        entry = self._memory.get((fingerprint, key))
        if entry is not None:
            return entry[0]
        # Rescanned but LRU-bounded out of memory again: the rebuilt
        # offset index is fresh, so one more seek settles it.
        offset = self._disk_offsets.get(fingerprint, {}).get(key)
        if offset is None:
            return None
        return self._read_at(fingerprint, key, offset)

    def _refresh_fingerprint(self, fingerprint: str) -> bool:
        """Catch up with external writers on an already-loaded shard.

        Parses only the bytes appended since this instance last read the
        shard (the incremental path a long-lived daemon relies on); a
        shard that shrank — another process compacted it — triggers one
        full reload instead.  Returns True when anything changed.
        """
        if not self.cache_dir:
            return False
        path = self._path(fingerprint)
        position = self._read_positions.get(fingerprint, 0)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size < position:
            # Shrunk underneath us: compaction rewrote the shard, every
            # remembered offset is void — rescan from byte 0.
            self._disk_offsets.pop(fingerprint, None)
            self._read_positions.pop(fingerprint, None)
            self._line_counts.pop(fingerprint, None)
            self._loaded_fingerprints.discard(fingerprint)
            self._load_fingerprint(fingerprint)
            return True
        if size == position:
            return False
        offsets = self._disk_offsets.setdefault(fingerprint, {})
        loaded = 0
        lineno = self._line_counts.get(fingerprint, 0)
        with trace.span("cache_refresh") as span:
            span.set_attr("fingerprint", fingerprint[:16])
            with open(path, "rb") as handle:
                handle.seek(position)
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        # A concurrent writer's half-appended tail: not
                        # corruption, just early — re-read next refresh.
                        break
                    lineno += 1
                    parsed = self._parse_line(raw, f"{path}:{lineno}")
                    if parsed is not None:
                        key, metrics = parsed
                        offsets[key] = position
                        self._insert(fingerprint, key, metrics, from_disk=True)
                        loaded += 1
                    position += len(raw)
            span.set_attr("entries", loaded)
        self._read_positions[fingerprint] = position
        self._line_counts[fingerprint] = lineno
        return True

    def _insert(
        self, fingerprint: str, key: bytes, metrics: Metrics, from_disk: bool
    ) -> None:
        memory_key = (fingerprint, key)
        self._memory[memory_key] = (metrics, from_disk)
        self._memory.move_to_end(memory_key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, fingerprint: str, key: bytes) -> Optional[Metrics]:
        """Look up metrics; None on miss.  See :meth:`get_with_origin`."""
        hit = self.get_with_origin(fingerprint, key)
        return hit[0] if hit is not None else None

    def get_with_origin(
        self, fingerprint: str, key: bytes
    ) -> Optional[Tuple[Metrics, str]]:
        """Look up metrics plus where they came from: 'memory' or 'disk'.

        The first hit on an entry loaded from disk reports ``'disk'``;
        subsequent hits report ``'memory'`` (telemetry uses this to
        distinguish warm-RAM from warm-disk behaviour).
        """
        with self._lock:
            if fingerprint not in self._loaded_fingerprints:
                self._load_fingerprint(fingerprint)
            entry = self._memory.get((fingerprint, key))
            if entry is None:
                # Evicted from the LRU front but still on disk: re-read it
                # rather than letting the miss trigger a re-synthesis.
                metrics = self._reload_entry(fingerprint, key)
                if metrics is None and self._refresh_fingerprint(fingerprint):
                    # An external writer grew (or compacted) the shard
                    # since our last read; the refresh may have brought
                    # the key in.
                    entry = self._memory.get((fingerprint, key))
                    if entry is None:
                        metrics = self._reload_entry(fingerprint, key)
                if entry is None:
                    if metrics is None:
                        return None
                    self._insert(fingerprint, key, metrics, from_disk=True)
                    entry = self._memory[(fingerprint, key)]
            metrics, from_disk = entry
            self._memory[(fingerprint, key)] = (metrics, False)
            self._memory.move_to_end((fingerprint, key))
            return metrics, ("disk" if from_disk else "memory")

    def put(self, fingerprint: str, key: bytes, metrics: Metrics) -> None:
        """Store metrics in memory and append them to the disk shard."""
        metrics = (float(metrics[0]), float(metrics[1]))
        with self._lock:
            self._insert(fingerprint, key, metrics, from_disk=False)
            if self.cache_dir:
                path = self._path(fingerprint)
                line = json.dumps(
                    {
                        "k": key.hex(),
                        "a": metrics[0],
                        "d": metrics[1],
                        # written-at stamp for compaction age eviction
                        "t": round(time.time(), 3),
                    }
                )
                # getsize-then-append gives this process an exact offset;
                # a concurrent writer can only make it stale, which
                # _reload_entry detects and repairs with a rescan.
                offset = os.path.getsize(path) if os.path.exists(path) else 0
                with open(path, "a") as handle:
                    handle.write(line + "\n")
                self._disk_offsets.setdefault(fingerprint, {})[key] = offset
                if offset == 0:
                    # We created the shard, so we know its entire content:
                    # nothing on disk predates us that a load could find.
                    self._loaded_fingerprints.add(fingerprint)
                # Our own append needs no future re-parse: advance the
                # incremental-read position over it iff we were current
                # (if external appends are pending, leave it so the next
                # refresh picks them up).
                if (
                    fingerprint in self._loaded_fingerprints
                    and self._read_positions.get(fingerprint, 0) == offset
                ):
                    self._read_positions[fingerprint] = offset + len(line) + 1
                    self._line_counts[fingerprint] = (
                        self._line_counts.get(fingerprint, 0) + 1
                    )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, fingerprint_key: Tuple[str, bytes]) -> bool:
        return self.get(*fingerprint_key) is not None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries_in_memory": len(self._memory),
                "fingerprints_loaded": len(self._loaded_fingerprints),
                "cache_dir": self.cache_dir,
                "memory_limit": self.memory_limit,
            }

    def __repr__(self) -> str:
        where = self.cache_dir or "memory-only"
        return f"EvaluationCache({where}, entries={len(self)})"


class ConeBaseTier:
    """Sub-graph base tier: recently evaluated graphs per task fingerprint.

    The exact-key cache above dedups *identical* circuits; this tier
    remembers the **structures** the engine has recently synthesized so
    the next population can ride the delta pipeline against them even
    when no candidate repeats exactly.  Entries are namespaced by task
    fingerprint and deduped by canonical graph key; the cone-hash
    matching itself (multiset overlap of Merkle fanin-cone keys, see
    :mod:`repro.prefix.canonical`) happens in
    :func:`repro.synth.incremental.plan_deltas`, which receives these
    graphs as ``base_hints``.

    Bounded to ``per_task_limit`` graphs per fingerprint (LRU) because
    every hint costs one counter comparison per candidate at planning
    time — a handful of recent bases captures population overlap across
    engine batches without planning cost creeping toward O(n^2).
    """

    def __init__(self, per_task_limit: int = 8) -> None:
        if per_task_limit < 1:
            raise ValueError("per_task_limit must be positive")
        self.per_task_limit = per_task_limit
        self._lock = threading.Lock()
        self._bases: Dict[str, "OrderedDict[bytes, object]"] = {}

    def bases(self, fingerprint: str) -> list:
        """Recently remembered graphs for one task, newest first."""
        with self._lock:
            tier = self._bases.get(fingerprint)
            if not tier:
                return []
            return list(reversed(tier.values()))

    def remember(self, fingerprint: str, graphs) -> None:
        """Record evaluated graphs as future delta bases (LRU per task)."""
        with self._lock:
            tier = self._bases.setdefault(fingerprint, OrderedDict())
            for graph in graphs:
                key = graph.key()
                if key in tier:
                    tier.move_to_end(key)
                else:
                    tier[key] = graph
            while len(tier) > self.per_task_limit:
                tier.popitem(last=False)

    def __repr__(self) -> str:
        with self._lock:
            total = sum(len(t) for t in self._bases.values())
        return (
            f"ConeBaseTier(tasks={len(self._bases)}, bases={total}, "
            f"limit={self.per_task_limit})"
        )
