"""Multiprocessing synthesis workers + the vectorized batch fast path.

Physical synthesis is pure Python and CPU-bound, so batches of *unique*
legalized graphs are executed through the fastest available backend.  The
pool only ever sees (task, graphs) and returns (area, delay) metric
tuples — budget accounting, caching and history stay in the parent, and
every backend is bit-identical to serial per-graph synthesis, so the
choice changes wall-clock only:

* **vectorized** (default for any batch of >= 2 graphs): the whole
  population goes through :meth:`CircuitTask.evaluate_many`
  (:mod:`repro.synth.batched`), one numpy-vectorized pass instead of N
  interpreter round-trips.  Set ``REPRO_VECTORIZED_EVAL=0`` to disable.
* **vectorized + pooled**: with multiple workers and a large enough
  batch, contiguous chunks are vectorized inside ``fork``'ed worker
  processes.
* **scalar / pooled scalar**: the reference per-graph loop, used for
  single designs or when the fast path is disabled.

Worker count comes from the constructor or the ``REPRO_ENGINE_WORKERS``
environment variable (default 1 = serial, no processes spawned).  Worker
processes start eagerly at construction — while the parent is still
single-threaded, which keeps fork safe under thread-parallel seed runs —
and the pool degrades to serial execution if process creation fails
(sandboxed environments).
"""

from __future__ import annotations

import functools
import itertools
import multiprocessing
import os
import sys
import threading
from typing import List, Optional, Sequence, Tuple

from ..circuits.task import CircuitTask
from ..obs import trace
from ..obs.trace import SpanContext, Tracer
from ..prefix.graph import PrefixGraph

__all__ = ["SynthesisPool", "default_worker_count", "vectorized_enabled"]

_ENV_WORKERS = "REPRO_ENGINE_WORKERS"
_ENV_VECTORIZED = "REPRO_VECTORIZED_EVAL"

#: The vectorized population fast path's contract, machine-checked by
#: ``python -m repro check``: :func:`vectorized_enabled` reads the kill
#: switch here, the scalar reference is :func:`_synth_job` (one
#: synthesis per graph — the loop ``synthesize_batch`` degrades to),
#: and ``benchmarks/bench_batched_eval.py`` gates the speedup while
#: asserting bit-identity against that scalar loop.
FAST_PATH_CONTRACT = {
    "kill_switch": "REPRO_VECTORIZED_EVAL",
    "reference": "_synth_job",
    "bench": "bench_batched_eval.py",
}

Metrics = Tuple[float, float]


def default_worker_count() -> int:
    """Worker count from ``$REPRO_ENGINE_WORKERS`` (default 1 = serial)."""
    value = os.environ.get(_ENV_WORKERS, "").strip()
    try:
        return max(int(value), 1) if value else 1
    except ValueError:
        return 1


def vectorized_enabled() -> bool:
    """Whether batches may use the vectorized fast path (default yes);
    ``REPRO_VECTORIZED_EVAL=0`` opts out (e.g. to benchmark against the
    scalar reference loop)."""
    return os.environ.get(_ENV_VECTORIZED, "").strip() != "0"


def _synth_job(task: CircuitTask, graph: PrefixGraph) -> Metrics:
    """Worker entry point: synthesize one graph, return its metrics."""
    result = task.synthesize(graph)
    return (result.area_um2, result.delay_ns)


def _synth_many_job(task: CircuitTask, graphs: Sequence[PrefixGraph]) -> List[Metrics]:
    """Worker entry point: vectorize one contiguous chunk of a batch."""
    return [
        (result.area_um2, result.delay_ns)
        for result in task.evaluate_many(graphs)
    ]


# -- traced worker entry points -----------------------------------------
# When the parent run is traced, each work item ships its parent span
# context (a picklable (trace_id, span_id) pair); the worker records its
# spans into a collecting Tracer and ships the dicts back alongside the
# metrics, and the parent re-emits them into its sink (Tracer.emit_raw).
# Span ids are prefixed per (worker pid, job) so they never collide with
# the parent's or another worker's inside one trace file.

# thread-safe: itertools.count.__next__ is atomic under the GIL, and
# each worker process owns its own copy (the prefix also embeds the pid).
_WORKER_JOB_SEQ = itertools.count(1)


def _worker_tracer(parent_ctx: Optional[SpanContext], trace_id: str) -> Tracer:
    trace.reset_in_child()  # drop any fork-inherited ambient tracer
    return Tracer(
        collect=True,
        trace_id=trace_id,
        id_prefix=f"w{os.getpid():x}j{next(_WORKER_JOB_SEQ):x}-",
    )


def _traced_synth_job(
    task: CircuitTask,
    parent_ctx: Optional[SpanContext],
    trace_id: str,
    graph: PrefixGraph,
) -> Tuple[Metrics, List[dict]]:
    tracer = _worker_tracer(parent_ctx, trace_id)
    with tracer.span("synthesize", parent=parent_ctx) as span:
        span.set_attr("graph", graph.key().hex()[:16])
        metrics = _synth_job(task, graph)
    return metrics, tracer.drain()


def _traced_synth_many_job(
    task: CircuitTask,
    parent_ctx: Optional[SpanContext],
    trace_id: str,
    graphs: Sequence[PrefixGraph],
) -> Tuple[List[Metrics], List[dict]]:
    tracer = _worker_tracer(parent_ctx, trace_id)
    with tracer.span("synthesize_chunk", parent=parent_ctx) as span:
        span.set_attr("chunk", len(graphs))
        metrics = _synth_many_job(task, graphs)
    return metrics, tracer.drain()


class SynthesisPool:
    """Lazily-created worker pool with a serial fallback.

    ``synthesize_batch`` preserves input order, so callers can zip the
    metrics back onto their graphs regardless of execution backend.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self._pool = None
        self._pool_broken = False
        self._pool_lock = threading.Lock()
        if self.workers > 1:
            # Create worker processes eagerly, while the parent is still
            # single-threaded: forking later from under parallel-seed
            # threads could snapshot held allocator/BLAS locks into the
            # children and deadlock them.
            self._ensure_pool()

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        # Locked: parallel-seed threads may race the first batch, and two
        # winners would leak a whole pool of worker processes.
        with self._pool_lock:
            if self._pool is not None or self._pool_broken:
                return self._pool
            try:
                # fork shares the already-imported repro modules with
                # workers, but is only safe on Linux — macOS exposes
                # "fork" too yet aborts in forked children that touch
                # Accelerate/ObjC, so everywhere else uses spawn (which
                # re-imports via PYTHONPATH).
                use_fork = (
                    sys.platform == "linux"
                    and "fork" in multiprocessing.get_all_start_methods()
                )
                context = multiprocessing.get_context(
                    "fork" if use_fork else "spawn"
                )
                self._pool = context.Pool(processes=self.workers)
            except (OSError, ValueError, RuntimeError):
                self._pool_broken = True  # sandboxed: fall back to serial
                self._pool = None
            return self._pool

    @property
    def parallel(self) -> bool:
        """Whether batches can actually run on worker processes."""
        return self.workers > 1 and not self._pool_broken

    # ------------------------------------------------------------------
    def execution_mode(self, count: int) -> str:
        """How a batch of ``count`` designs would execute right now:
        ``'vectorized'``, ``'pooled'`` or ``'serial'`` (telemetry uses
        this to attribute stage time without changing behaviour)."""
        if count >= 2 and vectorized_enabled():
            return "vectorized"
        if count > 1 and self.workers > 1 and not self._pool_broken:
            return "pooled"
        return "serial"

    def synthesize_batch(
        self, task: CircuitTask, graphs: Sequence[PrefixGraph]
    ) -> List[Metrics]:
        """Synthesize unique graphs, in order, on the fastest backend.

        Every backend produces bit-identical metrics (see
        :mod:`repro.synth.batched`), so routing is purely a wall-clock
        decision.
        """
        if not graphs:
            return []
        if self.execution_mode(len(graphs)) == "vectorized":
            graphs = list(graphs)
            # Big batches on a real pool: vectorize contiguous chunks in
            # parallel workers; otherwise vectorize in-process.
            if self.workers > 1 and len(graphs) >= 2 * self.workers:
                pool = self._ensure_pool()
                if pool is not None:
                    base, extra = divmod(len(graphs), self.workers)
                    chunks, start = [], 0
                    for worker in range(self.workers):
                        size = base + (1 if worker < extra else 0)
                        if size:
                            chunks.append(graphs[start : start + size])
                            start += size
                    tracer = trace.current_tracer()
                    try:
                        if tracer is not None:
                            job = functools.partial(
                                _traced_synth_many_job,
                                task,
                                tracer.current_context(),
                                tracer.trace_id,
                            )
                            pairs = pool.map(job, chunks)
                            for _, spans in pairs:
                                tracer.emit_raw(spans)
                            return [m for part, _ in pairs for m in part]
                        job = functools.partial(_synth_many_job, task)
                        parts = pool.map(job, chunks)
                        return [metrics for part in parts for metrics in part]
                    except (OSError, RuntimeError):
                        with self._pool_lock:
                            self._pool_broken = True
                            self._pool = None
            return _synth_many_job(task, graphs)
        if self.workers > 1 and len(graphs) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                # partial pickles the task once per chunk (not per graph);
                # the task's cell library dwarfs a packed grid.
                chunksize = max(1, len(graphs) // (self.workers * 4))
                tracer = trace.current_tracer()
                try:
                    if tracer is not None:
                        job = functools.partial(
                            _traced_synth_job,
                            task,
                            tracer.current_context(),
                            tracer.trace_id,
                        )
                        pairs = pool.map(job, graphs, chunksize=chunksize)
                        for _, spans in pairs:
                            tracer.emit_raw(spans)
                        return [metrics for metrics, _ in pairs]
                    job = functools.partial(_synth_job, task)
                    return pool.map(job, graphs, chunksize=chunksize)
                except (OSError, RuntimeError):
                    with self._pool_lock:
                        self._pool_broken = True
                        self._pool = None
        return [_synth_job(task, graph) for graph in graphs]

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "SynthesisPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        backend = "pool" if self.parallel else "serial"
        return f"SynthesisPool(workers={self.workers}, backend={backend})"
