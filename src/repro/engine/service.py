"""The evaluation engine and its drop-in simulator facade.

:class:`EvaluationEngine` owns the shared pieces — one persistent
:class:`~repro.engine.cache.EvaluationCache`, one
:class:`~repro.engine.pool.SynthesisPool`, one aggregate
:class:`~repro.engine.telemetry.EngineTelemetry` — and hands out
:class:`EngineSimulator` instances, one per (task, budget, run).

:class:`EngineSimulator` subclasses the plain
:class:`~repro.opt.simulator.CircuitSimulator`, so every existing caller
(Algorithm 1, all baselines, the runner, the benches) works unchanged.
Only the execution backend differs:

* single ``query`` misses are served through the persistent cache before
  falling back to synthesis;
* ``query_plan``/``query_many`` batches classify the whole batch first
  (run-memo hits, in-batch duplicates, budget refusals) and then
  synthesize the *unique new* graphs in one submission — by default one
  vectorized :mod:`repro.synth.batched` pass over the whole population
  (optionally chunked across pool workers), with telemetry splitting
  synthesis time into ``synthesis_vectorized`` / ``synthesis_scalar``.

Budget accounting is **identical** to serial execution by construction:
the classification pass walks designs in submission order and assigns
``sim_index`` before any parallel work starts, so ``history``,
``num_simulations`` and ``best_cost_curve`` are bit-identical whether a
batch ran on 1 or 16 workers, cold or against a warm disk cache.  A
persistent-cache hit still charges the run's budget — the cache
eliminates physical synthesis work, never paper-semantics accounting.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.task import CircuitTask
from ..obs import trace
from ..opt.simulator import CircuitSimulator, Evaluation
from ..prefix.graph import PrefixGraph
from ..synth.cost import cost_from_metrics
from ..synth.incremental import IncrementalStats, incremental_enabled
from .cache import (
    ConeBaseTier,
    EvaluationCache,
    default_cache_dir,
    task_fingerprint,
)
from .pool import SynthesisPool
from .telemetry import EngineTelemetry, stage_all


def _graph_tag(graph: PrefixGraph) -> str:
    """Short printable graph identity for span attributes."""
    return graph.key().hex()[:16]

__all__ = ["EvaluationEngine", "EngineSimulator"]

Metrics = Tuple[float, float]  # (area_um2, delay_ns)


class EvaluationEngine:
    """Shared cache + worker pool + telemetry behind any number of runs.

    Parameters
    ----------
    cache:
        An :class:`EvaluationCache` to share; built from ``cache_dir``
        (default ``$REPRO_CACHE_DIR``; unset = memory-only) when omitted.
    pool:
        A :class:`SynthesisPool` to share; built from ``workers``
        (default ``$REPRO_ENGINE_WORKERS``, i.e. 1 = serial) when omitted.
    """

    def __init__(
        self,
        cache: Optional[EvaluationCache] = None,
        pool: Optional[SynthesisPool] = None,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        if cache is None:
            cache = EvaluationCache(
                cache_dir=cache_dir if cache_dir is not None else default_cache_dir()
            )
        self.cache = cache
        self.pool = pool if pool is not None else SynthesisPool(workers)
        self.telemetry = EngineTelemetry()
        # Recently evaluated graphs per task fingerprint: delta bases for
        # the incremental synthesis path (repro.synth.incremental).
        self.cone_bases = ConeBaseTier()
        # In-flight synthesis registry: parallel seed threads that miss
        # the cache on the same design wait for the first thread's result
        # instead of synthesizing it again.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[Tuple[str, bytes], threading.Event] = {}

    # ------------------------------------------------------------------
    def simulator(
        self, task: CircuitTask, budget: Optional[int] = None
    ) -> "EngineSimulator":
        """A fresh engine-backed simulator for one run.

        When ``$REPRO_ENGINE_SOCKET`` names a live evaluation daemon
        (:mod:`repro.serve`), the simulator transparently routes its
        synthesis through it — budget accounting, history and records
        stay client-side and bit-identical either way, and the facade
        falls back to this in-process engine if the daemon goes away.
        """
        if os.environ.get("REPRO_ENGINE_SOCKET", "").strip():
            # Lazy import: repro.serve.client subclasses EngineSimulator,
            # so a top-level import would be a cycle.
            from ..serve.client import maybe_remote_simulator

            remote = maybe_remote_simulator(self, task, budget)
            if remote is not None:
                return remote
        return EngineSimulator(task, budget=budget, engine=self)

    def evaluate(
        self,
        task: CircuitTask,
        graphs: Sequence[PrefixGraph],
        telemetry: Optional[EngineTelemetry] = None,
        fingerprint: Optional[str] = None,
        structural_context: Sequence[PrefixGraph] = (),
    ) -> List[Tuple[float, float, float]]:
        """(cost, area, delay) for each graph, cache-first, pool-backed.

        ``graphs`` must already be legalized and unique; callers own
        dedup and budget accounting.  Results preserve input order.
        ``fingerprint`` lets long-lived callers (EngineSimulator) skip
        re-hashing the task configuration on every call.
        ``structural_context`` is extra, already-evaluated graphs the
        caller believes the batch shares structure with (e.g. the GA's
        parent population); they seed the incremental delta planner as
        base candidates but are never synthesized here.
        """
        if not graphs:
            return []
        sinks = [self.telemetry] + ([telemetry] if telemetry is not None else [])
        if fingerprint is None:
            fingerprint = task_fingerprint(task)

        with trace.span("engine_evaluate") as span:
            span.set_attr("batch", len(graphs))
            return self._evaluate(
                task, graphs, sinks, fingerprint, span, structural_context
            )

    def _evaluate(
        self,
        task: CircuitTask,
        graphs: Sequence[PrefixGraph],
        sinks: List[EngineTelemetry],
        fingerprint: str,
        span,
        structural_context: Sequence[PrefixGraph] = (),
    ) -> List[Tuple[float, float, float]]:
        """:meth:`evaluate`'s body, under an ``engine_evaluate`` span
        (the shared no-op span when tracing is off)."""
        metrics: List[Optional[Metrics]] = [None] * len(graphs)
        misses: List[int] = []
        lookup_start = time.perf_counter()
        for i, graph in enumerate(graphs):
            hit = self.cache.get_with_origin(fingerprint, graph.key())
            if hit is not None:
                metrics[i], origin = hit
                counter = "memory_hits" if origin == "memory" else "disk_hits"
                span.add_counter(counter)
                for sink in sinks:
                    sink.add(counter)
            else:
                misses.append(i)
        lookup_elapsed = time.perf_counter() - lookup_start
        for sink in sinks:
            sink.observe_latency("cache_lookup", lookup_elapsed)
        span.set_attr(
            "outcome",
            "hit" if not misses
            else ("miss" if len(misses) == len(graphs) else "partial"),
        )

        if misses:
            # Claim each missing key or find the thread already working on
            # it; only claimed keys are synthesized here, waited keys are
            # read from the cache once their owner finishes.
            owned: List[int] = []
            waited: List[Tuple[int, threading.Event]] = []
            with self._inflight_lock:
                for i in misses:
                    flight_key = (fingerprint, graphs[i].key())
                    event = self._inflight.get(flight_key)
                    if event is None:
                        self._inflight[flight_key] = threading.Event()
                        owned.append(i)
                    else:
                        waited.append((i, event))

            if owned:
                try:
                    # Re-check the cache under our claim: another thread
                    # may have finished a design between our miss scan
                    # and the claim (TOCTOU) — don't synthesize it twice.
                    still_owned: List[int] = []
                    for i in owned:
                        hit = self.cache.get(fingerprint, graphs[i].key())
                        if hit is not None:
                            metrics[i] = hit
                            span.add_counter("inflight_hits")
                            for sink in sinks:
                                sink.add("inflight_hits")
                        else:
                            still_owned.append(i)
                    if still_owned:
                        batch_graphs = [graphs[i] for i in still_owned]
                        mode = self.pool.execution_mode(len(batch_graphs))
                        # Delta-aware path: a vectorized in-process batch
                        # with enough designs to share structure.  A real
                        # worker pool keeps the chunked flow instead —
                        # splitting a population across processes would
                        # also split the shared cones the planner needs.
                        incremental = (
                            mode == "vectorized"
                            and incremental_enabled()
                            and len(batch_graphs) >= 2
                            and not self.pool.parallel
                        )
                        if incremental:
                            hints = list(structural_context)
                            hints += self.cone_bases.bases(fingerprint)
                            stats = IncrementalStats()
                            with stage_all(sinks, "synthesis"):
                                with stage_all(sinks, "synthesis_incremental"):
                                    results = task.evaluate_population(
                                        batch_graphs,
                                        base_hints=hints,
                                        stats=stats,
                                    )
                            fresh = [
                                (r.area_um2, r.delay_ns) for r in results
                            ]
                            span.set_attr("incremental", stats.incremental_evals)
                            span.set_attr("cone_hits", stats.cone_hits)
                            span.set_attr("full_fallbacks", stats.full_fallbacks)
                            for sink in sinks:
                                sink.add("incremental_evals", stats.incremental_evals)
                                sink.add("cone_hits", stats.cone_hits)
                                sink.add("full_fallbacks", stats.full_fallbacks)
                        else:
                            detail = (
                                "synthesis_vectorized"
                                if mode == "vectorized"
                                else "synthesis_scalar"
                            )
                            with stage_all(sinks, "synthesis"):
                                with stage_all(sinks, detail):
                                    fresh = self.pool.synthesize_batch(
                                        task, batch_graphs
                                    )
                        # Counted after the batch returns, so a raised
                        # synthesis doesn't skew hit-rate/throughput.
                        span.add_counter("synth_calls", len(still_owned))
                        for sink in sinks:
                            sink.add("synth_calls", len(still_owned))
                            sink.add("batches")
                            sink.add("batch_designs", len(still_owned))
                            if mode == "vectorized":
                                sink.add("vector_batches")
                                sink.add("vector_designs", len(still_owned))
                        for i, measured in zip(still_owned, fresh):
                            self.cache.put(fingerprint, graphs[i].key(), measured)
                            metrics[i] = measured
                        if incremental:
                            # Freshly evaluated graphs become delta bases
                            # for the next round of this task.
                            self.cone_bases.remember(fingerprint, batch_graphs)
                finally:
                    # Release waiters even if synthesis raised; they retry.
                    with self._inflight_lock:
                        for i in owned:
                            event = self._inflight.pop(
                                (fingerprint, graphs[i].key()), None
                            )
                            if event is not None:
                                event.set()

            for i, event in waited:
                event.wait()
                metrics[i] = self._await_or_claim(
                    task, fingerprint, graphs[i], sinks
                )

        out: List[Tuple[float, float, float]] = []
        for m in metrics:
            assert m is not None
            area_um2, delay_ns = m
            out.append(
                (cost_from_metrics(area_um2, delay_ns, task.delay_weight), area_um2, delay_ns)
            )
        return out

    def _await_or_claim(
        self,
        task: CircuitTask,
        fingerprint: str,
        graph: PrefixGraph,
        sinks: List[EngineTelemetry],
    ) -> Metrics:
        """Resolve one design another thread was synthesizing.

        Normally the owner's result is in the cache by the time the
        waiter wakes.  If it is not (the owner's synthesis raised, or a
        memory-only cache evicted the entry), exactly one waiter reclaims
        the in-flight slot and synthesizes; the rest keep waiting on the
        new claimant instead of stampeding into duplicate work.
        """
        while True:
            hit = self.cache.get(fingerprint, graph.key())
            if hit is not None:
                for sink in sinks:
                    sink.add("inflight_hits")
                return hit
            flight_key = (fingerprint, graph.key())
            with self._inflight_lock:
                event = self._inflight.get(flight_key)
                if event is None:
                    self._inflight[flight_key] = threading.Event()
            if event is not None:
                event.wait()
                continue  # re-check the cache, then claim if still absent
            try:
                # Same TOCTOU guard as the batch path: re-check under the
                # claim before paying for synthesis.
                hit = self.cache.get(fingerprint, graph.key())
                if hit is not None:
                    for sink in sinks:
                        sink.add("inflight_hits")
                    return hit
                with stage_all(sinks, "synthesis"):
                    with stage_all(sinks, "synthesis_scalar"):
                        metrics = self.pool.synthesize_batch(task, [graph])[0]
                for sink in sinks:
                    sink.add("synth_calls")
                self.cache.put(fingerprint, graph.key(), metrics)
                return metrics
            finally:
                with self._inflight_lock:
                    claimed = self._inflight.pop(flight_key, None)
                    if claimed is not None:
                        claimed.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EvaluationEngine(cache={self.cache!r}, pool={self.pool!r})"


class EngineSimulator(CircuitSimulator):
    """`CircuitSimulator`-compatible facade over an :class:`EvaluationEngine`.

    Exposes a per-run ``telemetry`` attribute that
    :meth:`repro.opt.results.RunRecord.from_simulator` snapshots into the
    run record.
    """

    def __init__(
        self,
        task: CircuitTask,
        budget: Optional[int] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(task, budget=budget)
        self.engine = engine if engine is not None else EvaluationEngine()
        self.telemetry = EngineTelemetry()
        self._fingerprint = task_fingerprint(task)

    # ------------------------------------------------------------------
    def _evaluate_graphs(
        self,
        graphs: List[PrefixGraph],
        structural_context: Sequence[PrefixGraph] = (),
    ) -> List[Tuple[float, float, float]]:
        """The single point where graphs meet the engine.

        Both the scalar ``query`` path and the batched ``query_plan``
        path funnel through here with unique, legalized graphs; all
        accounting (budget, memo, sim_index) happens in the callers.
        :class:`repro.serve.client.RemoteEngineSimulator` overrides
        exactly this method, which is what makes remote runs
        bit-identical by construction.
        """
        return self.engine.evaluate(
            self.task,
            graphs,
            self.telemetry,
            fingerprint=self._fingerprint,
            structural_context=structural_context,
        )

    def _synthesize(self, graph: PrefixGraph) -> Tuple[float, float, float]:
        """Single-design hook: persistent cache first, then the pool."""
        return self._evaluate_graphs([graph])[0]

    def query(self, design) -> Evaluation:
        self.telemetry.add("queries")
        graph = self.canonicalize(design)
        run_hit = graph.key() in self._cache
        if run_hit:
            self.telemetry.add("run_hits")
        if not trace.active():
            return super().query(graph)
        with trace.span("evaluate") as span:
            span.set_attr("graph", _graph_tag(graph))
            span.set_attr("run_hit", run_hit)
            span.add_counter("queries")
            return super().query(graph)

    def query_plan(
        self, designs, structural_context=()
    ) -> List[Optional[Evaluation]]:
        """Batched planner with serial-identical semantics (see module doc).

        Classifies every design in submission order — run-memo hit,
        duplicate of a design scheduled earlier in this batch, budget
        refusal, or new — then synthesizes all new unique graphs in one
        parallel submission and materializes the plan.
        ``structural_context`` designs (a GA's parents, a BO round's
        incumbents) are canonicalized and forwarded to the engine as
        delta-base hints; they affect wall-clock only, never results.
        """
        designs = list(designs)
        if self.check_abort is not None:
            self.check_abort()
        self.telemetry.add("queries", len(designs))

        context = [self.canonicalize(d) for d in structural_context]
        with trace.span("evaluate_batch") as batch_span:
            return self._query_plan(designs, batch_span, context)

    def _query_plan(
        self, designs, batch_span, structural_context=()
    ) -> List[Optional[Evaluation]]:
        """:meth:`query_plan`'s body, under an ``evaluate_batch`` span."""
        HIT, PENDING, REFUSED = 0, 1, 2
        slots: List[Tuple[int, object]] = []
        scheduled: List[PrefixGraph] = []
        scheduled_keys = set()
        for design in designs:
            graph = self.canonicalize(design)
            key = graph.key()
            cached = self._cache.get(key)
            if cached is not None:
                self.telemetry.add("run_hits")
                slots.append((HIT, cached))
                continue
            if key in scheduled_keys:
                slots.append((PENDING, key))
                continue
            if self.budget is not None and (
                self.num_simulations + len(scheduled) >= self.budget
            ):
                self.telemetry.add("budget_refusals")
                slots.append((REFUSED, None))
                continue
            scheduled_keys.add(key)
            scheduled.append(graph)
            slots.append((PENDING, key))

        if trace.active():
            batch_span.set_attr("batch", len(designs))
            batch_span.set_attr("scheduled", len(scheduled))
            batch_span.set_attr(
                "run_hits", sum(1 for kind, _ in slots if kind == HIT)
            )
            batch_span.set_attr(
                "refused", sum(1 for kind, _ in slots if kind == REFUSED)
            )

        for graph, (cost, area_um2, delay_ns) in zip(
            scheduled,
            self._evaluate_graphs(scheduled, structural_context),
        ):
            evaluation = Evaluation(
                graph=graph,
                cost=cost,
                area_um2=area_um2,
                delay_ns=delay_ns,
                sim_index=self.num_simulations + 1,
            )
            self._cache[graph.key()] = evaluation
            self.history.append(evaluation)
            # Same simulator-boundary hook the scalar `query` fires: the
            # streaming run API checkpoints/interrupts here.  If it
            # raises mid-batch, every evaluation appended so far is
            # already recorded; the batch's later designs simply rerun
            # on resume (synthesis is deterministic, so bit-identically).
            if self.on_evaluation is not None:
                self.on_evaluation(evaluation)

        plan: List[Optional[Evaluation]] = []
        for kind, payload in slots:
            if kind == REFUSED:
                plan.append(None)
            elif kind == HIT:
                plan.append(payload)  # type: ignore[arg-type]
            else:
                plan.append(self._cache[payload])  # type: ignore[index]
        return plan
