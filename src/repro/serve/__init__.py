"""``repro.serve`` — the shared, multi-tenant evaluation daemon.

Promotes the per-process :class:`~repro.engine.EvaluationEngine` to a
long-lived service: one daemon process owns one engine (one warm
persistent cache, one synthesis worker pool) and multiplexes any number
of concurrent clients over a unix-domain socket speaking a versioned,
newline-delimited JSON protocol.

Pieces
------
:mod:`repro.serve.protocol`
    The wire format: strict request/response frames (hello,
    submit_batch, poll, cancel, stats, shutdown) plus JSON forms for
    :class:`~repro.circuits.task.CircuitTask` and
    :class:`~repro.prefix.graph.PrefixGraph`.
:mod:`repro.serve.daemon`
    The asyncio server: per-tenant deficit-round-robin fair-share
    scheduling over the engine, per-request timeouts, graceful drain on
    SIGTERM/shutdown.
:mod:`repro.serve.client`
    :class:`~repro.serve.client.ServeClient` (blocking socket client)
    and :class:`~repro.serve.client.RemoteEngineSimulator`, the
    ``CircuitSimulator``-compatible facade sessions attach through when
    ``$REPRO_ENGINE_SOCKET`` names a live daemon.  Budget accounting
    stays client-side, so records are bit-identical to in-process runs.
:mod:`repro.serve.compact`
    Shard compaction + GC for the append-only JSONL evaluation cache
    (duplicate-key dedup, size/age eviction, advisory-lock coordination
    with live readers).

CLI: ``python -m repro serve start|stop|status|compact`` (plus the
internal ``serve run`` foreground loop ``start`` spawns).
"""

from .client import RemoteEngineSimulator, ServeClient, ServeUnavailable
from .compact import CompactionReport, compact_cache_dir, compact_shard
from .daemon import EvalDaemon
from .protocol import PROTOCOL_VERSION, default_socket_path

__all__ = [
    "EvalDaemon",
    "ServeClient",
    "ServeUnavailable",
    "RemoteEngineSimulator",
    "CompactionReport",
    "compact_cache_dir",
    "compact_shard",
    "PROTOCOL_VERSION",
    "default_socket_path",
]
