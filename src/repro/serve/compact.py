"""Compaction + GC for the append-only JSONL evaluation-cache shards.

The :class:`~repro.engine.cache.EvaluationCache` disk store is
append-only and last-writer-wins: every ``put`` adds a line, re-measured
or re-written keys simply shadow their older lines.  That is perfect for
crash-safety and multi-process sharing, but a daemon serving heavy
traffic grows shards without bound — duplicate-shadowed lines are pure
dead weight that every cold ``cache_load`` still has to parse.

:func:`compact_shard` rewrites one shard keeping exactly the *live*
record per key (the last occurrence), optionally applying an eviction
policy:

* ``max_age_seconds`` — drop records whose ``t`` timestamp (stamped by
  ``EvaluationCache.put`` since the serve subsystem landed; older lines
  carry none and are treated as infinitely old *only* when an age policy
  is requested) is older than the cutoff.
* ``max_entries`` — keep only the newest N live records (by line order,
  which is append order).

Invariants:

* **Every live, non-evicted key survives with its newest metrics** — a
  reader that could ``get`` a key before compaction gets bit-identical
  metrics after (asserted by re-parsing the rewritten shard before it
  replaces the original).
* **The rewrite is atomic** (temp + ``os.replace``): a reader holding
  the old file keeps a consistent view; a reader opening fresh sees the
  compacted shard.  Live :class:`EvaluationCache` instances self-heal —
  their per-key byte offsets go stale, which ``_reload_entry`` detects
  and repairs with one rescan, and their incremental-reload positions
  detect the shrink and reload from byte 0.
* **One compactor at a time** per cache directory, via an advisory
  pid-file lock (:class:`repro.utils.locks.PidFileLock`); stale locks
  from dead compactors are stolen with a warning.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..utils.locks import PidFileLock

__all__ = ["CompactionReport", "compact_shard", "compact_cache_dir"]

#: compaction coordination file, directly inside the cache directory.
LOCK_FILENAME = ".compact.lock.json"


@dataclass
class CompactionReport:
    """What one compaction pass did, per shard and in total."""

    cache_dir: str
    shards: List[Dict] = field(default_factory=list)

    @property
    def lines_before(self) -> int:
        return sum(s["lines_before"] for s in self.shards)

    @property
    def lines_after(self) -> int:
        return sum(s["lines_after"] for s in self.shards)

    @property
    def bytes_before(self) -> int:
        return sum(s["bytes_before"] for s in self.shards)

    @property
    def bytes_after(self) -> int:
        return sum(s["bytes_after"] for s in self.shards)

    @property
    def evicted(self) -> int:
        return sum(s["evicted"] for s in self.shards)

    def to_dict(self) -> Dict:
        return {
            "cache_dir": self.cache_dir,
            "shards": list(self.shards),
            "lines_before": self.lines_before,
            "lines_after": self.lines_after,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "evicted": self.evicted,
        }


def _scan_shard(path: str) -> Tuple[List[Tuple[str, Dict]], int, int]:
    """(ordered live records, total lines, corrupt lines) for one shard.

    A record is *live* when it is the last line for its key; live
    records keep their final-occurrence order, so a compacted shard
    replays into the same memory state as the original.  Corrupt lines
    (crashed-writer truncation) are dropped — exactly what the loader
    would have skipped anyway.
    """
    last_line: Dict[str, Dict] = {}
    order: Dict[str, int] = {}
    lines = corrupt = 0
    seq = 0
    with open(path, "rb") as handle:
        for raw in handle:
            stripped = raw.strip()
            if not stripped:
                continue
            lines += 1
            try:
                record = json.loads(stripped)
                key = str(record["k"])
                float(record["a"]), float(record["d"])  # shape check
            except (ValueError, KeyError, TypeError):
                corrupt += 1
                continue
            last_line[key] = record
            order[key] = seq  # last occurrence wins the ordering too
            seq += 1
    live = sorted(last_line.items(), key=lambda kv: order[kv[0]])
    return live, lines, corrupt


def compact_shard(
    path: str,
    max_age_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
    now: Optional[float] = None,
) -> Dict:
    """Rewrite one shard in place (atomically); returns its report row.

    Dropping policy, in order: duplicate-shadowed lines always; then
    records older than ``max_age_seconds`` (records without a ``t``
    stamp count as infinitely old under an age policy); then all but the
    newest ``max_entries`` records.
    """
    bytes_before = os.path.getsize(path)
    live, lines_before, corrupt = _scan_shard(path)
    evicted = 0
    if max_age_seconds is not None:
        cutoff = (now if now is not None else time.time()) - max_age_seconds
        kept = [
            (key, record)
            for key, record in live
            if float(record.get("t", 0.0)) >= cutoff
        ]
        evicted += len(live) - len(kept)
        live = kept
    if max_entries is not None and len(live) > max_entries:
        evicted += len(live) - max_entries
        live = live[-max_entries:]  # newest-by-append-order survive

    payload = "".join(
        json.dumps(record, separators=(",", ":")) + "\n" for _, record in live
    )
    # Verify before replacing: the compacted shard must reload into
    # exactly the records we decided to keep.
    reloaded = {}
    for line in payload.splitlines():
        record = json.loads(line)
        reloaded[record["k"]] = (float(record["a"]), float(record["d"]))
    expected = {
        key: (float(record["a"]), float(record["d"])) for key, record in live
    }
    if reloaded != expected:  # pragma: no cover - structural self-check
        raise RuntimeError(f"compaction self-check failed for {path}")

    tmp = f"{path}.compact.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return {
        "shard": os.path.basename(path),
        "lines_before": lines_before,
        "lines_after": len(live),
        "bytes_before": bytes_before,
        "bytes_after": os.path.getsize(path),
        "corrupt_dropped": corrupt,
        "duplicates_dropped": lines_before - corrupt - len(live) - evicted,
        "evicted": evicted,
    }


def compact_cache_dir(
    cache_dir: str,
    max_age_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
) -> CompactionReport:
    """Compact every ``*.jsonl`` shard under ``cache_dir``.

    Takes the directory's advisory compaction lock for the whole pass
    (one compactor at a time; live readers/writers are *not* excluded —
    they self-heal, see the module docstring).  ``max_entries`` is
    per-shard.
    """
    if not os.path.isdir(cache_dir):
        raise ValueError(f"{cache_dir} is not a cache directory")
    report = CompactionReport(cache_dir=os.path.abspath(cache_dir))
    lock = PidFileLock(
        os.path.join(cache_dir, LOCK_FILENAME),
        purpose=f"evaluation-cache compaction of {cache_dir}",
    )
    with lock:
        for name in sorted(os.listdir(cache_dir)):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(cache_dir, name)
            report.shards.append(
                compact_shard(
                    path,
                    max_age_seconds=max_age_seconds,
                    max_entries=max_entries,
                )
            )
    return report
