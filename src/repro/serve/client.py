"""Client side of the daemon: a transparent ``CircuitSimulator`` facade.

:class:`ServeClient` is the low-level blocking socket client (one
connection, strict request/response, thread-safe).  On top of it,
:class:`RemoteEngineSimulator` subclasses
:class:`~repro.engine.service.EngineSimulator` and overrides exactly one
method — ``_evaluate_graphs``, the single point where graphs meet the
engine — so *everything else stays client-side and bit-identical to an
in-process run by construction*: canonicalization, the per-run memo,
in-batch dedup, budget refusals, ``sim_index`` assignment, ``history``
and the cost recomputed from the returned (area, delay) via
:func:`~repro.synth.cost.cost_from_metrics`.  The daemon only ever sees
unique, legalized graphs and only ever returns physical metrics.

Attachment is environment-driven: when ``$REPRO_ENGINE_SOCKET`` names a
socket, :meth:`EvaluationEngine.simulator` asks
:func:`maybe_remote_simulator` first and hands out a remote facade when
a live, non-draining daemon answers the handshake — sessions, the
runner and the CLI never change.  When the daemon is unreachable at
attach, or becomes unreachable/draining mid-run, the facade emits a
:class:`RuntimeWarning` and falls back **permanently** to the in-process
engine it already carries; the run completes either way with identical
records.

Telemetry and tracing cross the boundary too: the daemon returns the
engine-counter deltas its work caused (folded into the run's telemetry
here) and the finished span dicts of its scheduling/synthesis spans
(re-emitted into the ambient tracer's sink, parent ids already resolved
against the span context shipped with the submit).
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
import warnings
from typing import Any, Dict, List, Optional, Tuple

from ..circuits.task import CircuitTask
from ..engine.service import EngineSimulator, EvaluationEngine
from ..engine.telemetry import EngineTelemetry
from ..obs import trace
from ..prefix.graph import PrefixGraph
from ..synth.cost import cost_from_metrics
from . import protocol as wire

__all__ = [
    "ServeUnavailable",
    "RemoteEvaluationError",
    "ServeClient",
    "RemoteEngineSimulator",
    "maybe_remote_simulator",
    "tenant_name",
]

#: fair-share identity override (default: ``client-<pid>``).
ENV_TENANT = "REPRO_ENGINE_TENANT"
#: optional per-batch timeout (seconds) the daemon enforces.
ENV_TIMEOUT = "REPRO_ENGINE_TIMEOUT"


class ServeUnavailable(RuntimeError):
    """No daemon (connect failed, connection lost, or daemon draining).

    The facade treats this as "run in-process instead" — it is the only
    error class that triggers fallback.
    """


class RemoteEvaluationError(RuntimeError):
    """The daemon answered, but the job itself failed (synthesis error,
    timeout, cancellation, malformed request).  Not a fallback trigger:
    a deterministic synthesis failure would fail in-process too."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def tenant_name() -> str:
    """This client's fair-share identity (``$REPRO_ENGINE_TENANT`` or
    ``client-<pid>``)."""
    return os.environ.get(ENV_TENANT, "").strip() or f"client-{os.getpid()}"


def _request_timeout() -> Optional[float]:
    raw = os.environ.get(ENV_TIMEOUT, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-numeric {ENV_TIMEOUT}={raw!r}", RuntimeWarning
        )
        return None
    return value if value > 0 else None


class ServeClient:
    """One blocking unix-socket connection to the daemon.

    Strict request/response (one reply line per request line) under an
    internal lock, so parallel seed threads may share one client.  The
    constructor performs the hello handshake; it raises
    :class:`ServeUnavailable` when nobody is listening.
    """

    def __init__(
        self,
        socket_path: str,
        client_name: Optional[str] = None,
        connect_timeout: float = 5.0,
    ) -> None:
        self.socket_path = socket_path
        self.client_name = client_name or tenant_name()
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(connect_timeout)
            sock.connect(socket_path)
            sock.settimeout(None)
        except OSError as error:
            raise ServeUnavailable(
                f"no evaluation daemon at {socket_path}: {error}"
            ) from error
        self._sock = sock
        self._reader = sock.makefile("rb")
        welcome = self.request(
            wire.Hello(client=self.client_name, pid=os.getpid())
        )
        if not isinstance(welcome, wire.Welcome):
            self.close()
            raise ServeUnavailable(
                f"unexpected handshake reply {type(welcome).__name__}"
            )
        self.server_pid = welcome.server_pid
        self.draining = welcome.draining
        self.cache_entries = welcome.cache_entries

    # ------------------------------------------------------------------
    def request(self, frame: wire._Frame) -> wire._Frame:
        """Send one frame, return its one reply (thread-safe)."""
        with self._lock:
            if self._sock is None:
                raise ServeUnavailable("client connection already closed")
            try:
                self._sock.sendall(wire.encode(frame))
                line = self._reader.readline()
            except OSError as error:
                raise ServeUnavailable(
                    f"daemon connection lost: {error}"
                ) from error
        if not line:
            raise ServeUnavailable("daemon closed the connection")
        try:
            return wire.decode(line)
        except wire.ProtocolError as error:
            raise ServeUnavailable(f"undecodable daemon reply: {error}") from error

    def evaluate(
        self,
        task_payload: Dict[str, Any],
        fingerprint: str,
        graph_payloads: List[Dict],
        span_ctx: Optional[trace.SpanContext] = None,
        timeout: Optional[float] = None,
        poll_interval: float = 0.005,
    ) -> wire.BatchResult:
        """Submit one batch and block until its result frame.

        Raises :class:`ServeUnavailable` when the daemon refuses because
        it is draining (fallback trigger) and
        :class:`RemoteEvaluationError` for job-level failures.
        """
        job_id = uuid.uuid4().hex
        reply = self.request(
            wire.SubmitBatch(
                id=job_id,
                tenant=self.client_name,
                task=task_payload,
                fingerprint=fingerprint,
                graphs=graph_payloads,
                span=list(span_ctx) if span_ctx is not None else None,
                timeout=timeout,
            )
        )
        if isinstance(reply, wire.ErrorReply):
            if reply.code == "draining":
                raise ServeUnavailable("daemon is draining")
            raise RemoteEvaluationError(reply.code, reply.message)
        if not isinstance(reply, wire.Accepted):
            raise ServeUnavailable(
                f"unexpected submit reply {type(reply).__name__}"
            )
        interval = poll_interval
        while True:
            reply = self.request(wire.Poll(id=job_id))
            if isinstance(reply, wire.BatchResult):
                return reply
            if isinstance(reply, wire.ErrorReply):
                raise RemoteEvaluationError(reply.code, reply.message)
            time.sleep(interval)
            interval = min(interval * 2, 0.05)

    def stats(self) -> wire.StatsReply:
        reply = self.request(wire.StatsRequest())
        if not isinstance(reply, wire.StatsReply):
            raise ServeUnavailable(
                f"unexpected stats reply {type(reply).__name__}"
            )
        return reply

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (the ``serve stop`` verb)."""
        self.request(wire.Shutdown())

    def close(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
            if sock is None:
                return
            try:
                self._reader.close()
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._sock is None else f"pid={self.server_pid}"
        return f"ServeClient({self.socket_path}, {state})"


class RemoteEngineSimulator(EngineSimulator):
    """Engine simulator whose evaluations run on a shared daemon.

    Overrides only ``_evaluate_graphs``; every accounting decision stays
    in the inherited code paths (see the module docstring).  On
    :class:`ServeUnavailable` — connection lost, daemon draining — it
    warns once and permanently reverts to the in-process engine it
    already carries, mid-run, with no record-visible difference.
    """

    def __init__(
        self,
        task: CircuitTask,
        budget: Optional[int] = None,
        engine: Optional[EvaluationEngine] = None,
        client: Optional[ServeClient] = None,
        socket_path: Optional[str] = None,
    ) -> None:
        super().__init__(task, budget=budget, engine=engine)
        if client is None:
            path = socket_path or wire.default_socket_path()
            if path is None:
                raise ServeUnavailable(
                    f"no socket path given and ${wire.ENV_SOCKET} is unset"
                )
            client = ServeClient(path)
        self.client = client
        self._task_payload = wire.task_to_dict(task)
        self._timeout = _request_timeout()
        self._remote = True

    # ------------------------------------------------------------------
    def _evaluate_graphs(
        self, graphs: List[PrefixGraph], structural_context=()
    ) -> List[Tuple[float, float, float]]:
        # The hint stays client-side: the daemon batches designs across
        # tenants and keeps its own ConeBaseTier per fingerprint.
        if not graphs or not self._remote:
            return super()._evaluate_graphs(graphs, structural_context)
        tracer = trace.current_tracer()
        span_ctx = tracer.current_context() if tracer is not None else None
        try:
            result = self.client.evaluate(
                self._task_payload,
                self._fingerprint,
                wire.graphs_to_wire(graphs),
                span_ctx=span_ctx,
                timeout=self._timeout,
            )
        except ServeUnavailable as error:
            self._remote = False
            warnings.warn(
                f"evaluation daemon unavailable mid-run ({error}); "
                "falling back to the in-process engine",
                RuntimeWarning,
                stacklevel=2,
            )
            return super()._evaluate_graphs(graphs, structural_context)
        if len(result.metrics) != len(graphs):
            raise RemoteEvaluationError(
                "bad_reply",
                f"daemon returned {len(result.metrics)} metrics "
                f"for {len(graphs)} graphs",
            )
        _fold_counters(self.telemetry, result.counters)
        if tracer is not None and result.spans:
            tracer.emit_raw(result.spans)
        return [
            (
                cost_from_metrics(area_um2, delay_ns, self.task.delay_weight),
                area_um2,
                delay_ns,
            )
            for area_um2, delay_ns in result.metrics
        ]

    @property
    def remote(self) -> bool:
        """Whether evaluations still go through the daemon (False after
        a fallback)."""
        return self._remote

    def __repr__(self) -> str:
        backend = repr(self.client) if self._remote else "fallback"
        return f"RemoteEngineSimulator({self.task.name!r}, {backend})"


def _fold_counters(telemetry: EngineTelemetry, counters: Dict[str, Any]) -> None:
    """Fold the daemon's per-job counter deltas into a run's telemetry.

    Only known counters and the stage-timer dicts are folded; derived
    values the snapshot may carry (``cache_hits``) are recomputed
    locally by ``as_dict`` anyway.
    """
    for name in EngineTelemetry._COUNTERS:
        amount = counters.get(name, 0)
        if amount:
            telemetry.add(name, int(amount))
    stage_seconds = counters.get("stage_seconds", {})
    stage_calls = counters.get("stage_calls", {})
    if isinstance(stage_seconds, dict):
        for name, seconds in stage_seconds.items():
            calls = stage_calls.get(name, 1) if isinstance(stage_calls, dict) else 1
            telemetry.add_stage_time(name, float(seconds), calls=int(calls))


def maybe_remote_simulator(
    engine: EvaluationEngine, task: CircuitTask, budget: Optional[int]
) -> Optional[RemoteEngineSimulator]:
    """A remote facade when ``$REPRO_ENGINE_SOCKET`` names a live daemon.

    Returns None — caller builds the normal in-process simulator — when
    the knob is unset, nobody answers (with a :class:`RuntimeWarning`:
    the operator pointed at a daemon that is not there), or the daemon
    is already draining.
    """
    socket_path = wire.default_socket_path()
    if socket_path is None:
        return None
    try:
        client = ServeClient(socket_path)
    except ServeUnavailable as error:
        warnings.warn(
            f"${wire.ENV_SOCKET} is set but unusable ({error}); "
            "running with the in-process engine",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    if client.draining:
        client.close()
        warnings.warn(
            f"daemon at {socket_path} is draining; "
            "running with the in-process engine",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return RemoteEngineSimulator(task, budget=budget, engine=engine, client=client)
