"""The daemon's wire protocol: versioned newline-delimited JSON frames.

One frame per line, UTF-8 JSON, every frame carrying ``{"v": 1,
"type": ...}``.  The client speaks strict request/response over one
unix-domain socket connection: each request line receives exactly one
response line, so the blocking client never has to demultiplex.

Frame vocabulary (requests -> responses)::

    hello        -> welcome          handshake; names the tenant
    submit_batch -> accepted | error enqueue one evaluation batch
    poll         -> pending | result | error   job progress / results
    cancel       -> cancelled | error          drop a queued job
    stats        -> stats_reply      scheduler + engine observability
    shutdown     -> bye              ask the daemon to drain and exit

Validation mirrors :mod:`repro.api.spec` discipline: ``from_dict``
rejects unknown fields, :func:`decode` rejects unknown frame types and
protocol-version mismatches, so a confused client fails with a clear
error instead of a daemon-side traceback.

The module also owns the JSON forms of the two domain objects that cross
the wire: :func:`task_to_dict` / :func:`task_from_dict` serialize a full
:class:`~repro.circuits.task.CircuitTask` (exactly the fields
:func:`~repro.engine.cache.task_fingerprint` covers, so a rebuilt task
is synthesis-bit-identical by construction), and graphs ride as the
:mod:`repro.prefix.io` node-list form.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from ..circuits.task import CircuitTask
from ..prefix.graph import PrefixGraph
from ..prefix.io import graph_from_dict, graph_to_dict
from ..synth.library import Cell, CellLibrary
from ..synth.physical import SynthesisOptions
from ..synth.timing import IOTiming

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "default_socket_path",
    "task_to_dict",
    "task_from_dict",
    "graphs_to_wire",
    "graphs_from_wire",
    "encode",
    "decode",
    "Hello",
    "Welcome",
    "SubmitBatch",
    "Accepted",
    "Poll",
    "Pending",
    "BatchResult",
    "Cancel",
    "Cancelled",
    "StatsRequest",
    "StatsReply",
    "Shutdown",
    "Bye",
    "ErrorReply",
]

PROTOCOL_VERSION = 1

#: the env knob clients attach through (unset = in-process engine).
ENV_SOCKET = "REPRO_ENGINE_SOCKET"


def default_socket_path() -> Optional[str]:
    """The daemon socket named by ``$REPRO_ENGINE_SOCKET`` (None = off)."""
    value = os.environ.get(ENV_SOCKET, "").strip()
    return value or None


class ProtocolError(ValueError):
    """A frame failed validation (unknown type/field, version mismatch)."""


# ----------------------------------------------------------------------
# Domain-object wire forms
# ----------------------------------------------------------------------
def task_to_dict(task: CircuitTask) -> Dict[str, Any]:
    """Everything needed to rebuild a synthesis-bit-identical task.

    The field set is a superset of the cache fingerprint's payload
    (:func:`repro.engine.cache.task_fingerprint`): fingerprint fields
    make the rebuilt task produce identical metrics; ``name`` and
    ``delay_weight`` ride along so display and client-side cost
    recomputation match too.
    """
    library = task.library
    return {
        "name": task.name,
        "n": task.n,
        "delay_weight": task.delay_weight,
        "circuit_type": task.circuit_type,
        "library": {
            "name": library.name,
            "tau_ns": library.tau_ns,
            "wire_cap_per_um": library.wire_cap_per_um,
            "bit_pitch_um": library.bit_pitch_um,
            "row_height_um": library.row_height_um,
            "cells": [
                {
                    "name": cell.name,
                    "function": cell.function,
                    "drive": cell.drive,
                    "area": cell.area,
                    "input_cap": cell.input_cap,
                    "logical_effort": cell.logical_effort,
                    "intrinsic_delay": cell.intrinsic_delay,
                }
                for cell in (
                    library.cell(name) for name in sorted(library._cells)
                )
            ],
        },
        "io_timing": {
            "input_arrival": dict(task.io_timing.input_arrival),
            "output_margin": dict(task.io_timing.output_margin),
        },
        "options": {
            "max_fanout": task.options.max_fanout,
            "sizing_passes": task.options.sizing_passes,
            "area_recovery": task.options.area_recovery,
            "slack_threshold": task.options.slack_threshold,
            "mapping_style": task.options.mapping_style,
        },
    }


def task_from_dict(payload: Mapping[str, Any]) -> CircuitTask:
    """Rebuild the :class:`CircuitTask` :func:`task_to_dict` described."""
    try:
        lib = payload["library"]
        library = CellLibrary(
            name=str(lib["name"]),
            cells=[
                Cell(
                    name=str(c["name"]),
                    function=str(c["function"]),
                    drive=int(c["drive"]),
                    area=float(c["area"]),
                    input_cap=float(c["input_cap"]),
                    logical_effort=float(c["logical_effort"]),
                    intrinsic_delay=float(c["intrinsic_delay"]),
                )
                for c in lib["cells"]
            ],
            tau_ns=float(lib["tau_ns"]),
            wire_cap_per_um=float(lib["wire_cap_per_um"]),
            bit_pitch_um=float(lib["bit_pitch_um"]),
            row_height_um=float(lib["row_height_um"]),
        )
        io = payload["io_timing"]
        options = payload["options"]
        return CircuitTask(
            name=str(payload["name"]),
            n=int(payload["n"]),
            delay_weight=float(payload["delay_weight"]),
            circuit_type=str(payload["circuit_type"]),
            library=library,
            io_timing=IOTiming(
                input_arrival={
                    str(k): float(v) for k, v in io["input_arrival"].items()
                },
                output_margin={
                    str(k): float(v) for k, v in io["output_margin"].items()
                },
            ),
            options=SynthesisOptions(
                max_fanout=int(options["max_fanout"]),
                sizing_passes=int(options["sizing_passes"]),
                area_recovery=bool(options["area_recovery"]),
                slack_threshold=float(options["slack_threshold"]),
                mapping_style=str(options["mapping_style"]),
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed task payload: {error}") from error


def graphs_to_wire(graphs: List[PrefixGraph]) -> List[Dict]:
    return [graph_to_dict(graph) for graph in graphs]


def graphs_from_wire(payload: List[Dict]) -> List[PrefixGraph]:
    try:
        return [graph_from_dict(entry) for entry in payload]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed graph payload: {error}") from error


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
_FRAME_TYPES: Dict[str, Type["_Frame"]] = {}


def _register(cls: Type["_Frame"]) -> Type["_Frame"]:
    _FRAME_TYPES[cls.TYPE] = cls
    return cls


@dataclass(frozen=True)
class _Frame:
    """Shared machinery: strict dict/JSON round-trips per frame type."""

    TYPE = ""  # overridden per subclass

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": self.TYPE}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "_Frame":
        body = {k: v for k, v in payload.items() if k not in ("v", "type")}
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise ProtocolError(
                f"{cls.TYPE} frame: unknown field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        try:
            return cls(**body)
        except TypeError as error:
            raise ProtocolError(f"{cls.TYPE} frame: {error}") from error


@_register
@dataclass(frozen=True)
class Hello(_Frame):
    """Handshake: names the client (= the fair-share tenant) and pid."""

    TYPE = "hello"
    client: str = "anonymous"
    pid: int = 0


@_register
@dataclass(frozen=True)
class Welcome(_Frame):
    TYPE = "welcome"
    server_pid: int = 0
    draining: bool = False
    #: entries currently resident in the daemon cache's memory front —
    #: what a warm attach inherits without any cache_load of its own.
    cache_entries: int = 0


@_register
@dataclass(frozen=True)
class SubmitBatch(_Frame):
    """One evaluation batch: unique legalized graphs of one task.

    The client owns dedup and budget accounting (exactly the
    :meth:`~repro.engine.service.EvaluationEngine.evaluate` contract);
    the daemon owns caching, scheduling and synthesis.  ``span`` is an
    optional ``[trace_id, span_id]`` pair naming the client span the
    daemon's scheduling/synthesis spans are parented under.
    """

    TYPE = "submit_batch"
    id: str = ""
    tenant: str = "anonymous"
    task: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    graphs: List[Dict] = field(default_factory=list)
    span: Optional[List[str]] = None
    timeout: Optional[float] = None


@_register
@dataclass(frozen=True)
class Accepted(_Frame):
    TYPE = "accepted"
    id: str = ""
    #: jobs already queued ahead of this one, across all tenants.
    position: int = 0


@_register
@dataclass(frozen=True)
class Poll(_Frame):
    TYPE = "poll"
    id: str = ""


@_register
@dataclass(frozen=True)
class Pending(_Frame):
    TYPE = "pending"
    id: str = ""
    done: int = 0
    total: int = 0


@_register
@dataclass(frozen=True)
class BatchResult(_Frame):
    """A finished job: per-graph metrics in submission order."""

    TYPE = "result"
    id: str = ""
    #: ``[[area_um2, delay_ns], ...]``, one per submitted graph.
    metrics: List[List[float]] = field(default_factory=list)
    #: engine-counter deltas attributable to this job (synth_calls,
    #: memory/disk hits, stage seconds...) for client telemetry folding.
    counters: Dict[str, Any] = field(default_factory=dict)
    #: finished span dicts recorded daemon-side, parent ids already
    #: resolved against the submitted span context; the client re-emits
    #: them into its own sink (:meth:`repro.obs.trace.Tracer.emit_raw`).
    spans: List[Dict] = field(default_factory=list)


@_register
@dataclass(frozen=True)
class Cancel(_Frame):
    TYPE = "cancel"
    id: str = ""


@_register
@dataclass(frozen=True)
class Cancelled(_Frame):
    TYPE = "cancelled"
    id: str = ""


@_register
@dataclass(frozen=True)
class StatsRequest(_Frame):
    TYPE = "stats"


@_register
@dataclass(frozen=True)
class StatsReply(_Frame):
    TYPE = "stats_reply"
    server_pid: int = 0
    draining: bool = False
    uptime_seconds: float = 0.0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    #: per-tenant queued graph counts (fair-share queue depths).
    queues: Dict[str, int] = field(default_factory=dict)
    #: the scheduler's recent execution order: ``[{tenant, job, count,
    #: seq}, ...]`` — the submission-order trace the fair-share tests
    #: (and curious operators) read.
    schedule: List[Dict] = field(default_factory=list)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class Shutdown(_Frame):
    TYPE = "shutdown"


@_register
@dataclass(frozen=True)
class Bye(_Frame):
    TYPE = "bye"


@_register
@dataclass(frozen=True)
class ErrorReply(_Frame):
    """Request-level failure.  ``code`` is machine-readable:

    ``draining``
        The daemon is shutting down and refuses new work (clients fall
        back to their in-process engine).
    ``unknown_job`` / ``cancelled`` / ``timeout`` / ``failed``
        Poll outcomes for jobs that cannot produce results.
    ``bad_request``
        The frame failed validation daemon-side.
    """

    TYPE = "error"
    code: str = "bad_request"
    message: str = ""
    id: Optional[str] = None


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode(frame: _Frame) -> bytes:
    """One frame as one newline-terminated JSON line."""
    return (
        json.dumps(frame.to_dict(), separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> _Frame:
    """Parse and validate one wire line into its typed frame."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be an object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    frame_type = payload.get("type")
    cls = _FRAME_TYPES.get(frame_type)
    if cls is None:
        raise ProtocolError(
            f"unknown frame type {frame_type!r}; "
            f"known: {sorted(_FRAME_TYPES)}"
        )
    return cls.from_dict(payload)
