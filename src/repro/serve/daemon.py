"""The evaluation daemon: one warm engine, many tenants, fair shares.

:class:`EvalDaemon` owns one :class:`~repro.engine.EvaluationEngine`
(one persistent cache, one synthesis pool, one telemetry aggregate) and
serves any number of concurrent clients over a unix-domain socket
speaking the :mod:`repro.serve.protocol` frames.

Scheduling
----------
Clients submit whole batches (a GA population, a BO candidate round, a
single interactive query), but the scheduler never executes a whole
batch as one unit.  Each tenant (= ``hello`` client name) has a FIFO of
jobs and a **deficit counter**; the scheduler cycles tenants
round-robin, tops the deficit up by ``quantum`` graphs per turn, and
executes up to that many graphs from the tenant's head job through the
engine.  A 64-graph population therefore costs its tenant eight turns of
eight, and an interactive tenant's single-design job lands in between —
per-tenant deficit round-robin, the classic O(1) fair queuing
discipline.  Every slice execution is appended to ``schedule_trace``, so
fairness is *observable*, not aspirational (the tests read the trace).

Each job's graphs run through :meth:`EvaluationEngine.evaluate` with a
per-job telemetry sink, so the result frame carries exactly the counter
deltas (synth calls, cache hits, stage seconds) this job caused — the
client folds them into its per-run telemetry and `RunRecord` keeps its
meaning for remote runs.

Tracing across the boundary
---------------------------
A ``submit_batch`` may carry the client's current span context.  The
daemon then records a ``serve_job`` span (queue wait + execution)
parented to that context, with one ``serve_evaluate`` child per
scheduled slice, into a collect-mode tracer; the finished span dicts
ship back in the result frame and the client re-emits them into its own
sink — ``python -m repro report`` shows one coherent tree for a remote
run.  When the daemon runs standalone (the CLI path),
``capture_engine_spans=True`` additionally activates the job tracer
around the engine call so cache/synthesis spans nest under the slice.

Lifecycle
---------
SIGTERM (or a ``shutdown`` frame) starts a **graceful drain**: new
submissions are refused with a ``draining`` error (clients fall back to
their in-process engines), queued work is finished and stays pollable,
and the process exits once every finished job was delivered (or a
linger timeout passes).  Nothing is ever dropped mid-synthesis.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple

from ..circuits.task import CircuitTask
from ..engine.cache import task_fingerprint
from ..engine.service import EvaluationEngine
from ..engine.telemetry import EngineTelemetry, snapshot_delta
from ..obs import trace
from ..prefix.graph import PrefixGraph
from ..utils.io import atomic_write_json
from . import protocol as wire

__all__ = ["EvalDaemon", "run_daemon", "pid_file_path"]

#: scheduler quantum: graphs one tenant may run per round-robin turn.
DEFAULT_QUANTUM = 8
#: how long a draining daemon waits for finished jobs to be polled.
DEFAULT_LINGER = 10.0
#: schedule_trace ring size (observability, not accounting).
_TRACE_KEEP = 512


def pid_file_path(socket_path: str) -> str:
    return socket_path + ".pid.json"


#: per-process job sequence feeding span-id prefixes: two jobs inside the
#: same client trace must never mint colliding span ids (same rule the
#: synthesis pool applies per (worker, job)).
#: thread-safe: itertools.count.__next__ is atomic under the GIL.
_JOB_SEQ = itertools.count(1)


class _Job:
    """One submitted batch moving through the scheduler."""

    __slots__ = (
        "id", "tenant", "task", "fingerprint", "graphs", "metrics",
        "next_index", "state", "error_code", "error", "deadline",
        "telemetry", "tracer", "root_span", "delivered", "created",
    )

    def __init__(
        self,
        job_id: str,
        tenant: str,
        task: CircuitTask,
        fingerprint: str,
        graphs: List[PrefixGraph],
        span_ctx: Optional[trace.SpanContext],
        timeout: Optional[float],
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.task = task
        self.fingerprint = fingerprint
        self.graphs = graphs
        self.metrics: List[Tuple[float, float]] = []
        self.next_index = 0
        self.state = "queued"  # queued|running|done|failed|cancelled
        self.error_code = ""
        self.error = ""
        self.created = time.monotonic()
        self.deadline = self.created + timeout if timeout is not None else None
        self.telemetry = EngineTelemetry()
        self.delivered = False
        if span_ctx is not None:
            self.tracer = trace.Tracer(
                collect=True,
                trace_id=span_ctx[0],
                id_prefix=f"d{os.getpid():x}j{next(_JOB_SEQ):x}-",
            )
            self.root_span = self.tracer.span(
                "serve_job",
                attrs={"tenant": tenant, "batch": len(graphs)},
                parent=span_ctx,
            )
        else:
            self.tracer = None
            self.root_span = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def fail(self, code: str, message: str) -> None:
        self.state = "failed"
        self.error_code = code
        self.error = message
        self._close_root(status=code)

    def _close_root(self, status: str) -> None:
        if self.root_span is not None:
            self.root_span.set_attr("status", status)
            self.root_span.set_attr("slices", len(self.graphs))
            self.root_span.finish()
            self.root_span = None


class _Tenant:
    """One fair-share queue: FIFO of jobs plus the DRR deficit."""

    __slots__ = ("name", "jobs", "deficit")

    def __init__(self, name: str) -> None:
        self.name = name
        self.jobs: Deque[_Job] = deque()
        self.deficit = 0

    def pending_graphs(self) -> int:
        return sum(len(j.graphs) - j.next_index for j in self.jobs)


class EvalDaemon:
    """The asyncio server; see the module docstring for semantics.

    Parameters
    ----------
    socket_path:
        Unix-domain socket to listen on (created on ``serve``, removed
        on exit).
    engine:
        Adopt an existing engine (tests); otherwise one is built from
        ``cache_dir`` / ``workers`` and closed on exit.
    quantum:
        Graphs per tenant per scheduler turn (fair-share granularity).
    capture_engine_spans:
        Activate each job's collect-tracer around engine calls so
        engine-internal spans (cache loads, synthesis stages) ship back
        too.  Enable only when the daemon process runs nothing else
        traced (the standalone CLI daemon does; embedded test daemons
        must not, they share the process with traced clients).
    """

    def __init__(
        self,
        socket_path: str,
        engine: Optional[EvaluationEngine] = None,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        quantum: int = DEFAULT_QUANTUM,
        linger: float = DEFAULT_LINGER,
        capture_engine_spans: bool = False,
    ) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.socket_path = socket_path
        self._owns_engine = engine is None
        self.engine = (
            engine
            if engine is not None
            else EvaluationEngine(cache_dir=cache_dir, workers=workers)
        )
        self.quantum = quantum
        self.linger = linger
        self.capture_engine_spans = capture_engine_spans
        self._jobs: Dict[str, _Job] = {}
        self._tenants: Dict[str, _Tenant] = {}
        self._ring: Deque[str] = deque()
        self.schedule_trace: List[Dict] = []
        self._schedule_seq = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self._started = time.monotonic()
        self._tasks: Dict[str, CircuitTask] = {}
        self.draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._work: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._shutdown_complete: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-eval"
        )
        #: set once the socket is bound and accepting (thread-start sync).
        self.ready = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Bind, schedule and run until drained (SIGTERM / shutdown)."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._shutdown_complete = asyncio.Event()
        self._install_signal_handlers()
        if os.path.exists(self.socket_path):
            # A previous daemon crashed without cleanup; a live one would
            # have been detected by `serve start` before spawning us.
            os.unlink(self.socket_path)
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        atomic_write_json(
            pid_file_path(self.socket_path),
            {"pid": os.getpid(), "socket": self.socket_path},
        )
        scheduler = asyncio.ensure_future(self._scheduler())
        finisher = asyncio.ensure_future(self._finisher())
        self.ready.set()
        try:
            await self._shutdown_complete.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in (scheduler, finisher):
                task.cancel()
            await asyncio.gather(scheduler, finisher, return_exceptions=True)
            self._cleanup_files()
            self._executor.shutdown(wait=True)
            if self._owns_engine:
                self.engine.close()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread (embedded daemon) or platform limits

    def _cleanup_files(self) -> None:
        for path in (self.socket_path, pid_file_path(self.socket_path)):
            try:
                os.unlink(path)
            except OSError:
                pass

    def begin_drain(self) -> None:
        """Refuse new work, finish queued work, exit when delivered.

        Threadsafe (it is the SIGTERM handler); idempotent.
        """
        if self._loop is None:
            self.draining = True
            return
        self._loop.call_soon_threadsafe(self._begin_drain_in_loop)

    def _begin_drain_in_loop(self) -> None:
        if not self.draining:
            self.draining = True
            assert self._work is not None
            self._work.set()  # wake the scheduler even if idle

    def run_in_thread(self) -> threading.Thread:
        """Run the daemon on a dedicated thread (tests, benchmarks).

        Returns the started thread once the socket is accepting; stop it
        with :meth:`begin_drain` (all queued work still completes).
        """
        thread = threading.Thread(
            target=lambda: asyncio.run(self.serve()),
            name="serve-daemon",
            daemon=True,
        )
        thread.start()
        if not self.ready.wait(timeout=10.0):
            raise RuntimeError("daemon failed to start within 10s")
        return thread

    # ------------------------------------------------------------------
    # Scheduler: per-tenant deficit round-robin
    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        assert self._work is not None and self._drained is not None
        while True:
            if not self._ring:
                if self.draining:
                    self._drained.set()
                self._work.clear()
                await self._work.wait()
                continue
            name = self._ring.popleft()
            tenant = self._tenants[name]
            self._prune_cancelled(tenant)
            if not tenant.jobs:
                tenant.deficit = 0
                continue
            tenant.deficit += self.quantum
            job = tenant.jobs[0]
            if job.deadline is not None and time.monotonic() > job.deadline:
                job.fail("timeout", f"job {job.id} exceeded its timeout")
                self.jobs_failed += 1
                tenant.jobs.popleft()
                if tenant.jobs:
                    self._ring.append(name)
                continue
            take = min(tenant.deficit, len(job.graphs) - job.next_index)
            tenant.deficit -= take
            job.state = "running"
            self._schedule_seq += 1
            self.schedule_trace.append(
                {
                    "seq": self._schedule_seq,
                    "tenant": name,
                    "job": job.id,
                    "count": take,
                    "offset": job.next_index,
                }
            )
            del self.schedule_trace[:-_TRACE_KEEP]
            try:
                chunk = await self._evaluate_slice(
                    job, job.graphs[job.next_index : job.next_index + take]
                )
            except Exception as error:  # synthesis failure: job, not daemon
                job.fail("failed", f"{type(error).__name__}: {error}")
                self.jobs_failed += 1
                tenant.jobs.popleft()
            else:
                job.metrics.extend(chunk)
                job.next_index += take
                if job.next_index == len(job.graphs):
                    job.state = "done"
                    job._close_root(status="done")
                    self.jobs_completed += 1
                    tenant.jobs.popleft()
            if tenant.jobs:
                self._ring.append(name)
            else:
                tenant.deficit = 0

    def _prune_cancelled(self, tenant: _Tenant) -> None:
        while tenant.jobs and tenant.jobs[0].state == "cancelled":
            tenant.jobs.popleft()

    async def _evaluate_slice(
        self, job: _Job, graphs: List[PrefixGraph]
    ) -> List[Tuple[float, float]]:
        """One quantum of one job through the engine, off the loop."""
        assert self._loop is not None

        def run() -> List[Tuple[float, float]]:
            def evaluate() -> List[Tuple[float, float]]:
                out = self.engine.evaluate(
                    job.task,
                    graphs,
                    job.telemetry,
                    fingerprint=job.fingerprint,
                )
                return [(area, delay) for _, area, delay in out]

            if job.tracer is None or job.root_span is None:
                return evaluate()
            with job.tracer.span(
                "serve_evaluate",
                attrs={"tenant": job.tenant, "slice": len(graphs)},
                parent=job.root_span.context,
            ):
                if self.capture_engine_spans and not trace.active():
                    with job.tracer.activate():
                        return evaluate()
                return evaluate()

        return await self._loop.run_in_executor(self._executor, run)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tenant_name = "anonymous"
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                try:
                    frame = wire.decode(line)
                except wire.ProtocolError as error:
                    reply: wire._Frame = wire.ErrorReply(
                        code="bad_request", message=str(error)
                    )
                else:
                    if isinstance(frame, wire.Hello):
                        tenant_name = frame.client or "anonymous"
                    reply = self._dispatch(frame, tenant_name)
                writer.write(wire.encode(reply))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
                if isinstance(reply, wire.Bye):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, frame: wire._Frame, tenant_name: str) -> wire._Frame:
        if isinstance(frame, wire.Hello):
            return wire.Welcome(
                server_pid=os.getpid(),
                draining=self.draining,
                cache_entries=len(self.engine.cache),
            )
        if isinstance(frame, wire.SubmitBatch):
            return self._handle_submit(frame, tenant_name)
        if isinstance(frame, wire.Poll):
            return self._handle_poll(frame)
        if isinstance(frame, wire.Cancel):
            return self._handle_cancel(frame)
        if isinstance(frame, wire.StatsRequest):
            return self._handle_stats()
        if isinstance(frame, wire.Shutdown):
            self._begin_drain_in_loop()
            return wire.Bye()
        return wire.ErrorReply(
            code="bad_request",
            message=f"unexpected frame type {frame.TYPE!r} on the server side",
        )

    def _handle_submit(
        self, frame: wire.SubmitBatch, tenant_name: str
    ) -> wire._Frame:
        if self.draining:
            return wire.ErrorReply(
                code="draining",
                message="daemon is draining; run in-process instead",
                id=frame.id,
            )
        if not frame.id:
            return wire.ErrorReply(code="bad_request", message="job needs an id")
        if frame.id in self._jobs:
            return wire.ErrorReply(
                code="bad_request",
                message=f"job id {frame.id!r} already exists",
                id=frame.id,
            )
        try:
            fingerprint, task = self._resolve_task(frame)
            graphs = wire.graphs_from_wire(frame.graphs)
        except wire.ProtocolError as error:
            return wire.ErrorReply(
                code="bad_request", message=str(error), id=frame.id
            )
        span_ctx: Optional[trace.SpanContext] = None
        if frame.span is not None and len(frame.span) == 2:
            span_ctx = (str(frame.span[0]), str(frame.span[1]))
        tenant = frame.tenant or tenant_name
        job = _Job(
            frame.id, tenant, task, fingerprint, graphs, span_ctx, frame.timeout
        )
        position = sum(t.pending_graphs() for t in self._tenants.values())
        self._jobs[job.id] = job
        queue = self._tenants.get(tenant)
        if queue is None:
            queue = self._tenants[tenant] = _Tenant(tenant)
        was_empty = not queue.jobs
        queue.jobs.append(job)
        if was_empty:
            self._ring.append(tenant)
        assert self._work is not None
        self._work.set()
        return wire.Accepted(id=job.id, position=position)

    def _resolve_task(self, frame: wire.SubmitBatch) -> Tuple[str, CircuitTask]:
        """Rebuild (or reuse) the task; verify the client's fingerprint.

        The daemon recomputes the fingerprint from the task it actually
        rebuilt — a client naming fingerprint X while shipping task Y
        would poison the shared cache for every other tenant.
        """
        declared = frame.fingerprint
        cached = self._tasks.get(declared) if declared else None
        if cached is not None:
            return declared, cached
        task = wire.task_from_dict(frame.task)
        fingerprint = task_fingerprint(task)
        if declared and declared != fingerprint:
            raise wire.ProtocolError(
                f"fingerprint mismatch: client declared {declared}, "
                f"task hashes to {fingerprint}"
            )
        self._tasks[fingerprint] = task
        return fingerprint, task

    def _handle_poll(self, frame: wire.Poll) -> wire._Frame:
        job = self._jobs.get(frame.id)
        if job is None:
            return wire.ErrorReply(
                code="unknown_job",
                message=f"no job {frame.id!r}",
                id=frame.id,
            )
        if job.state in ("queued", "running"):
            return wire.Pending(
                id=job.id, done=job.next_index, total=len(job.graphs)
            )
        if job.state == "cancelled":
            return wire.ErrorReply(
                code="cancelled", message=f"job {job.id} was cancelled", id=job.id
            )
        if job.state == "failed":
            job.delivered = True
            return wire.ErrorReply(
                code=job.error_code or "failed", message=job.error, id=job.id
            )
        job.delivered = True
        spans = job.tracer.drain() if job.tracer is not None else []
        counters = snapshot_delta({}, job.telemetry.as_dict())
        self._jobs.pop(job.id, None)  # delivered results need no memory
        return wire.BatchResult(
            id=job.id,
            metrics=[[area, delay] for area, delay in job.metrics],
            counters=counters,
            spans=spans,
        )

    def _handle_cancel(self, frame: wire.Cancel) -> wire._Frame:
        job = self._jobs.get(frame.id)
        if job is None:
            return wire.ErrorReply(
                code="unknown_job", message=f"no job {frame.id!r}", id=frame.id
            )
        if not job.terminal:
            job.state = "cancelled"
            job._close_root(status="cancelled")
            self.jobs_cancelled += 1
        return wire.Cancelled(id=frame.id)

    def _handle_stats(self) -> wire.StatsReply:
        return wire.StatsReply(
            server_pid=os.getpid(),
            draining=self.draining,
            uptime_seconds=time.monotonic() - self._started,
            jobs_completed=self.jobs_completed,
            jobs_failed=self.jobs_failed,
            jobs_cancelled=self.jobs_cancelled,
            queues={
                name: tenant.pending_graphs()
                for name, tenant in self._tenants.items()
                if tenant.jobs
            },
            schedule=list(self.schedule_trace),
            telemetry=self.engine.telemetry.as_dict(),
            cache=self.engine.cache.stats(),
        )

    # ------------------------------------------------------------------
    async def _finisher(self) -> None:
        """Exit once drained work has been delivered (or linger expires)."""
        assert self._drained is not None and self._shutdown_complete is not None
        await self._drained.wait()
        deadline = time.monotonic() + self.linger
        while time.monotonic() < deadline:
            undelivered = [
                job
                for job in self._jobs.values()
                if job.terminal and not job.delivered and job.state != "cancelled"
            ]
            if not undelivered:
                break
            await asyncio.sleep(0.05)
        self._shutdown_complete.set()


def run_daemon(
    socket_path: str,
    cache_dir: Optional[str] = None,
    workers: Optional[int] = None,
    quantum: int = DEFAULT_QUANTUM,
) -> None:
    """Blocking foreground daemon loop (the ``serve run`` CLI verb)."""
    daemon = EvalDaemon(
        socket_path,
        cache_dir=cache_dir,
        workers=workers,
        quantum=quantum,
        capture_engine_spans=True,
    )
    asyncio.run(daemon.serve())
