"""Genetic algorithm baseline (paper Sec. 5.2).

"We also compared against a genetic algorithm ('GA') directly optimizing a
bitvector representation of the circuit."  The GA works on the free-cell
bitvector encoding (see :mod:`repro.prefix.encoding`): tournament
selection, uniform crossover, per-bit mutation, elitism, with every child
legalized before synthesis.  The first generations of this GA also serve
as CircuitVAE's initial dataset, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..engine.telemetry import stage
from ..opt.optimizer import SearchAlgorithm
from ..opt.simulator import BudgetExhausted, CircuitSimulator, Evaluation
from ..opt.variation import crossover, mutate, random_population
from ..prefix.graph import PrefixGraph
from ..prefix.structures import STRUCTURES

__all__ = ["GAConfig", "GeneticAlgorithm"]


@dataclass(frozen=True)
class GAConfig:
    """Genetic-algorithm hyperparameters."""

    population_size: int = 32
    tournament_size: int = 3
    crossover_prob: float = 0.7
    mutation_rate: float = 0.02
    elite_count: int = 2
    seed_with_classics: bool = True


class GeneticAlgorithm(SearchAlgorithm):
    """Steady generational GA over circuit bitvectors."""

    method_name = "GA"

    def __init__(self, config: Optional[GAConfig] = None):
        self.config = config or GAConfig()
        if self.config.elite_count >= self.config.population_size:
            raise ValueError("elite_count must be smaller than the population")
        self.generation: int = 0

    # ------------------------------------------------------------------
    def _initial_population(
        self, n: int, rng: np.random.Generator
    ) -> List[PrefixGraph]:
        config = self.config
        population: List[PrefixGraph] = []
        if config.seed_with_classics:
            population.extend(builder(n) for builder in STRUCTURES.values())
        fill = config.population_size - len(population)
        if fill > 0:
            population.extend(random_population(n, fill, rng))
        return population[: config.population_size]

    def _tournament(
        self,
        population: List[PrefixGraph],
        fitness: np.ndarray,
        rng: np.random.Generator,
    ) -> PrefixGraph:
        contenders = rng.integers(0, len(population), size=self.config.tournament_size)
        winner = min(contenders, key=lambda i: fitness[i])
        return population[int(winner)]

    # ------------------------------------------------------------------
    def run(self, simulator: CircuitSimulator, rng: np.random.Generator) -> Evaluation:
        config = self.config
        telemetry = simulator.telemetry
        population = self._initial_population(simulator.task.n, rng)
        # Whole generations go through one query_many round-trip, so an
        # engine-backed simulator deduplicates and synthesizes each one
        # in a single vectorized pass.
        evaluations = simulator.query_many(population)
        if not evaluations:
            return simulator.best()
        population = [e.graph for e in evaluations]
        fitness = np.array([e.cost for e in evaluations])

        while not simulator.exhausted():
            self.generation += 1
            with stage(telemetry, "variation"):
                elite_idx = np.argsort(fitness)[: config.elite_count]
                children: List[PrefixGraph] = [population[int(i)] for i in elite_idx]
                while len(children) < config.population_size:
                    parent_a = self._tournament(population, fitness, rng)
                    if rng.random() < config.crossover_prob:
                        parent_b = self._tournament(population, fitness, rng)
                        child = crossover(parent_a, parent_b, rng)
                    else:
                        child = parent_a
                    children.append(mutate(child, rng, rate=config.mutation_rate))
            # Parents are the natural delta bases: most children differ
            # from one of them by a mutation or crossover splice.
            evaluations = simulator.query_many(
                children, structural_context=population
            )
            if not evaluations:
                break
            # Cache hits return instantly, so some children may be stale
            # duplicates; the next generation's fitness covers whatever
            # actually got evaluated.
            population = [e.graph for e in evaluations]
            fitness = np.array([e.cost for e in evaluations])
        return simulator.best()
