"""Latent-space Bayesian optimization baseline (paper Sec. 5.2).

"We compared against a variant of CircuitVAE which employs Bayesian
optimization (BO) in the latent space, a practice which has become
common."  The outer loop is identical to Algorithm 1 — same VAE, same
weighted retraining, same decode-and-query step — but the *search* is a
GP surrogate over latent means with expected-improvement acquisition,
maximized over a candidate pool drawn around the data (posterior samples
plus prior samples plus Gaussian perturbations of the incumbents).

The paper finds this loses to prior-regularized gradient search, which it
attributes to the neural cost head learning more from large datasets than
a GP surrogate can.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from .. import nn
from ..core.algorithm import CircuitVAEConfig, build_initial_dataset
from ..core.dataset import CircuitDataset
from ..core.search import decode_and_query, initialize_latents
from ..core.training import report_training_round, train_model
from ..core.vae import CircuitVAEModel, VAEConfig
from ..engine.telemetry import stage
from ..opt.optimizer import SearchAlgorithm
from ..opt.simulator import CircuitSimulator, Evaluation
from .gp import GaussianProcess, expected_improvement, median_lengthscale

__all__ = ["BOConfig", "LatentBO"]


@dataclass(frozen=True)
class BOConfig:
    """Latent-BO hyperparameters."""

    vae: CircuitVAEConfig = field(default_factory=CircuitVAEConfig)
    batch_per_round: int = 16  # designs queried per acquisition round
    candidate_pool: int = 512  # EI is maximized over this many candidates
    gp_max_points: int = 256  # GP fits on the best subset of this size
    gp_noise: float = 1e-2
    perturb_scale: float = 0.3


class LatentBO(SearchAlgorithm):
    """CircuitVAE with GP/EI search instead of gradient descent."""

    method_name = "BO"

    def __init__(self, config: Optional[BOConfig] = None):
        self.config = config or BOConfig()
        self.model: Optional[CircuitVAEModel] = None
        self.dataset: Optional[CircuitDataset] = None

    # ------------------------------------------------------------------
    def _latents_of_dataset(self) -> np.ndarray:
        """Posterior means of every dataset member (GP inputs)."""
        with nn.no_grad():
            mu, _ = self.model.encode(self.dataset.grids())
        return mu.data

    def _candidate_pool(self, rng: np.random.Generator) -> np.ndarray:
        """Candidates: cost-weighted posterior samples, perturbed
        incumbents, and fresh prior draws — mirroring common latent-BO
        practice of restricting acquisition to the data region."""
        config = self.config
        d = self.model.config.latent_dim
        third = config.candidate_pool // 3
        posterior = initialize_latents(
            self.model, self.dataset, third, rng, mode="cost-weighted"
        )
        perturbed = posterior + config.perturb_scale * rng.standard_normal(posterior.shape)
        prior = rng.standard_normal((config.candidate_pool - 2 * third, d))
        return np.concatenate([posterior, perturbed, prior], axis=0)

    # ------------------------------------------------------------------
    def run(self, simulator: CircuitSimulator, rng: np.random.Generator) -> Evaluation:
        config = self.config
        vae_cfg = config.vae
        model_config = VAEConfig(
            n=simulator.task.n,
            latent_dim=vae_cfg.latent_dim,
            base_channels=vae_cfg.base_channels,
            hidden_dim=vae_cfg.hidden_dim,
        )
        self.model = CircuitVAEModel(model_config, rng)
        self.dataset = build_initial_dataset(
            simulator, vae_cfg.initial_samples, rng, k=vae_cfg.k
        )
        optimizer = nn.Adam(self.model.parameters(), lr=vae_cfg.train.lr)

        telemetry = simulator.telemetry
        checkpoint_dir = getattr(simulator, "train_checkpoint_dir", None)
        first_round = True
        round_index = 0
        while not simulator.exhausted():
            epochs = vae_cfg.first_round_epochs if first_round else vae_cfg.train.epochs
            with stage(telemetry, "train"):
                stats = train_model(
                    self.model,
                    self.dataset,
                    rng,
                    config=replace(vae_cfg.train, epochs=epochs),
                    optimizer=optimizer,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_tag=f"round{round_index:03d}",
                    replica_pool=getattr(simulator, "replica_pool", None),
                )
            report_training_round(simulator, stats, round_index)
            first_round = False
            round_index += 1

            with stage(telemetry, "acquisition"):
                # Fit the GP on (latent mean, cost) of the most promising
                # points.
                latents = self._latents_of_dataset()
                costs = self.dataset.costs
                if len(costs) > config.gp_max_points:
                    keep = np.argsort(costs)[: config.gp_max_points]
                    latents, costs = latents[keep], costs[keep]
                gp = GaussianProcess(
                    lengthscale=median_lengthscale(latents, rng),
                    variance=1.0,
                    noise=config.gp_noise,
                ).fit(latents, costs)

                # Maximize EI over the candidate pool; take the top batch.
                candidates = self._candidate_pool(rng)
                mean, std = gp.predict(candidates)
                ei = expected_improvement(mean, std, best=float(costs.min()))
                top = np.argsort(-ei)[: config.batch_per_round]
            # Decode + one batched population evaluation (vectorized on
            # an engine-backed simulator).
            _designs, evaluations = decode_and_query(
                self.model,
                candidates[top],
                simulator,
                rng,
                telemetry,
                structural_context=self.dataset.graphs[-8:],
            )
            new_points = self.dataset.add_evaluations(evaluations)
            if new_points == 0 and not simulator.exhausted():
                # All acquisitions decoded to known circuits: fall back to
                # exploration so the loop never stalls.
                from ..opt.variation import mutate

                parents = [
                    self.dataset.graphs[i]
                    for i in self.dataset.sample_indices(config.batch_per_round, rng)
                ]
                explore = [mutate(g, rng, rate=0.05) for g in parents]
                self.dataset.add_evaluations(
                    simulator.query_many(explore, structural_context=parents)
                )
        return simulator.best()
