"""PrefixRL-style reinforcement learning baseline (paper Sec. 5.2).

The paper's primary baseline is PrefixRL (Roy et al., DAC 2021): deep
Q-learning where the state is the prefix-graph grid, actions add or
remove one node, the modified graph is legalized, and the reward is the
cost improvement measured by physical synthesis.  This module implements
that scheme on the numpy NN substrate:

* **Environment** (:class:`PrefixEnv`): episodic MDP over legal graphs.
  An action toggles one free cell; legalization repairs the result.  The
  reward is ``cost(s) - cost(s')`` (improvement), each step costing one
  simulation.
* **Agent** (:class:`PrefixRL`): DQN with a small CNN over the grid and a
  dueling-free 2 x F head (set/clear per free cell), epsilon-greedy
  exploration, uniform replay, and a periodically-synced target network.

RL searches directly in input space — the difficulty the paper
contrasts with CircuitVAE's learned search space, and the reason this
baseline needs roughly 2-3x more simulations for equal quality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from .. import nn
from ..engine.telemetry import stage
from ..nn import functional as F
from ..opt.optimizer import SearchAlgorithm
from ..opt.simulator import BudgetExhausted, CircuitSimulator, Evaluation
from ..prefix.encoding import free_cells
from ..prefix.graph import PrefixGraph
from ..prefix.legalize import legalize
from ..prefix.structures import STRUCTURES

__all__ = ["RLConfig", "PrefixEnv", "QNetwork", "PrefixRL"]


@dataclass(frozen=True)
class RLConfig:
    """DQN hyperparameters."""

    episode_length: int = 24
    epsilon_start: float = 0.8
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 400
    replay_capacity: int = 2048
    batch_size: int = 32
    discount: float = 0.9
    lr: float = 1e-3
    target_sync_every: int = 50
    train_every: int = 1
    base_channels: int = 8
    hidden_dim: int = 128


class PrefixEnv:
    """Add/remove-node MDP over legal prefix graphs."""

    def __init__(self, simulator: CircuitSimulator, rng: np.random.Generator):
        self.simulator = simulator
        self.rng = rng
        self.n = simulator.task.n
        self.cells = free_cells(self.n)
        self.num_actions = 2 * len(self.cells)
        self.state: Optional[PrefixGraph] = None
        self.state_cost: float = float("inf")

    def reset(self) -> PrefixGraph:
        """Start an episode from a random classical structure."""
        builders = list(STRUCTURES.values())
        builder = builders[int(self.rng.integers(len(builders)))]
        self.state = builder(self.n)
        self.state_cost = self.simulator.query(self.state).cost
        return self.state

    def step(self, action: int) -> Tuple[PrefixGraph, float]:
        """Apply one toggle; returns (next_state, reward)."""
        if self.state is None:
            raise RuntimeError("call reset() before step()")
        cell_index, set_bit = divmod(action, 2)
        i, j = self.cells[cell_index]
        raw = self.state.with_node(i, j, bool(set_bit))
        next_state = legalize(raw)
        next_cost = self.simulator.query(next_state).cost
        reward = self.state_cost - next_cost
        self.state = next_state
        self.state_cost = next_cost
        return next_state, reward


class QNetwork(nn.Module):
    """CNN trunk + dense head scoring every (cell, set/clear) action."""

    def __init__(self, n: int, num_actions: int, config: RLConfig, rng: np.random.Generator):
        super().__init__()
        c = config.base_channels
        self.n = n
        self.conv1 = nn.Conv2d(1, c, 3, rng, stride=1, padding=1)
        self.conv2 = nn.Conv2d(c, 2 * c, 3, rng, stride=2, padding=1)
        flat = 2 * c * ((n + 1) // 2) ** 2
        self.fc1 = nn.Linear(flat, config.hidden_dim, rng)
        self.fc2 = nn.Linear(config.hidden_dim, num_actions, rng)

    def forward(self, grids: np.ndarray) -> nn.Tensor:
        x = nn.Tensor(np.asarray(grids, dtype=np.float64)[:, None, :, :])
        h = self.conv1(x).relu()
        h = self.conv2(h).relu()
        h = h.reshape(h.shape[0], -1)
        h = self.fc1(h).relu()
        return self.fc2(h)


class PrefixRL(SearchAlgorithm):
    """DQN over the prefix-graph action space."""

    method_name = "RL"

    def __init__(self, config: Optional[RLConfig] = None):
        self.config = config or RLConfig()
        self.q_net: Optional[QNetwork] = None
        self.target_net: Optional[QNetwork] = None
        self.steps: int = 0

    # ------------------------------------------------------------------
    def _epsilon(self) -> float:
        config = self.config
        frac = min(self.steps / max(config.epsilon_decay_steps, 1), 1.0)
        return config.epsilon_start + frac * (config.epsilon_end - config.epsilon_start)

    def _select_action(
        self, grid: np.ndarray, num_actions: int, rng: np.random.Generator
    ) -> int:
        if rng.random() < self._epsilon():
            return int(rng.integers(num_actions))
        with nn.no_grad():
            q_values = self.q_net(grid[None]).data[0]
        return int(np.argmax(q_values))

    def _train_step(
        self,
        replay: Deque[Tuple[np.ndarray, int, float, np.ndarray]],
        optimizer: nn.Adam,
        rng: np.random.Generator,
    ) -> float:
        config = self.config
        if len(replay) < config.batch_size:
            return 0.0
        idx = rng.integers(0, len(replay), size=config.batch_size)
        batch = [replay[int(i)] for i in idx]
        states = np.stack([b[0] for b in batch])
        actions = np.array([b[1] for b in batch])
        rewards = np.array([b[2] for b in batch])
        next_states = np.stack([b[3] for b in batch])

        with nn.no_grad():
            next_q = self.target_net(next_states).data.max(axis=1)
        targets = rewards + config.discount * next_q

        q_all = self.q_net(states)
        q_taken = q_all[np.arange(len(batch)), actions]
        loss = F.mse_loss(q_taken, nn.Tensor(targets))
        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self.q_net.parameters(), 5.0)
        optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------
    def run(self, simulator: CircuitSimulator, rng: np.random.Generator) -> Evaluation:
        config = self.config
        telemetry = simulator.telemetry
        env = PrefixEnv(simulator, rng)
        self.q_net = QNetwork(env.n, env.num_actions, config, rng)
        self.target_net = QNetwork(env.n, env.num_actions, config, rng)
        self.target_net.load_state_dict(self.q_net.state_dict())
        optimizer = nn.Adam(self.q_net.parameters(), lr=config.lr)
        replay: Deque = deque(maxlen=config.replay_capacity)

        try:
            while not simulator.exhausted():
                state = env.reset()
                for _ in range(config.episode_length):
                    grid = state.grid.astype(np.float64)
                    action = self._select_action(grid, env.num_actions, rng)
                    next_state, reward = env.step(action)
                    replay.append(
                        (grid, action, reward, next_state.grid.astype(np.float64))
                    )
                    state = next_state
                    self.steps += 1
                    if self.steps % config.train_every == 0:
                        with stage(telemetry, "train"):
                            self._train_step(replay, optimizer, rng)
                    if self.steps % config.target_sync_every == 0:
                        self.target_net.load_state_dict(self.q_net.state_dict())
                    if simulator.exhausted():
                        break
        except BudgetExhausted:
            pass
        return simulator.best()
