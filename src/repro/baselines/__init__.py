"""``repro.baselines`` — the search algorithms the paper compares against."""

from .bo import BOConfig, LatentBO
from .ga import GAConfig, GeneticAlgorithm
from .gp import GaussianProcess, expected_improvement, median_lengthscale, rbf_kernel
from .random_search import RandomSearch, RandomSearchConfig
from .rl import PrefixEnv, PrefixRL, QNetwork, RLConfig

__all__ = [
    "GeneticAlgorithm",
    "GAConfig",
    "PrefixRL",
    "PrefixEnv",
    "QNetwork",
    "RLConfig",
    "LatentBO",
    "BOConfig",
    "GaussianProcess",
    "rbf_kernel",
    "median_lengthscale",
    "expected_improvement",
    "RandomSearch",
    "RandomSearchConfig",
]
