"""Gaussian-process regression for the Bayesian-optimization baseline.

A compact exact-GP implementation: RBF kernel with a median-heuristic
lengthscale (optionally refined by a small grid search over the marginal
likelihood), Cholesky-based posterior, and the closed-form expected
improvement acquisition.  Matches what latent-space BO pipelines
(Tripp et al.; Jin et al.) use as their surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.special import erf

__all__ = ["rbf_kernel", "median_lengthscale", "GaussianProcess", "expected_improvement"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, lengthscale: float, variance: float) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets ``a`` and ``b``."""
    sq = (
        np.sum(a ** 2, axis=1)[:, None]
        + np.sum(b ** 2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return variance * np.exp(-0.5 * np.maximum(sq, 0.0) / lengthscale ** 2)


def median_lengthscale(x: np.ndarray, rng: Optional[np.random.Generator] = None) -> float:
    """Median pairwise distance — the standard kernel-width heuristic."""
    if len(x) > 256 and rng is not None:
        x = x[rng.choice(len(x), size=256, replace=False)]
    diffs = x[:, None, :] - x[None, :, :]
    dists = np.sqrt((diffs ** 2).sum(-1))
    upper = dists[np.triu_indices(len(x), k=1)]
    med = float(np.median(upper)) if len(upper) else 1.0
    return med if med > 1e-9 else 1.0


class GaussianProcess:
    """Exact GP regression with an RBF kernel and fixed noise."""

    def __init__(self, lengthscale: float = 1.0, variance: float = 1.0, noise: float = 1e-2):
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.lengthscale = lengthscale
        self.variance = variance
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        self._y_mean = float(y.mean())
        std = float(y.std())
        self._y_std = std if std > 1e-9 else 1.0
        y_normalized = (y - self._y_mean) / self._y_std
        k = rbf_kernel(x, x, self.lengthscale, self.variance)
        k[np.diag_indices_from(k)] += self.noise
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, y_normalized)
        self._x = x
        return self

    def predict(self, x_star: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points."""
        if self._x is None:
            raise RuntimeError("fit() the GP first")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=np.float64))
        k_star = rbf_kernel(x_star, self._x, self.lengthscale, self.variance)
        mean = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var = self.variance + self.noise - np.sum(k_star * v.T, axis=1)
        var = np.maximum(var, 1e-12)
        return mean * self._y_std + self._y_mean, np.sqrt(var) * self._y_std

    def log_marginal_likelihood(self) -> float:
        """Model evidence of the fitted data (for lengthscale selection)."""
        if self._x is None:
            raise RuntimeError("fit() the GP first")
        n = len(self._x)
        y_normalized = cho_solve(self._chol, self._alpha * 0.0)  # placeholder shape
        # Recover the normalized targets from alpha: y = K alpha.
        k = rbf_kernel(self._x, self._x, self.lengthscale, self.variance)
        k[np.diag_indices_from(k)] += self.noise
        y_normalized = k @ self._alpha
        log_det = 2.0 * np.sum(np.log(np.diag(self._chol[0])))
        return float(
            -0.5 * y_normalized @ self._alpha - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)
        )


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + erf(x / np.sqrt(2.0)))


def _norm_pdf(x: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * x ** 2) / np.sqrt(2.0 * np.pi)


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """Closed-form EI for *minimization*: E[max(best - f - xi, 0)]."""
    std = np.maximum(std, 1e-12)
    improvement = best - mean - xi
    z = improvement / std
    return improvement * _norm_cdf(z) + std * _norm_pdf(z)
