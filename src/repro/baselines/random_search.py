"""Random-search baseline (sanity floor, not in the paper's figures).

Cost-weighted mutate-and-evaluate without any learned model: sample an
incumbent by Eq.-2 weight, mutate it, synthesize.  Any method that cannot
beat this is not learning anything; the test suite uses it as the
reference floor for CircuitVAE's sample-efficiency assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.dataset import CircuitDataset
from ..engine.telemetry import stage
from ..opt.optimizer import SearchAlgorithm
from ..opt.simulator import BudgetExhausted, CircuitSimulator, Evaluation
from ..opt.variation import mutate, random_population
from ..prefix.structures import STRUCTURES

__all__ = ["RandomSearchConfig", "RandomSearch"]


@dataclass(frozen=True)
class RandomSearchConfig:
    mutation_rate: float = 0.03
    k: float = 1e-3  # rank-weight temperature for incumbent sampling
    random_fraction: float = 0.1  # fraction of fully random proposals


class RandomSearch(SearchAlgorithm):
    """Weighted mutate-and-evaluate hill climbing with restarts."""

    method_name = "Random"

    def __init__(self, config: Optional[RandomSearchConfig] = None):
        self.config = config or RandomSearchConfig()

    def run(self, simulator: CircuitSimulator, rng: np.random.Generator) -> Evaluation:
        config = self.config
        telemetry = simulator.telemetry
        n = simulator.task.n
        dataset = CircuitDataset(k=config.k)
        # Seed with the classical structures as one population batch: an
        # engine-backed simulator synthesizes them in a single vectorized
        # pass.  Semantics match the old one-query-per-structure loop:
        # the plan evaluates in submission order and refuses (None) only
        # new designs past the budget — exactly where the serial loop
        # would have raised BudgetExhausted and ended the run.
        plan = simulator.query_plan([builder(n) for builder in STRUCTURES.values()])
        dataset.add_evaluations([e for e in plan if e is not None])
        if any(e is None for e in plan):
            return simulator.best()
        try:
            # Each proposal depends on the previous result, so this inner
            # loop is inherently serial — the engine still serves it from
            # the shared persistent cache.
            while not simulator.exhausted():
                with stage(telemetry, "proposal"):
                    if rng.random() < config.random_fraction:
                        proposal = random_population(n, 1, rng)[0]
                    else:
                        idx = rng.choice(len(dataset), p=dataset.weights())
                        proposal = mutate(
                            dataset.graphs[idx], rng, config.mutation_rate
                        )
                dataset.add_evaluations([simulator.query(proposal)])
        except BudgetExhausted:
            pass
        return simulator.best()
