"""Binary adder design tasks (the paper's main workload).

Includes the standard-benchmark tasks of Sec. 5.2 (uniform IO timing,
Nangate45) and the realistic datapath tasks of Sec. 5.4 (31-bit adders, a
scaled "8 nm" library, and nonuniform bit arrival/required profiles
"captured from a complete datapath").
"""

from __future__ import annotations

import numpy as np

from ..synth.library import nangate45, scaled_library
from ..synth.timing import IOTiming
from .task import CircuitTask

__all__ = ["adder_task", "datapath_io_timing", "realistic_adder_task", "IO_PROFILES"]

#: The captured-profile shapes :func:`datapath_io_timing` models — the
#: authoritative list validators (e.g. :class:`repro.api.TaskSpec`) reuse.
IO_PROFILES = ("late-msb", "late-lsb", "bowl")


def adder_task(n: int, delay_weight: float, library=None) -> CircuitTask:
    """Standard benchmark task: n-bit adder, uniform IO timing."""
    return CircuitTask(
        name=f"adder{n}@w{delay_weight}",
        n=n,
        delay_weight=delay_weight,
        circuit_type="adder",
        library=library if library is not None else nangate45(),
    )


def datapath_io_timing(n: int, profile: str = "late-msb", skew_ns: float = 0.15) -> IOTiming:
    """Per-bit timing profiles emulating a surrounding datapath.

    In a real datapath the adder's operands arrive from upstream logic with
    bit-dependent skew, and downstream consumers need some bits earlier
    than others.  Three captured-profile shapes are provided:

    * ``late-msb`` — high-order input bits arrive later (typical when
      operands come out of a multiplier array), and low-order outputs are
      needed sooner.
    * ``late-lsb`` — the mirror image (e.g. after a right-shifter).
    * ``bowl`` — middle bits late on input, ends early on output.

    ``skew_ns`` is the total arrival spread across the bits.
    """
    bits = np.arange(n) / max(n - 1, 1)
    if profile == "late-msb":
        arrival = bits * skew_ns
        margin = bits * skew_ns * 0.5
    elif profile == "late-lsb":
        arrival = (1.0 - bits) * skew_ns
        margin = (1.0 - bits) * skew_ns * 0.5
    elif profile == "bowl":
        arrival = (1.0 - np.abs(2 * bits - 1.0)) * skew_ns
        margin = np.abs(2 * bits - 1.0) * skew_ns * 0.25
    else:
        raise ValueError(f"unknown profile {profile!r}; choose from {IO_PROFILES}")
    input_arrival = {}
    output_margin = {}
    for i in range(n):
        input_arrival[f"a[{i}]"] = float(arrival[i])
        input_arrival[f"b[{i}]"] = float(arrival[i])
        output_margin[f"s[{i}]"] = float(margin[i])
    output_margin["cout"] = float(margin[-1])
    return IOTiming(input_arrival=input_arrival, output_margin=output_margin)


def realistic_adder_task(
    n: int = 31,
    delay_weight: float = 0.6,
    profile: str = "late-msb",
    library=None,
    skew_ns: float = 0.15,
) -> CircuitTask:
    """The Sec. 5.4 setting: scaled-8nm library + datapath IO timings.

    ``library`` and ``skew_ns`` vary the environment (e.g. datapath
    timings on Nangate45); the defaults are the paper's setting.
    """
    return CircuitTask(
        name=f"realistic-adder{n}@w{delay_weight}",
        n=n,
        delay_weight=delay_weight,
        circuit_type="adder",
        library=library if library is not None else scaled_library("8nm"),
        io_timing=datapath_io_timing(n, profile=profile, skew_ns=skew_ns),
    )
