"""Gray-to-binary converter task (paper Sec. 5.5).

A gray-to-binary converter is a parallel prefix circuit whose associative
operator is XOR: binary bit ``i`` is the XOR of gray bits ``i..n-1``.  The
paper designs a 26-bit converter at omega = 0.6 on Nangate45 to showcase
the framework's generality — the *same* CircuitVAE machinery optimizes it,
only the cell mapping changes (see
:func:`repro.synth.mapping.map_gray_to_binary`).
"""

from __future__ import annotations

from ..synth.library import nangate45
from .task import CircuitTask

__all__ = ["gray_to_binary_task"]


def gray_to_binary_task(n: int = 26, delay_weight: float = 0.6, library=None) -> CircuitTask:
    """The Sec. 5.5 task (default 26-bit, omega=0.6, Nangate45)."""
    return CircuitTask(
        name=f"gray{n}@w{delay_weight}",
        n=n,
        delay_weight=delay_weight,
        circuit_type="gray",
        library=library if library is not None else nangate45(),
    )
