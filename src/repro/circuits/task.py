"""Circuit design tasks: what the optimizer is asked to build.

A :class:`CircuitTask` bundles everything that defines one optimization
problem from the paper's experiment grid: circuit type (adder,
gray-to-binary converter or leading-zero detector), bitwidth, cell
library, IO timing environment and the delay weight omega.  The simulator facade in :mod:`repro.opt.simulator`
turns a task into a black-box cost oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from ..prefix.graph import PrefixGraph
from ..synth.batched import synthesize_many
from ..synth.incremental import synthesize_population
from ..synth.cost import cost_from_metrics
from ..synth.library import CellLibrary, nangate45
from ..synth.physical import PhysicalResult, SynthesisOptions, synthesize
from ..synth.timing import IOTiming

__all__ = ["CircuitTask"]


#: Every prefix computation the synthesis flow can map.  'adder' is the
#: carry-prefix network of Sec. 5.2, 'gray' the XOR-prefix gray-to-binary
#: converter of Sec. 5.5, 'lzd' the OR-prefix leading-zero detector the
#: paper's conclusion proposes.
_CIRCUIT_TYPES = ("adder", "gray", "lzd")


@dataclass(frozen=True)
class CircuitTask:
    """One black-box circuit optimization problem.

    Parameters mirror the paper's experiment axes (Sec. 3, 5.2): ``n`` is
    the bitwidth, ``delay_weight`` is omega, ``circuit_type`` selects the
    cell mapping — 'adder' (carry prefix, Sec. 5.2), 'gray' (XOR prefix,
    Sec. 5.5) or 'lzd' (OR prefix, the paper's suggested extension); see
    :meth:`circuit_types`.
    """

    name: str
    n: int
    delay_weight: float
    circuit_type: str = "adder"
    library: CellLibrary = field(default_factory=nangate45)
    io_timing: IOTiming = field(default_factory=IOTiming)
    options: SynthesisOptions = field(default_factory=SynthesisOptions)

    @staticmethod
    def circuit_types() -> tuple:
        """The supported ``circuit_type`` values (shared with validators,
        e.g. :class:`repro.api.TaskSpec`)."""
        return _CIRCUIT_TYPES

    def __post_init__(self):
        if self.n < 2:
            raise ValueError("tasks need at least 2 bits")
        if self.circuit_type not in self.circuit_types():
            raise ValueError(
                f"unknown circuit type {self.circuit_type!r}; "
                f"choose from {self.circuit_types()}"
            )
        if not 0.0 <= self.delay_weight <= 1.0:
            raise ValueError("delay_weight must be in [0, 1]")

    def synthesize(self, graph: PrefixGraph) -> PhysicalResult:
        """Run the physical flow on one legal graph."""
        if graph.n != self.n:
            raise ValueError(f"graph width {graph.n} != task width {self.n}")
        return synthesize(
            graph, self.library, self.circuit_type, self.io_timing, self.options
        )

    def evaluate_many(self, graphs: Sequence[PrefixGraph]) -> List[PhysicalResult]:
        """Synthesize a whole population through the vectorized fast path.

        Results are bit-identical to calling :meth:`synthesize` on each
        graph (see :mod:`repro.synth.batched`); only wall-clock differs.
        """
        graphs = list(graphs)
        for graph in graphs:
            if graph.n != self.n:
                raise ValueError(
                    f"graph width {graph.n} != task width {self.n}"
                )
        return synthesize_many(
            graphs, self.library, self.circuit_type, self.io_timing, self.options
        )

    def evaluate_population(
        self,
        graphs: Sequence[PrefixGraph],
        base_hints: Sequence[PrefixGraph] = (),
        stats=None,
    ) -> List[PhysicalResult]:
        """Synthesize a population through the delta-aware pipeline.

        Structurally shared graphs ride :mod:`repro.synth.incremental`
        (cone-hash delta planning + dirty batched STA); any guard failure
        falls back to :meth:`evaluate_many`.  Results are bit-identical
        either way.  ``base_hints`` are previously evaluated graphs
        (e.g. the engine's :class:`~repro.engine.cache.ConeBaseTier`);
        ``stats`` collects :class:`~repro.synth.incremental.IncrementalStats`.
        """
        graphs = list(graphs)
        for graph in graphs:
            if graph.n != self.n:
                raise ValueError(
                    f"graph width {graph.n} != task width {self.n}"
                )
        results, _ = synthesize_population(
            graphs,
            self.library,
            self.circuit_type,
            self.io_timing,
            self.options,
            base_hints=base_hints,
            stats=stats,
        )
        return results

    def cost(self, result: PhysicalResult) -> float:
        """Scalar cost of a synthesis result under this task's omega."""
        return cost_from_metrics(result.area_um2, result.delay_ns, self.delay_weight)

    def with_delay_weight(self, delay_weight: float) -> "CircuitTask":
        """Same task at a different omega (used by the omega sweeps)."""
        return replace(
            self, delay_weight=delay_weight, name=f"{self.name.split('@')[0]}@w{delay_weight}"
        )
