"""Circuit design tasks: what the optimizer is asked to build.

A :class:`CircuitTask` bundles everything that defines one optimization
problem from the paper's experiment grid: circuit type (adder or
gray-to-binary), bitwidth, cell library, IO timing environment and the
delay weight omega.  The simulator facade in :mod:`repro.opt.simulator`
turns a task into a black-box cost oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..prefix.graph import PrefixGraph
from ..synth.cost import cost_from_metrics
from ..synth.library import CellLibrary, nangate45
from ..synth.physical import PhysicalResult, SynthesisOptions, synthesize
from ..synth.timing import IOTiming

__all__ = ["CircuitTask"]


@dataclass(frozen=True)
class CircuitTask:
    """One black-box circuit optimization problem.

    Parameters mirror the paper's experiment axes (Sec. 3, 5.2): ``n`` is
    the bitwidth, ``delay_weight`` is omega, ``circuit_type`` selects the
    cell mapping ('adder' or 'gray').
    """

    name: str
    n: int
    delay_weight: float
    circuit_type: str = "adder"
    library: CellLibrary = field(default_factory=nangate45)
    io_timing: IOTiming = field(default_factory=IOTiming)
    options: SynthesisOptions = field(default_factory=SynthesisOptions)

    def __post_init__(self):
        if self.n < 2:
            raise ValueError("tasks need at least 2 bits")
        if self.circuit_type not in ("adder", "gray", "lzd"):
            raise ValueError(f"unknown circuit type {self.circuit_type!r}")
        if not 0.0 <= self.delay_weight <= 1.0:
            raise ValueError("delay_weight must be in [0, 1]")

    def synthesize(self, graph: PrefixGraph) -> PhysicalResult:
        """Run the physical flow on one legal graph."""
        if graph.n != self.n:
            raise ValueError(f"graph width {graph.n} != task width {self.n}")
        return synthesize(
            graph, self.library, self.circuit_type, self.io_timing, self.options
        )

    def cost(self, result: PhysicalResult) -> float:
        """Scalar cost of a synthesis result under this task's omega."""
        return cost_from_metrics(result.area_um2, result.delay_ns, self.delay_weight)

    def with_delay_weight(self, delay_weight: float) -> "CircuitTask":
        """Same task at a different omega (used by the omega sweeps)."""
        return replace(
            self, delay_weight=delay_weight, name=f"{self.name.split('@')[0]}@w{delay_weight}"
        )
