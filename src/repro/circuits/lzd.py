"""Leading-zero detector task (the paper's suggested extension).

The conclusion of the paper: "Our method may be applied unchanged to
optimize other prefix computations, such as leading zero detectors."
This module takes that up: an LZD is a parallel prefix circuit whose
associative operator is OR (monotone "seen a one yet" flags, msb-first),
mapped by :func:`repro.synth.mapping.map_leading_zero_detector` to an OR
prefix network plus a one-hot output stage.  The optimizer, baselines,
benches and verification all apply without modification.
"""

from __future__ import annotations

from ..synth.library import nangate45
from .task import CircuitTask

__all__ = ["lzd_task"]


def lzd_task(n: int = 16, delay_weight: float = 0.6, library=None) -> CircuitTask:
    """An n-bit leading-zero detector design task."""
    return CircuitTask(
        name=f"lzd{n}@w{delay_weight}",
        n=n,
        delay_weight=delay_weight,
        circuit_type="lzd",
        library=library if library is not None else nangate45(),
    )
