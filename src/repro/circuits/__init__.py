"""``repro.circuits`` — concrete design tasks from the paper's evaluation."""

from .adder import adder_task, datapath_io_timing, realistic_adder_task
from .gray import gray_to_binary_task
from .lzd import lzd_task
from .task import CircuitTask

__all__ = [
    "CircuitTask",
    "adder_task",
    "datapath_io_timing",
    "realistic_adder_task",
    "gray_to_binary_task",
    "lzd_task",
]
