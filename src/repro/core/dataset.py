"""The evolving dataset D of (circuit, cost) pairs with rank reweighting.

Implements Eq. 2 of the paper (the weighted-retraining scheme of Tripp et
al.): the weight of datapoint (x, c) is

    w(x; D, k)  proportional to  1 / (k * |D| + rank_D(x)),
    rank_D(x) = |{x_i : c_i < c}|,

so low-cost circuits get more training volume in latent space.  Weights
depend on the whole dataset and are recomputed after every acquisition
round.  The same weights drive cost-weighted sampling of search starting
points (Sec. 4.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..opt.simulator import Evaluation
from ..prefix.graph import PrefixGraph

__all__ = ["rank_weights", "CircuitDataset"]


def rank_weights(costs: np.ndarray, k: float) -> np.ndarray:
    """Normalized Eq.-2 weights for a cost vector.

    Ties share the rank of their first occurrence (|{c_i < c}| counts
    *strictly* better points, per the paper), so duplicated costs receive
    identical weights.
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = len(costs)
    if n == 0:
        return np.zeros(0)
    if k <= 0:
        raise ValueError("k must be positive")
    order = np.argsort(costs, kind="stable")
    sorted_costs = costs[order]
    # rank of each sorted element = index of the first equal-cost element.
    first_occurrence = np.searchsorted(sorted_costs, sorted_costs, side="left")
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = first_occurrence
    weights = 1.0 / (k * n + ranks)
    return weights / weights.sum()


class CircuitDataset:
    """Deduplicated collection of evaluated circuits.

    Deduplication is by canonical graph key: the simulator already
    legalizes, so two encodings of one circuit never inflate the dataset.
    """

    def __init__(self, k: float = 1e-3):
        self.k = k
        self.graphs: List[PrefixGraph] = []
        self.costs_list: List[float] = []
        self._keys: Dict[bytes, int] = {}

    # ------------------------------------------------------------------
    def add(self, graph: PrefixGraph, cost: float) -> bool:
        """Insert one datapoint; returns False if it was already present."""
        key = graph.key()
        if key in self._keys:
            return False
        self._keys[key] = len(self.graphs)
        self.graphs.append(graph)
        self.costs_list.append(float(cost))
        return True

    def add_evaluations(self, evaluations: Iterable[Evaluation]) -> int:
        """Insert a batch of simulator evaluations; returns #new points."""
        return sum(self.add(e.graph, e.cost) for e in evaluations)

    def __len__(self) -> int:
        return len(self.graphs)

    def __contains__(self, graph: PrefixGraph) -> bool:
        return graph.key() in self._keys

    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        return np.asarray(self.costs_list, dtype=np.float64)

    def weights(self) -> np.ndarray:
        """Current Eq.-2 weights (recomputed from scratch each call)."""
        return rank_weights(self.costs, self.k)

    def uniform_weights(self) -> np.ndarray:
        """Ablation: the no-reweighting distribution (Fig. 4)."""
        n = len(self)
        return np.full(n, 1.0 / n) if n else np.zeros(0)

    def sample_indices(
        self, m: int, rng: np.random.Generator, weighted: bool = True
    ) -> np.ndarray:
        """Sample ``m`` datapoint indices (with replacement) by weight."""
        if len(self) == 0:
            raise ValueError("cannot sample from an empty dataset")
        p = self.weights() if weighted else self.uniform_weights()
        return rng.choice(len(self), size=m, replace=True, p=p)

    def grids(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Stacked (B, N, N) float grids for the VAE."""
        if indices is None:
            indices = range(len(self))
        return np.stack([self.graphs[i].grid.astype(np.float64) for i in indices])

    def best(self) -> Tuple[PrefixGraph, float]:
        """(graph, cost) of the lowest-cost datapoint."""
        if not self.graphs:
            raise ValueError("dataset is empty")
        idx = int(np.argmin(self.costs))
        return self.graphs[idx], self.costs_list[idx]

    def cost_normalizer(self) -> Tuple[float, float]:
        """(mean, std) of costs, used to standardize the cost-head target."""
        costs = self.costs
        std = float(costs.std())
        return float(costs.mean()), std if std > 1e-9 else 1.0
