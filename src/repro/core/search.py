"""Latent-space search (paper Sec. 4.2).

The two domain-agnostic contributions of the paper live here:

* **Prior-regularized search** (Eq. 4): gradient descent on
  ``g(z) = f_pi(z) - gamma * log p(z)``.  With the unit-Gaussian prior,
  ``-log p(z) = ||z||^2 / 2 + const``, so the regularizer softly pulls
  trajectories toward the origin where the training data lives, preventing
  the optimizer from "overfitting" the cost predictor far from the data
  manifold.  ``gamma`` is sampled log-uniformly per trajectory in
  [0.01, 0.1] (the setting Fig. 5 selects).

* **Cost-weighted sampling**: search trajectories start from the
  posteriors of *good, diverse* known circuits — datapoints sampled
  proportionally to their Eq.-2 weights — rather than from the prior or a
  single seed design (the Fig. 4 ablations).

Trajectory latents are captured every ``capture_every`` steps, decoded,
and queried, so one gradient descent run yields a whole batch of
candidates along the path from known-good to predicted-better designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..engine.telemetry import EngineTelemetry, stage
from ..opt.simulator import CircuitSimulator, Evaluation
from ..prefix.graph import PrefixGraph
from .dataset import CircuitDataset
from .vae import CircuitVAEModel

__all__ = [
    "SearchConfig",
    "SearchTrace",
    "initialize_latents",
    "latent_gradient_search",
    "decode_and_query",
]

InitMode = Literal["cost-weighted", "prior", "fixed-graph"]


@dataclass(frozen=True)
class SearchConfig:
    """Latent-optimization hyperparameters."""

    num_parallel: int = 16  # m: parallel trajectories
    num_steps: int = 50  # T: gradient steps
    capture_every: int = 10  # t: capture interval
    step_size: float = 0.1
    gamma_low: float = 0.01  # per-trajectory log-uniform gamma range
    gamma_high: float = 0.1
    init_mode: InitMode = "cost-weighted"
    box_constraint: Optional[float] = None  # ablation: clamp ||z||_inf instead


@dataclass
class SearchTrace:
    """Everything captured during one latent search round."""

    initial_latents: np.ndarray  # (m, d)
    captured_latents: np.ndarray  # (num_captures * m, d)
    gammas: np.ndarray  # (m,)
    predicted_costs: np.ndarray  # standardized predictions at captures
    trajectories: np.ndarray  # (num_captures, m, d) full paths (Fig. 5)


def initialize_latents(
    model: CircuitVAEModel,
    dataset: CircuitDataset,
    m: int,
    rng: np.random.Generator,
    mode: InitMode = "cost-weighted",
    fixed_graph: Optional[PrefixGraph] = None,
) -> np.ndarray:
    """Draw ``m`` starting latents (Algorithm 1, lines 6-7).

    ``cost-weighted``: sample dataset points by Eq.-2 weight, then sample
    their posteriors — good *and* diverse.  ``prior``: z0 ~ N(0, I).
    ``fixed-graph``: every trajectory starts at the posterior of one given
    design (the paper's Sklansky ablation).
    """
    d = model.config.latent_dim
    if mode == "prior":
        return rng.standard_normal((m, d))
    if mode == "fixed-graph":
        if fixed_graph is None:
            raise ValueError("fixed-graph init needs a graph")
        grids = np.repeat(fixed_graph.grid[None].astype(np.float64), m, axis=0)
    elif mode == "cost-weighted":
        idx = dataset.sample_indices(m, rng, weighted=True)
        grids = dataset.grids(idx)
    else:
        raise ValueError(f"unknown init mode {mode!r}")
    with nn.no_grad():
        mu, logvar = model.encode(grids)
    sigma = np.exp(0.5 * logvar.data)
    return mu.data + sigma * rng.standard_normal(mu.shape)


def decode_and_query(
    model: CircuitVAEModel,
    latents: np.ndarray,
    simulator: CircuitSimulator,
    rng: np.random.Generator,
    telemetry: Optional[EngineTelemetry] = None,
    structural_context: Sequence[PrefixGraph] = (),
) -> Tuple[List[PrefixGraph], List[Evaluation]]:
    """Decode a latent population and evaluate it as one batch.

    The shared tail of Algorithm 1 and latent BO (lines 9-10): sample
    designs from the decoder, then submit the whole population in one
    ``query_many`` round-trip, which an engine-backed simulator serves
    with one vectorized synthesis pass (:mod:`repro.synth.batched`).
    Semantics (budget accounting, history order, refusals) are identical
    to querying the designs one by one.
    """
    with stage(telemetry, "decode"):
        designs = model.sample_designs(latents, rng)
    return designs, simulator.query_many(
        designs, structural_context=structural_context
    )


def latent_gradient_search(
    model: CircuitVAEModel,
    z0: np.ndarray,
    rng: np.random.Generator,
    config: SearchConfig,
    telemetry: Optional[EngineTelemetry] = None,
) -> SearchTrace:
    """Minimize g(z) = f_pi(z) - gamma * log p(z) by gradient descent.

    All ``m`` trajectories run batched; each has its own gamma drawn
    log-uniformly from [gamma_low, gamma_high] (Sec. 5.3 found this beats
    any single gamma).  Returns captured latents at every
    ``capture_every``-step checkpoint *including* the final step.
    Wall-clock is charged to the ``latent_search`` stage of ``telemetry``
    (usually the engine-backed simulator's per-run counters) when given.
    """
    with stage(telemetry, "latent_search"):
        return _latent_gradient_search(model, z0, rng, config)


def _latent_gradient_search(
    model: CircuitVAEModel,
    z0: np.ndarray,
    rng: np.random.Generator,
    config: SearchConfig,
) -> SearchTrace:
    z0 = np.atleast_2d(np.asarray(z0, dtype=np.float64))
    m = z0.shape[0]
    if config.gamma_low <= 0 or config.gamma_high < config.gamma_low:
        raise ValueError("need 0 < gamma_low <= gamma_high")
    log_low, log_high = np.log(config.gamma_low), np.log(config.gamma_high)
    gammas = np.exp(rng.uniform(log_low, log_high, size=m))

    z = z0.copy()
    captures: List[np.ndarray] = []
    predicted: List[np.ndarray] = []
    for step in range(1, config.num_steps + 1):
        zt = nn.Tensor(z, requires_grad=True)
        cost_pred = model.predict_cost(zt)
        if config.box_constraint is None:
            # Eq. 4: -gamma * log p(z) = gamma * ||z||^2 / 2 (+ const).
            prior_term = (zt * zt).sum(axis=1) * nn.Tensor(0.5 * gammas)
            objective = (cost_pred + prior_term).sum()
        else:
            objective = cost_pred.sum()
        objective.backward()
        z = z - config.step_size * zt.grad
        if config.box_constraint is not None:
            # Tripp et al.'s alternative: hard box around the origin.
            z = np.clip(z, -config.box_constraint, config.box_constraint)
        if step % config.capture_every == 0 or step == config.num_steps:
            captures.append(z.copy())
            with nn.no_grad():
                predicted.append(model.predict_cost(nn.Tensor(z)).data.copy())

    trajectories = np.stack(captures)  # (num_captures, m, d)
    return SearchTrace(
        initial_latents=z0,
        captured_latents=trajectories.reshape(-1, z0.shape[1]),
        gammas=gammas,
        predicted_costs=np.concatenate(predicted),
        trajectories=trajectories,
    )
