"""Stacked multi-replica VAE training (vmap over the seed grid).

The paper's seed/replica grid retrains K architecturally identical
models on independent data — embarrassingly parallel work the serial
path pays for K times over in Python dispatch.  :func:`train_replicas`
lifts ONE replica's compiled train-step program onto a leading replica
axis (:class:`repro.nn.vmap.StackedTrainStep`): parameters, gradients
and the Adam moments live in ``(K, sum-of-param-sizes)`` flat state,
every step replays one batched program, and each replica keeps its own
rng stream, cost normalizer and Eq.-2 sampling weights — draw-for-draw
identical to training that replica alone.

Equivalence contract
--------------------
Serial :func:`repro.core.training.train_model` per replica is the
reference.  Before any state is touched, the first stacked step is
verified per-replica against each replica's own solo program on probe
data drawn from *copies* of the rng streams; any mismatch (or any
structural guard failing, or ``REPRO_STACKED_REPLICAS=0``) falls back
to the serial reference wholesale — same stream consumption, bit-
identical results.  ``benchmarks/bench_loop_compile.py`` gates the
stacked speedup and asserts per-replica loss curves against the eager
reference within 1e-10.

:class:`ReplicaRoundPool` adapts the seed-grid runner's thread-per-seed
execution to this batched entry point: cells rendezvous per round,
group by training-shape fingerprint, and a deterministic leader trains
every group member's round in one stacked program.
"""

from __future__ import annotations

import copy
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn.vmap import StackedTrainStep
from .dataset import CircuitDataset
from .training import TrainConfig, TrainStats, _compiled_step_for, train_model
from .vae import CircuitVAEModel

__all__ = ["train_replicas", "use_stacked_replicas", "ReplicaRoundPool"]

#: Machine-checked fast-path contract (``python -m repro check``): the
#: kill switch below forces the serial reference path — per-replica
#: :func:`train_model` calls — and ``benchmarks/bench_loop_compile.py``
#: gates the K-stacked speedup and loss-curve equivalence.
FAST_PATH_CONTRACT = {
    "kill_switch": "REPRO_STACKED_REPLICAS",
    "reference": "train_model",
    "bench": "bench_loop_compile.py",
}


def use_stacked_replicas() -> bool:
    return os.environ.get("REPRO_STACKED_REPLICAS", "1") != "0"


def _train_serial(models, datasets, rngs, config, optimizers) -> List[TrainStats]:
    """The reference path: each replica through plain train_model."""
    return [
        train_model(model, dataset, rng, config, optimizer)
        for model, dataset, rng, optimizer in zip(models, datasets, rngs, optimizers)
    ]


def train_replicas(
    models: Sequence[CircuitVAEModel],
    datasets: Sequence[CircuitDataset],
    rngs: Sequence[np.random.Generator],
    config: Optional[TrainConfig] = None,
    optimizers: Optional[Sequence[nn.Adam]] = None,
) -> List[TrainStats]:
    """Train K same-architecture models as one stacked program.

    Replica ``i`` trains on ``datasets[i]`` drawing from ``rngs[i]``,
    exactly as ``train_model(models[i], datasets[i], rngs[i], config,
    optimizers[i])`` would — the serial form IS the fallback whenever
    stacking is disabled, structurally unsupported, or fails its
    first-step verification.  Checkpointing is not supported here (the
    runner keeps checkpointed cells on the per-cell serial path).
    """
    config = config or TrainConfig()
    count = len(models)
    if not (len(datasets) == len(rngs) == count):
        raise ValueError("models, datasets and rngs must have equal length")
    if optimizers is None:
        optimizers = [nn.Adam(m.parameters(), lr=config.lr) for m in models]
    elif len(optimizers) != count:
        raise ValueError("need one optimizer per model")
    for dataset in datasets:
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")

    if count < 2 or not use_stacked_replicas() or not _stackable(
        models, datasets, optimizers, config
    ):
        return _train_serial(models, datasets, rngs, config, optimizers)
    try:
        session = _StackedSession(models, datasets, rngs, config, optimizers)
    except nn.CompileUnsupported:
        return _train_serial(models, datasets, rngs, config, optimizers)
    return session.train()


def _stackable(models, datasets, optimizers, config) -> bool:
    """Cheap structural guards; False routes to the serial reference."""
    shapes = [tuple(p.data.shape) for p in models[0].parameters()]
    sizes = {len(d) for d in datasets}
    if len(sizes) != 1:
        return False
    for model in models[1:]:
        if [tuple(p.data.shape) for p in model.parameters()] != shapes:
            return False
        if model.config != models[0].config:
            return False
    head = optimizers[0]
    if type(head) is not nn.Adam:
        return False
    for opt in optimizers:
        if type(opt) is not nn.Adam or opt.weight_decay != 0.0:
            return False
        if (opt.lr, opt.beta1, opt.beta2, opt.eps) != (
            head.lr, head.beta1, head.beta2, head.eps,
        ):
            return False
        if opt._step_count != head._step_count:
            return False
        if len(opt.params) != len(head.params):
            return False
    return True


class _StackedSession:
    """One stacked multi-replica training call, fully prepared.

    The constructor compiles/lifts the program and verifies the first
    stacked step without consuming any replica's rng stream or mutating
    any state, so a :class:`~repro.nn.CompileUnsupported` here leaves
    the serial fallback a clean, bit-identical path.
    """

    def __init__(self, models, datasets, rngs, config, optimizers) -> None:
        self.models = list(models)
        self.datasets = list(datasets)
        self.rngs = list(rngs)
        self.config = config
        self.optimizers = list(optimizers)
        self.count = len(self.models)

        # Per-replica data products (mirrors train_model's hoisting;
        # setting the normalizer here is idempotent with the serial
        # fallback, which re-sets the identical values).
        self.targets = []
        for model, dataset in zip(self.models, self.datasets):
            mean, std = dataset.cost_normalizer()
            model.set_cost_normalizer(mean, std)
            self.targets.append(model.standardize_costs(dataset.costs))
        self.sample_p = [
            d.weights() if config.reweight else d.uniform_weights()
            for d in self.datasets
        ]
        self.cdfs = []
        for p in self.sample_p:
            cdf = np.cumsum(p)
            cdf /= cdf[-1]
            self.cdfs.append(cdf)
        self.all_grids = [d.grids() for d in self.datasets]
        self.batch = min(config.batch_size, len(self.datasets[0]))
        self.batches_per_epoch = max(1, len(self.datasets[0]) // config.batch_size)
        self.latent_dim = self.models[0].config.latent_dim

        # Compile the template program from replica 0 on a deterministic
        # probe batch (no rng consumed), then lift it with its parameter
        # and gradient storage bound straight onto the flat state — the
        # replay reads params from (and writes grads into) the same
        # memory the flat Adam update touches, no per-step copies.
        probe = self._probe_arrays(0)
        step0 = _compiled_step_for(self.models[0], self.optimizers[0], config)
        program = step0.program_for(probe)
        param_views, grad_views = self._build_flat_state(program)
        self.stacked = StackedTrainStep(program, self.count, param_views, grad_views)
        self._bind_replica_params(program)
        self._verify(probe[0].shape, program)

    # -- wiring --------------------------------------------------------
    def _probe_arrays(self, k: int) -> Tuple[np.ndarray, ...]:
        """A deterministic example batch for replica ``k`` (no rng)."""
        idx = np.arange(self.batch) % len(self.datasets[k])
        grids = self.all_grids[k][idx]
        x_pad = self.models[k]._pad_grids(grids)
        eps = np.zeros((self.batch, self.latent_dim))
        return (x_pad, grids, eps, self.targets[k][idx])

    def _bind_replica_params(self, program) -> None:
        """Map each template param slot to every replica's tensor."""
        base_params = self.optimizers[0].params
        index_of = {id(p): i for i, p in enumerate(base_params)}
        self.slots = []  # (nid, [replica-k tensor ...], param index)
        seen = set()
        for nid, tensor in self.stacked.param_entries:
            idx = index_of.get(id(tensor))
            if idx is None:
                raise nn.CompileUnsupported(
                    "traced parameter is not owned by the optimizer"
                )
            if self.stacked.param_grads.get(nid) is None:
                raise nn.CompileUnsupported(
                    "a parameter receives no gradient; stacking would "
                    "desynchronize the optimizer state"
                )
            replicas = [opt.params[idx] for opt in self.optimizers]
            for replica in replicas:
                if replica.data.shape != tensor.data.shape:
                    raise nn.CompileUnsupported("replica parameter shape mismatch")
            self.slots.append((nid, replicas, idx))
            seen.add(idx)
        if len(seen) != len(base_params):
            raise nn.CompileUnsupported(
                "program does not cover every optimizer parameter"
            )

    def _build_flat_state(self, program):
        """(K, sum-of-sizes) flat parameter/moment/grad state + offsets.

        Returns per-node *views* into ``flat_p`` / ``flat_g`` (splitting
        each row's contiguous slice back to the parameter shape) for the
        stacked program to adopt as its parameter and gradient storage,
        in the same node order :class:`StackedTrainStep` enumerates.
        """
        k = self.count
        plan_kinds = program.plan.kinds
        entries = [
            (nid, tensor)
            for nid, tensor in program._trace.param_nodes.items()
            if nid in plan_kinds
        ]
        self.offsets = []
        total = 0
        for nid, tensor in entries:
            size = int(tensor.data.size)
            self.offsets.append((total, total + size))
            total += size
        self.flat_p = np.empty((k, total))
        self.flat_m = np.empty((k, total))
        self.flat_v = np.empty((k, total))
        self.flat_g = np.empty((k, total))
        self.scratch1 = np.empty((k, total))
        self.scratch2 = np.empty((k, total))
        param_views, grad_views = {}, {}
        for (a, b), (nid, tensor) in zip(self.offsets, entries):
            shape = (k,) + tuple(tensor.data.shape)
            for flat, views in ((self.flat_p, param_views), (self.flat_g, grad_views)):
                view = flat[:, a:b].reshape(shape)
                if view.base is None:
                    raise nn.CompileUnsupported("flat state slice is not a view")
                views[nid] = view
        return param_views, grad_views

    def _gather_state(self) -> None:
        for (a, b), (nid, replicas, idx) in zip(self.offsets, self.slots):
            for row, (tensor, opt) in enumerate(zip(replicas, self.optimizers)):
                self.flat_p[row, a:b] = tensor.data.ravel()
                self.flat_m[row, a:b] = opt._m[idx].ravel()
                self.flat_v[row, a:b] = opt._v[idx].ravel()

    def _scatter_back(self, steps: int) -> None:
        """Write the trained flat state back into every replica."""
        for (a, b), (nid, replicas, idx) in zip(self.offsets, self.slots):
            for row, (tensor, opt) in enumerate(zip(replicas, self.optimizers)):
                shape = tensor.data.shape
                tensor.data[...] = self.flat_p[row, a:b].reshape(shape)
                opt._m[idx][...] = self.flat_m[row, a:b].reshape(shape)
                opt._v[idx][...] = self.flat_v[row, a:b].reshape(shape)
                tensor.grad = None
        for opt in self.optimizers:
            opt._step_count += steps

    # -- the stacked update rule (solo-matching associations) ----------
    def _clip_and_step(self) -> None:
        config = self.config
        flat_g = self.flat_g
        # Per-replica global-norm clip: square once, then reduce each
        # parameter's contiguous slice separately and accumulate through
        # Python floats — the same per-parameter pairwise sums (and the
        # same float association) as nn.clip_grad_norm.
        sq = self.scratch1
        np.multiply(flat_g, flat_g, out=sq)
        for row in range(self.count):
            total = 0.0
            row_sq = sq[row]
            for a, b in self.offsets:
                total += float(np.add.reduce(row_sq[a:b]))
            total = float(np.sqrt(total))
            if total > config.grad_clip and total > 0.0:
                flat_g[row] *= config.grad_clip / total
        # Adam with shared scalar state, ufunc-for-ufunc the sequence
        # nn.Adam.step applies per parameter (weight_decay is 0 by guard).
        opt = self.optimizers[0]
        count = opt._step_count + self._steps_done + 1
        bias1 = 1.0 - opt.beta1 ** count
        bias2 = 1.0 - opt.beta2 ** count
        m, v, s1, s2 = self.flat_m, self.flat_v, self.scratch1, self.scratch2
        np.multiply(flat_g, 1.0 - opt.beta1, out=s2)
        m *= opt.beta1
        m += s2
        np.multiply(flat_g, 1.0 - opt.beta2, out=s2)
        np.multiply(s2, flat_g, out=s2)
        v *= opt.beta2
        v += s2
        np.divide(m, bias1, out=s1)
        np.divide(v, bias2, out=s2)
        np.sqrt(s2, out=s2)
        s2 += opt.eps
        np.multiply(s1, opt.lr, out=s1)
        np.divide(s1, s2, out=s1)
        self.flat_p -= s1
        self._steps_done += 1

    # -- verification --------------------------------------------------
    def _verify(self, pad_shape, program) -> None:
        """First stacked step vs every replica's solo program.

        Uses probe data drawn from *copies* of the rng streams and
        compares outputs and parameter gradients; any drift beyond fp
        reassociation noise rejects the session before state is touched.
        """
        k = self.count
        inputs = self._alloc_inputs(pad_shape)
        probe_rngs = [copy.deepcopy(rng) for rng in self.rngs]
        per_replica = []
        for row in range(k):
            arrays = self._draw_step(probe_rngs[row], row)
            per_replica.append(arrays)
            for buf, arr in zip(inputs, arrays):
                buf[row] = arr
        # Stacked run on the replicas' CURRENT parameters (the probe
        # batches are already in the program's bound input buffers).
        self._gather_state()
        outputs = self.stacked.run()
        for row in range(k):
            step = _compiled_step_for(
                self.models[row], self.optimizers[row], self.config
            )
            solo = step.program_for(per_replica[row])
            solo_out = solo.run(per_replica[row])
            for name, stacked_value in outputs.items():
                if not np.allclose(
                    solo_out[name], stacked_value[row], rtol=1e-10, atol=1e-12
                ):
                    raise nn.CompileUnsupported(
                        f"stacked output {name!r} diverges from solo replay"
                    )
            for (a, b), (nid, replicas, idx) in zip(self.offsets, self.slots):
                solo_grad = None
                for tensor, grad_buf in solo._param_grad_binds:
                    if tensor is replicas[row]:
                        solo_grad = grad_buf
                        break
                if solo_grad is None or not np.allclose(
                    solo_grad.ravel(), self.flat_g[row, a:b],
                    rtol=1e-10, atol=1e-12,
                ):
                    raise nn.CompileUnsupported(
                        "stacked parameter gradient diverges from solo replay"
                    )
            for p in self.models[row].parameters():
                p.grad = None
        self._inputs = inputs

    # -- execution -----------------------------------------------------
    def _alloc_inputs(self, pad_shape) -> List[np.ndarray]:
        """The stacked program's own input buffers, bound in place.

        The session writes each step's batch directly into the program's
        ``input_storage`` (position order: x_pad, grids, eps, targets)
        and calls :meth:`StackedTrainStep.run` with no arguments, so the
        replay never copies inputs.  The padded-grid buffer is zeroed
        once; per step only the interior ``[:n, :n]`` window changes.
        """
        storage = self.stacked.input_storage
        if sorted(storage) != [0, 1, 2, 3]:
            raise nn.CompileUnsupported(
                "stacked program does not consume all four step inputs"
            )
        storage[0][...] = 0.0
        return [storage[i] for i in range(4)]

    def _draw_step(self, rng, row) -> Tuple[np.ndarray, ...]:
        """One replica's batch, consuming its stream exactly like
        train_model (choice-uniforms then reparameterization noise)."""
        u = rng.random(self.batch)
        idx = self.cdfs[row].searchsorted(u, side="right")
        grids = self.all_grids[row][idx]
        x_pad = self.models[row]._pad_grids(grids)
        eps = rng.standard_normal((self.batch, self.latent_dim))
        return (x_pad, grids, eps, self.targets[row][idx])

    def train(self) -> List[TrainStats]:
        config = self.config
        k, batch = self.count, self.batch
        n = self.models[0].config.n
        inputs = self._inputs
        x_pad, grids_buf, eps_buf, targets_buf = inputs
        self._steps_done = 0
        for model in self.models:
            model.train()
        self._gather_state()

        steps = config.epochs * self.batches_per_epoch
        losses = np.empty((steps, k, 4))
        out_names = ("loss", "reconstruction", "kl", "cost")
        for s in range(steps):
            for row in range(k):
                rng = self.rngs[row]
                u = rng.random(batch)
                idx = self.cdfs[row].searchsorted(u, side="right")
                np.take(self.all_grids[row], idx, axis=0, out=grids_buf[row])
                x_pad[row, :, 0, :n, :n] = grids_buf[row]
                eps_buf[row] = rng.standard_normal((batch, self.latent_dim))
                np.take(self.targets[row], idx, out=targets_buf[row])
            outputs = self.stacked.run()
            for column, name in enumerate(out_names):
                losses[s, :, column] = outputs[name]
            self._clip_and_step()

        self._scatter_back(steps)
        results = []
        per_epoch = losses.reshape(
            config.epochs, self.batches_per_epoch, k, 4
        ).mean(axis=1)
        for row, model in enumerate(self.models):
            stats = TrainStats(compiled=True, stacked=True)
            stats.total = [float(x) for x in per_epoch[:, row, 0]]
            stats.reconstruction = [float(x) for x in per_epoch[:, row, 1]]
            stats.kl = [float(x) for x in per_epoch[:, row, 2]]
            stats.cost = [float(x) for x in per_epoch[:, row, 3]]
            model.eval()
            results.append(stats)
        return results


# ----------------------------------------------------------------------
# Seed-grid rendezvous
# ----------------------------------------------------------------------
class ReplicaRoundPool:
    """Groups concurrent seed cells' training rounds into stacked calls.

    The runner registers one handle per cell in a wave (every cell is
    guaranteed its own thread).  On a cell's FIRST ``train_model`` call
    the handle arrives at a rendezvous; once every registered cell has
    either arrived or withdrawn (checkpointed cells withdraw — durable
    resume stays per-cell), arrivals are grouped by training-shape
    fingerprint and one thread trains each group in cell-id order
    through :func:`train_replicas` while the rest wait.  Singleton
    groups and later rounds return ``None`` — the cell trains solo,
    identically to a pool-less run.  Grouping depends only on the wave's
    membership, never on thread timing, so results stay deterministic.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._cells: Dict[int, Dict] = {}
        self._pending = 0
        self._trained = False
        self._results: Dict[int, Optional[TrainStats]] = {}

    def handle(self, cell_id: int) -> "ReplicaPoolHandle":
        with self._lock:
            self._cells[cell_id] = {"state": "registered"}
            self._pending += 1
        return ReplicaPoolHandle(self, cell_id)

    # -- handle callbacks ----------------------------------------------
    def _withdraw(self, cell_id: int) -> None:
        with self._lock:
            cell = self._cells.get(cell_id)
            if cell is None or cell["state"] != "registered":
                return
            cell["state"] = "withdrawn"
            self._pending -= 1
            if self._pending == 0:
                self._ready.set()

    def _arrive(self, cell_id: int, model, dataset, rng, config, optimizer):
        with self._lock:
            cell = self._cells.get(cell_id)
            if cell is None or cell["state"] != "registered":
                return None
            cell.update(
                state="arrived",
                model=model,
                dataset=dataset,
                rng=rng,
                config=config,
                optimizer=optimizer,
            )
            self._pending -= 1
            if self._pending == 0:
                self._ready.set()
        self._ready.wait()
        self._train_groups()
        return self._results.get(cell_id)

    def _train_groups(self) -> None:
        """Leader election + stacked training, exactly once per pool."""
        with self._lock:
            if self._trained:
                return
            self._trained = True
            arrived = sorted(
                cid
                for cid, cell in self._cells.items()
                if cell["state"] == "arrived"
            )
            groups: Dict[Tuple, List[int]] = {}
            for cid in arrived:
                cell = self._cells[cid]
                key = (
                    len(cell["dataset"]),
                    cell["config"],
                    tuple(p.data.shape for p in cell["model"].parameters()),
                )
                groups.setdefault(key, []).append(cid)
            for members in groups.values():
                if len(members) < 2:
                    for cid in members:
                        self._results[cid] = None
                    continue
                cells = [self._cells[cid] for cid in members]
                try:
                    stats = train_replicas(
                        [c["model"] for c in cells],
                        [c["dataset"] for c in cells],
                        [c["rng"] for c in cells],
                        config=cells[0]["config"],
                        optimizers=[c["optimizer"] for c in cells],
                    )
                except Exception:
                    # Never take the whole wave down: members train solo.
                    for cid in members:
                        self._results[cid] = None
                    continue
                for cid, stat in zip(members, stats):
                    self._results[cid] = stat


class ReplicaPoolHandle:
    """One cell's one-shot ticket into a :class:`ReplicaRoundPool`."""

    def __init__(self, pool: ReplicaRoundPool, cell_id: int) -> None:
        self._pool = pool
        self._cell_id = cell_id
        self._used = False

    def withdraw(self) -> None:
        """Leave the rendezvous (checkpointed cells, cell teardown)."""
        self._used = True
        self._pool._withdraw(self._cell_id)

    def train(self, model, dataset, rng, config, optimizer) -> Optional[TrainStats]:
        """First call joins the rendezvous; later calls train solo."""
        if self._used:
            return None
        self._used = True
        return self._pool._arrive(
            self._cell_id, model, dataset, rng, config, optimizer
        )
