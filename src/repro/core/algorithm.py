"""The CircuitVAE outer loop (paper Algorithm 1).

Each acquisition round: recompute Eq.-2 sample weights, (re)fit the VAE +
cost predictor on the weighted dataset, launch ``m`` parallel
prior-regularized gradient-descent trajectories from cost-weighted
starting latents, decode the latents captured along the trajectories, and
query the synthesis oracle on the decoded designs.  The loop runs until
the simulation budget is exhausted and returns the lowest-cost circuit
found.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from .. import nn
from ..engine.telemetry import stage
from ..opt.optimizer import SearchAlgorithm
from ..opt.simulator import BudgetExhausted, CircuitSimulator, Evaluation
from ..opt.variation import mutate, random_population
from ..prefix.graph import PrefixGraph
from ..prefix.structures import sklansky
from .dataset import CircuitDataset
from .search import (
    SearchConfig,
    SearchTrace,
    decode_and_query,
    initialize_latents,
    latent_gradient_search,
)
from .training import TrainConfig, report_training_round, train_model
from .vae import CircuitVAEModel, VAEConfig

__all__ = ["CircuitVAEConfig", "CircuitVAEOptimizer", "build_initial_dataset"]


@dataclass(frozen=True)
class CircuitVAEConfig:
    """All hyperparameters of Algorithm 1 in one place.

    Defaults follow the paper: beta=0.01, lambda=10, k=0.001, gamma
    log-uniform in [0.01, 0.1]; structural sizes are scaled for CPU (see
    DESIGN.md).  ``initial_samples`` is the initial-dataset size D_0; the
    paper launches runs at several values and groups them into one curve.
    """

    latent_dim: int = 24
    base_channels: int = 8
    hidden_dim: int = 128
    k: float = 1e-3
    initial_samples: int = 64
    first_round_epochs: int = 30
    train: TrainConfig = field(default_factory=TrainConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    fixed_init_graph: Optional[PrefixGraph] = None  # for the Fig. 4 ablation


def build_initial_dataset(
    simulator: CircuitSimulator,
    size: int,
    rng: np.random.Generator,
    dataset: Optional[CircuitDataset] = None,
    k: float = 1e-3,
) -> CircuitDataset:
    """Collect D_0 the way the paper does: early GA-style exploration.

    Seeds with the classical structures, then fills the budget with
    mutation-of-best exploration (equivalent to the "first few generations
    of GA" the paper uses), so the dataset mixes known-good designs with
    diverse random variations.
    """
    from ..prefix.structures import STRUCTURES

    dataset = dataset or CircuitDataset(k=k)
    n = simulator.task.n
    seeds: List[PrefixGraph] = [builder(n) for builder in STRUCTURES.values()]
    seeds += random_population(n, max(size // 4, 4), rng)
    try:
        for graph in seeds:
            dataset.add_evaluations([simulator.query(graph)])
            if len(dataset) >= size:
                break
        # Mutation-of-sampled exploration until the dataset reaches `size`.
        while len(dataset) < size:
            weights = dataset.weights()
            idx = rng.choice(len(dataset), p=weights)
            child = mutate(dataset.graphs[idx], rng, rate=0.03)
            dataset.add_evaluations([simulator.query(child)])
    except BudgetExhausted:
        pass
    return dataset


class CircuitVAEOptimizer(SearchAlgorithm):
    """Latent circuit optimization: the paper's primary contribution."""

    method_name = "CircuitVAE"

    def __init__(self, config: Optional[CircuitVAEConfig] = None):
        self.config = config or CircuitVAEConfig()
        self.model: Optional[CircuitVAEModel] = None
        self.dataset: Optional[CircuitDataset] = None
        self.traces: List[SearchTrace] = []
        self.round_best: List[float] = []

    # ------------------------------------------------------------------
    def _ensure_model(self, n: int, rng: np.random.Generator) -> CircuitVAEModel:
        if self.model is None:
            vae_config = VAEConfig(
                n=n,
                latent_dim=self.config.latent_dim,
                base_channels=self.config.base_channels,
                hidden_dim=self.config.hidden_dim,
            )
            self.model = CircuitVAEModel(vae_config, rng)
        return self.model

    def run(self, simulator: CircuitSimulator, rng: np.random.Generator) -> Evaluation:
        config = self.config
        # Per-run engine telemetry (None against a plain serial simulator):
        # training/search/decode stages land next to the engine's own
        # synthesis/cache counters in the RunRecord.
        telemetry = simulator.telemetry
        model = self._ensure_model(simulator.task.n, rng)
        self.dataset = build_initial_dataset(
            simulator, config.initial_samples, rng, k=config.k
        )
        optimizer = nn.Adam(model.parameters(), lr=config.train.lr)

        # Durable per-cell training checkpoints (set by the run-directory
        # layer); each acquisition round gets its own tag so resume can
        # skip exactly the epochs the interrupted attempt completed.
        checkpoint_dir = getattr(simulator, "train_checkpoint_dir", None)
        first_round = True
        round_index = 0
        while not simulator.exhausted():
            # Lines 4-5: reweight and refit on the grown dataset.
            epochs = config.first_round_epochs if first_round else config.train.epochs
            with stage(telemetry, "train"):
                stats = train_model(
                    model,
                    self.dataset,
                    rng,
                    config=replace(config.train, epochs=epochs),
                    optimizer=optimizer,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_tag=f"round{round_index:03d}",
                    replica_pool=getattr(simulator, "replica_pool", None),
                )
            report_training_round(simulator, stats, round_index)
            first_round = False
            round_index += 1

            # Lines 6-8: initialize and run prior-regularized search.
            z0 = initialize_latents(
                model,
                self.dataset,
                config.search.num_parallel,
                rng,
                mode=config.search.init_mode,
                fixed_graph=config.fixed_init_graph,
            )
            trace = latent_gradient_search(
                model, z0, rng, config.search, telemetry=telemetry
            )
            self.traces.append(trace)

            # Lines 9-11: decode, batch-query, extend the dataset.  The
            # whole captured population goes through one EvalBatch, which
            # an engine-backed simulator vectorizes.
            _designs, evaluations = decode_and_query(
                model,
                trace.captured_latents,
                simulator,
                rng,
                telemetry,
                structural_context=self.dataset.graphs[-8:],
            )
            new_points = self.dataset.add_evaluations(evaluations)
            if simulator.history:
                self.round_best.append(simulator.best().cost)
            if new_points == 0 and not simulator.exhausted():
                # Decoder collapsed onto known designs: inject mutation
                # noise so the loop keeps acquiring (rare at small n).
                parents = [
                    self.dataset.graphs[i]
                    for i in self.dataset.sample_indices(
                        config.search.num_parallel, rng
                    )
                ]
                explore = [mutate(g, rng, rate=0.05) for g in parents]
                self.dataset.add_evaluations(
                    simulator.query_many(explore, structural_context=parents)
                )
        return simulator.best()
