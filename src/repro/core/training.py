"""Joint training of the VAE and cost predictor (paper Sec. 4.1, Eq. 3).

The loss is

    L = sum_i w_i(D) * [ BCE(x_i | z_i) + beta * KL(q(z|x_i) || N(0,I)) ]
        + lambda * w_i(D) * (f_pi(z_i) - c_i)^2

with beta = 0.01, lambda = 10.0, k = 1e-3 in all the paper's experiments,
optimized with Adam.  The per-datapoint weights w_i implement weighted
retraining (Eq. 2); minibatches are drawn *by weight* with replacement,
which is the estimator Tripp et al. use and equals the weighted objective
in expectation.  Costs are standardized before entering the cost head so
lambda's scale is task-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..nn import losses
from .dataset import CircuitDataset
from .vae import CircuitVAEModel

__all__ = ["TrainConfig", "TrainStats", "train_model"]


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults)."""

    beta: float = 0.01  # KL weight (beta-VAE)
    lam: float = 10.0  # cost-prediction loss weight (lambda)
    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    grad_clip: float = 5.0
    reweight: bool = True  # Eq. 2 on; False reproduces the Fig. 4 ablation


@dataclass
class TrainStats:
    """Per-epoch loss traces."""

    total: List[float] = field(default_factory=list)
    reconstruction: List[float] = field(default_factory=list)
    kl: List[float] = field(default_factory=list)
    cost: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        return {
            "total": self.total[-1],
            "reconstruction": self.reconstruction[-1],
            "kl": self.kl[-1],
            "cost": self.cost[-1],
        }


def train_model(
    model: CircuitVAEModel,
    dataset: CircuitDataset,
    rng: np.random.Generator,
    config: Optional[TrainConfig] = None,
    optimizer: Optional[nn.Adam] = None,
) -> TrainStats:
    """Fit the model on the current dataset; returns loss traces.

    Pass the same ``optimizer`` across acquisition rounds to keep Adam
    moments warm (the paper retrains by continuing optimization on the
    grown dataset rather than from scratch).
    """
    config = config or TrainConfig()
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    optimizer = optimizer or nn.Adam(model.parameters(), lr=config.lr)

    mean, std = dataset.cost_normalizer()
    model.set_cost_normalizer(mean, std)
    targets = model.standardize_costs(dataset.costs)

    stats = TrainStats()
    batches_per_epoch = max(1, len(dataset) // config.batch_size)
    model.train()
    for _epoch in range(config.epochs):
        epoch_total = epoch_rec = epoch_kl = epoch_cost = 0.0
        for _batch in range(batches_per_epoch):
            idx = dataset.sample_indices(
                min(config.batch_size, len(dataset)), rng, weighted=config.reweight
            )
            grids = dataset.grids(idx)
            batch_targets = targets[idx]

            logits, mu, logvar, _z, cost_pred = model(grids, rng)
            rec = losses.reconstruction_loss(logits, nn.Tensor(grids))
            kl = losses.kl_loss(mu, logvar)
            cost = losses.cost_prediction_loss(cost_pred, batch_targets)
            loss = rec + config.beta * kl + config.lam * cost

            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()

            epoch_total += loss.item()
            epoch_rec += rec.item()
            epoch_kl += kl.item()
            epoch_cost += cost.item()
        stats.total.append(epoch_total / batches_per_epoch)
        stats.reconstruction.append(epoch_rec / batches_per_epoch)
        stats.kl.append(epoch_kl / batches_per_epoch)
        stats.cost.append(epoch_cost / batches_per_epoch)
    model.eval()
    return stats
