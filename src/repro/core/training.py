"""Joint training of the VAE and cost predictor (paper Sec. 4.1, Eq. 3).

The loss is

    L = sum_i w_i(D) * [ BCE(x_i | z_i) + beta * KL(q(z|x_i) || N(0,I)) ]
        + lambda * w_i(D) * (f_pi(z_i) - c_i)^2

with beta = 0.01, lambda = 10.0, k = 1e-3 in all the paper's experiments,
optimized with Adam.  The per-datapoint weights w_i implement weighted
retraining (Eq. 2); minibatches are drawn *by weight* with replacement,
which is the estimator Tripp et al. use and equals the weighted objective
in expectation.  Costs are standardized before entering the cost head so
lambda's scale is task-independent.

Execution engine
----------------
The step graph never changes shape within a call, so by default the
forward+backward+optimizer step runs through the traced graph executor
(:mod:`repro.nn.compile`): one eager trace, then buffer-reusing fused
replay — numerically equivalent to the eager tape (which remains the
reference; per-epoch losses agree to well below 1e-10) and >= 2x faster
on the CNN-VAE configuration (gated by
``benchmarks/bench_vae_training.py``).  Set ``REPRO_COMPILED_TRAIN=0``
to force the eager tape; anything the compiler cannot trace also falls
back to eager automatically.  Both engines consume the *same* rng
stream (minibatch indices, then reparameterization noise), so switching
engines never desynchronizes an algorithm's randomness.

Checkpointing
-------------
Pass ``checkpoint_dir`` (the run-directory integration does, per
``(method, seed)`` cell) and every ``config.checkpoint_every`` epochs —
plus at completion — the model parameters, optimizer moments, rng state
and loss traces are written atomically under a per-call ``tag``.  A
re-entrant call with the same tag and a matching fingerprint restores
everything and skips the completed epochs, which is how
:meth:`repro.api.Session.resume` avoids re-training interrupted runs.
"""

from __future__ import annotations

import json
import os
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..nn.loop import CompiledTrainLoop, use_compiled_loop
from ..obs import trace
from ..utils.io import atomic_write_json
from .dataset import CircuitDataset
from .vae import CircuitVAEModel

__all__ = [
    "TrainConfig",
    "TrainStats",
    "train_model",
    "train_replicas",
    "report_training_round",
]


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults)."""

    beta: float = 0.01  # KL weight (beta-VAE)
    lam: float = 10.0  # cost-prediction loss weight (lambda)
    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    grad_clip: float = 5.0
    reweight: bool = True  # Eq. 2 on; False reproduces the Fig. 4 ablation
    checkpoint_every: int = 5  # epochs between durable checkpoints (if any)


@dataclass
class TrainStats:
    """Per-epoch loss traces plus execution-engine counters."""

    total: List[float] = field(default_factory=list)
    reconstruction: List[float] = field(default_factory=list)
    kl: List[float] = field(default_factory=list)
    cost: List[float] = field(default_factory=list)
    #: True when the compiled graph executor ran the steps.
    compiled: bool = False
    #: epochs restored from a checkpoint instead of re-trained.
    epochs_skipped: int = 0
    #: compile/replay/fusion counter *deltas* from this call
    #: (:class:`repro.nn.CompileStats` keys), empty when eager.
    compile_counters: Dict[str, int] = field(default_factory=dict)
    #: wall-clock of each compiled-step replay in this call (seconds);
    #: empty when every step ran eager.
    replay_seconds: List[float] = field(default_factory=list)
    #: wall-clock of each eager (fallback) step in this call (seconds);
    #: the eager twin of ``replay_seconds``, so latency telemetry sees
    #: both engines (``train_step_eager`` histogram).
    eager_seconds: List[float] = field(default_factory=list)
    #: wall-clock of each recorded-loop segment replay in this call
    #: (seconds); empty unless the recorded loop ran
    #: (``train_loop_replay`` histogram, ``loop_replays`` counter).
    loop_seconds: List[float] = field(default_factory=list)
    #: True when this round trained as one replica of a stacked
    #: multi-model program (:func:`repro.core.replicas.train_replicas`).
    stacked: bool = False
    #: per-kernel replay-second *deltas* (``fwd:<op>`` / ``bwd:<op>``)
    #: from this call; populated only under ``REPRO_PROFILE=1``.
    kernel_seconds: Dict[str, float] = field(default_factory=dict)

    def last(self) -> Dict[str, float]:
        return {
            "total": self.total[-1],
            "reconstruction": self.reconstruction[-1],
            "kl": self.kl[-1],
            "cost": self.cost[-1],
        }

    @property
    def epochs_run(self) -> int:
        return len(self.total) - self.epochs_skipped


#: The compiled-train fast path's contract, machine-checked by
#: ``python -m repro check``: :func:`_use_compiled_train` reads the kill
#: switch below, the eager reference is ``model.training_losses`` (the
#: define-by-run tape every fallback — and the compiler's own verify
#: pass — runs), and ``benchmarks/bench_vae_training.py`` gates the
#: speedup while asserting loss-curve equivalence against that tape.
FAST_PATH_CONTRACT = {
    "kill_switch": "REPRO_COMPILED_TRAIN",
    "reference": "training_losses",
    "bench": "bench_vae_training.py",
}


def _use_compiled_train() -> bool:
    return os.environ.get("REPRO_COMPILED_TRAIN", "1") != "0"


def _compiled_step_for(
    model: CircuitVAEModel, optimizer: nn.Optimizer, config: TrainConfig
) -> nn.CompiledTrainStep:
    """The model's compiled step, cached on the optimizer across rounds.

    Keyed per live model through a ``WeakKeyDictionary`` — a
    garbage-collected model's entries die with it, so a new model whose
    ``id()`` happens to be recycled can never inherit a stale compiled
    step — then by everything that changes the traced graph or the
    update rule (epochs do not); shape changes are handled inside the
    step's own signature cache.
    """
    cache = getattr(optimizer, "_compiled_train_steps", None)
    if cache is None:
        cache = weakref.WeakKeyDictionary()
        optimizer._compiled_train_steps = cache
    per_model = cache.get(model)
    if per_model is None:
        per_model = {}
        cache[model] = per_model
    key = (config.beta, config.lam, config.grad_clip)
    step = per_model.get(key)
    if step is None:
        # The step must not strongly reference the model (a WeakKey
        # entry whose value holds its key is immortal), so the trace
        # closure goes through a weakref.  Only tracing calls it; an
        # already-compiled program replays without touching the model.
        model_ref = weakref.ref(model)

        def step_fn(x_pad, target_grid, eps, cost_targets):
            live = model_ref()
            if live is None:
                raise nn.CompileUnsupported("model was garbage-collected")
            return live.training_losses(
                x_pad, target_grid, eps, cost_targets,
                beta=config.beta, lam=config.lam,
            )

        step = nn.compile_train_step(
            step_fn, model.parameters(), optimizer=optimizer,
            grad_clip=config.grad_clip,
        )
        per_model[key] = step
    return step


def _compiled_loop_for(step: nn.CompiledTrainStep) -> CompiledTrainLoop:
    """The step's recorded loop, cached on the step itself."""
    loop = getattr(step, "_train_loop", None)
    if loop is None:
        loop = CompiledTrainLoop(step)
        step._train_loop = loop
    return loop


def _loop_segment_epochs(epoch: int, config: TrainConfig, checkpoint_dir) -> int:
    """Epochs from ``epoch`` to the next durable-checkpoint boundary.

    Without checkpointing the whole remaining run is one segment;
    otherwise segments end exactly where ``train_model`` writes
    checkpoints, so the rng stream and parameter state at every save
    point are bit-identical to per-step execution.
    """
    if checkpoint_dir is None or config.checkpoint_every <= 0:
        return config.epochs - epoch
    every = config.checkpoint_every
    boundary = ((epoch // every) + 1) * every
    return min(boundary, config.epochs) - epoch


# ----------------------------------------------------------------------
# Durable training checkpoints
# ----------------------------------------------------------------------
def _checkpoint_paths(checkpoint_dir: str, tag: str):
    return (
        os.path.join(checkpoint_dir, f"{tag}.npz"),
        os.path.join(checkpoint_dir, f"{tag}.json"),
    )


def _fingerprint(
    model: CircuitVAEModel,
    dataset: CircuitDataset,
    config: TrainConfig,
    optimizer: nn.Optimizer,
) -> Dict:
    """What must match for a checkpoint to be resumable into this call."""
    return {
        "dataset_size": len(dataset),
        "epochs": config.epochs,
        "batch_size": config.batch_size,
        "lr": config.lr,
        "beta": config.beta,
        "lam": config.lam,
        "grad_clip": config.grad_clip,
        "reweight": config.reweight,
        "parameters": model.num_parameters(),
        "optimizer": type(optimizer).__name__,
    }


def _save_checkpoint(
    checkpoint_dir: str,
    tag: str,
    epoch: int,
    model: CircuitVAEModel,
    optimizer: nn.Optimizer,
    rng: np.random.Generator,
    stats: TrainStats,
    fingerprint: Dict,
) -> None:
    """Atomically persist epoch ``epoch``'s state under ``tag``.

    Each file is written atomically, but the pair is not one
    transaction: a crash between the npz and the json would leave an
    epoch-N archive next to epoch-(N-k) metadata.  The archive therefore
    embeds its own epoch (``checkpoint:epoch``); the loader refuses any
    pair whose epochs disagree, so a torn checkpoint is simply ignored
    (the round retrains from scratch, deterministically) instead of
    silently mixing generations.
    """
    npz_path, meta_path = _checkpoint_paths(checkpoint_dir, tag)
    state: Dict[str, np.ndarray] = {
        "checkpoint:epoch": np.asarray(epoch, dtype=np.int64)
    }
    for name, value in model.state_dict().items():
        state[f"param:{name}"] = value
    for name, value in optimizer.state_dict().items():
        state[f"opt:{name}"] = value
    nn.save_state(state, npz_path)
    atomic_write_json(
        meta_path,
        {
            "tag": tag,
            "epoch": epoch,
            "fingerprint": fingerprint,
            "rng_state": rng.bit_generator.state,
            "cost_normalizer": [model.cost_mean, model.cost_std],
            "losses": {
                "total": stats.total,
                "reconstruction": stats.reconstruction,
                "kl": stats.kl,
                "cost": stats.cost,
            },
        },
        indent=2,
    )


def _load_checkpoint(
    checkpoint_dir: str,
    tag: str,
    model: CircuitVAEModel,
    optimizer: nn.Optimizer,
    rng: np.random.Generator,
    stats: TrainStats,
    fingerprint: Dict,
) -> int:
    """Restore the newest matching checkpoint; returns the start epoch.

    A missing, unreadable, fingerprint-mismatched or *torn* checkpoint
    (npz and json from different generations — a crash landed between
    the two writes) is ignored and training starts from epoch 0, which
    keeps resumed runs bit-identical: the whole round re-trains
    deterministically rather than mixing state from two generations.
    """
    npz_path, meta_path = _checkpoint_paths(checkpoint_dir, tag)
    if not (os.path.exists(npz_path) and os.path.exists(meta_path)):
        return 0
    try:
        with open(meta_path) as handle:
            meta = json.load(handle)
        if meta.get("fingerprint") != fingerprint:
            return 0
        state = nn.load_state(npz_path)
        if int(np.asarray(state.get("checkpoint:epoch", -1))) != int(meta["epoch"]):
            return 0  # torn pair: archive and metadata disagree
        # Read every field up front, then restore transactionally: a
        # checkpoint that passes the gates but still fails to apply
        # (renamed/reshaped parameters, missing meta keys) must leave
        # the model and optimizer exactly as they were so the round can
        # retrain from scratch, per this function's contract.
        params = {
            name[len("param:"):]: value
            for name, value in state.items()
            if name.startswith("param:")
        }
        opt_state = {
            name[len("opt:"):]: value
            for name, value in state.items()
            if name.startswith("opt:")
        }
        rng_state = meta["rng_state"]
        mean, std = meta["cost_normalizer"]
        losses = {
            name: list(meta["losses"][name])
            for name in ("total", "reconstruction", "kl", "cost")
        }
        epoch = int(meta["epoch"])
        model_snapshot = model.state_dict()
        optimizer_snapshot = optimizer.state_dict()
        try:
            model.load_state_dict(params)
            optimizer.load_state_dict(opt_state)
        except Exception:
            model.load_state_dict(model_snapshot)
            optimizer.load_state_dict(optimizer_snapshot)
            return 0
    except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
        return 0
    rng.bit_generator.state = rng_state
    model.cost_mean, model.cost_std = float(mean), float(std)
    for name, values in losses.items():
        getattr(stats, name).extend(values)
    stats.epochs_skipped = epoch
    return stats.epochs_skipped


# ----------------------------------------------------------------------
def train_model(
    model: CircuitVAEModel,
    dataset: CircuitDataset,
    rng: np.random.Generator,
    config: Optional[TrainConfig] = None,
    optimizer: Optional[nn.Adam] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_tag: str = "train",
    replica_pool=None,
) -> TrainStats:
    """Fit the model on the current dataset; returns loss traces.

    Pass the same ``optimizer`` across acquisition rounds to keep Adam
    moments warm (the paper retrains by continuing optimization on the
    grown dataset rather than from scratch).

    With ``checkpoint_dir``, progress is durably checkpointed every
    ``config.checkpoint_every`` epochs under ``checkpoint_tag`` (one tag
    per acquisition round), and a repeated call resumes from the newest
    matching checkpoint — restoring parameters, optimizer moments and
    the rng state exactly, so a resumed run is bit-identical to an
    uninterrupted one.

    ``replica_pool`` (a :class:`repro.core.replicas.ReplicaRoundPool`
    handle, installed by the seed-grid runner) lets identically shaped
    first-round cells train as one stacked multi-replica program; a
    checkpointed cell withdraws immediately so durable resume semantics
    stay per-cell.
    """
    config = config or TrainConfig()
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    optimizer = optimizer or nn.Adam(model.parameters(), lr=config.lr)

    if replica_pool is not None:
        if checkpoint_dir is not None:
            replica_pool.withdraw()
        else:
            pooled = replica_pool.train(model, dataset, rng, config, optimizer)
            if pooled is not None:
                return pooled

    mean, std = dataset.cost_normalizer()
    model.set_cost_normalizer(mean, std)
    targets = model.standardize_costs(dataset.costs)

    stats = TrainStats()
    fingerprint = None
    start_epoch = 0
    if checkpoint_dir is not None:
        fingerprint = _fingerprint(model, dataset, config, optimizer)
        start_epoch = _load_checkpoint(
            checkpoint_dir, checkpoint_tag, model, optimizer, rng, stats, fingerprint
        )

    compiled_step = step_obj = None
    counters_before: Dict[str, int] = {}
    kernels_before: Dict[str, float] = {}
    if _use_compiled_train():
        step_obj = compiled_step = _compiled_step_for(model, optimizer, config)
        counters_before = step_obj.stats.as_dict()
        kernels_before = step_obj.kernel_seconds()

    latent_dim = model.config.latent_dim
    batch = min(config.batch_size, len(dataset))
    batches_per_epoch = max(1, len(dataset) // config.batch_size)
    # The dataset is fixed for the whole call, so hoist the Eq.-2 weight
    # computation (a sort per call instead of per step) and pre-stack the
    # grids once; ``rng.choice`` below matches dataset.sample_indices
    # draw-for-draw, keeping the rng stream identical to the per-step
    # form.
    sample_p = dataset.weights() if config.reweight else dataset.uniform_weights()
    all_grids = dataset.grids()
    model.train()

    # Recorded-loop engine: replay whole checkpoint segments through the
    # step's own program (REPRO_COMPILED_LOOP=0 forces per-step replay;
    # anything the loop cannot prove bit-identical also falls back).
    session = None
    if compiled_step is not None and use_compiled_loop():
        try:
            session = _compiled_loop_for(compiled_step).begin(
                all_grids, targets, sample_p, batch, model._pad_grids, latent_dim
            )
        except nn.CompileUnsupported:
            session = None
    segment_rows = None
    segment_next = 0

    for epoch in range(start_epoch, config.epochs):
        if session is not None and segment_rows is None:
            seg_epochs = _loop_segment_epochs(epoch, config, checkpoint_dir)
            seg_start = time.perf_counter()
            segment_rows = session.run(seg_epochs * batches_per_epoch, rng)
            stats.loop_seconds.append(time.perf_counter() - seg_start)
            segment_next = 0
        epoch_total = epoch_rec = epoch_kl = epoch_cost = 0.0
        for _batch in range(batches_per_epoch):
            if segment_rows is not None:
                row = segment_rows[segment_next]
                segment_next += 1
                values = {
                    "loss": float(row[0]),
                    "reconstruction": float(row[1]),
                    "kl": float(row[2]),
                    "cost": float(row[3]),
                }
                epoch_total += values["loss"]
                epoch_rec += values["reconstruction"]
                epoch_kl += values["kl"]
                epoch_cost += values["cost"]
                continue
            idx = rng.choice(len(dataset), size=batch, replace=True, p=sample_p)
            grids = all_grids[idx]
            batch_targets = targets[idx]
            x_pad = model._pad_grids(grids)
            eps = rng.standard_normal((grids.shape[0], latent_dim))

            values = None
            if compiled_step is not None:
                try:
                    step_start = time.perf_counter()
                    values = compiled_step(x_pad, grids, eps, batch_targets)
                    stats.replay_seconds.append(time.perf_counter() - step_start)
                except nn.CompileUnsupported:
                    # Permanent fallback for this call: the eager tape is
                    # always correct, and retrying the trace every step
                    # would only burn time.
                    compiled_step = None
            if values is None:
                step_start = time.perf_counter()
                outs = model.training_losses(
                    nn.Tensor(x_pad),
                    nn.Tensor(grids),
                    nn.Tensor(eps),
                    nn.Tensor(batch_targets),
                    beta=config.beta,
                    lam=config.lam,
                )
                optimizer.zero_grad()
                outs["loss"].backward()
                nn.clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
                values = {name: tensor.item() for name, tensor in outs.items()}
                stats.eager_seconds.append(time.perf_counter() - step_start)

            epoch_total += values["loss"]
            epoch_rec += values["reconstruction"]
            epoch_kl += values["kl"]
            epoch_cost += values["cost"]
        stats.total.append(epoch_total / batches_per_epoch)
        stats.reconstruction.append(epoch_rec / batches_per_epoch)
        stats.kl.append(epoch_kl / batches_per_epoch)
        stats.cost.append(epoch_cost / batches_per_epoch)
        if segment_rows is not None and segment_next >= len(segment_rows):
            segment_rows = None

        done = epoch + 1
        if checkpoint_dir is not None and config.checkpoint_every > 0:
            if done % config.checkpoint_every == 0 or done == config.epochs:
                _save_checkpoint(
                    checkpoint_dir, checkpoint_tag, done, model, optimizer,
                    rng, stats, fingerprint,
                )
    model.eval()

    if step_obj is not None:
        # Counters are reported even after a fallback — that is how the
        # train_fallbacks telemetry (and the TrainingRoundFinished
        # event) can ever show one.
        stats.compiled = compiled_step is not None
        after = step_obj.stats.as_dict()
        stats.compile_counters = {
            name: after[name] - counters_before.get(name, 0)
            for name in after
            if after[name] - counters_before.get(name, 0) != 0
        }
        kernels_after = step_obj.kernel_seconds()
        stats.kernel_seconds = {
            label: kernels_after[label] - kernels_before.get(label, 0.0)
            for label in kernels_after
            if kernels_after[label] - kernels_before.get(label, 0.0) > 0.0
        }
    return stats


def train_replicas(models, datasets, rngs, config=None, optimizers=None):
    """Train K same-architecture models as one stacked program.

    Thin indirection over :func:`repro.core.replicas.train_replicas`
    (imported lazily — replicas builds on this module's
    :func:`train_model` for its serial reference path).
    """
    from .replicas import train_replicas as _impl

    return _impl(models, datasets, rngs, config=config, optimizers=optimizers)


def report_training_round(simulator, stats: TrainStats, round_index: int) -> None:
    """Surface one ``train_model`` round through the engine plumbing.

    Folds the round's epoch and compiled-step counters into the
    simulator's per-run :class:`~repro.engine.telemetry.EngineTelemetry`
    (when engine-backed) and fires the simulator's ``on_training`` hook,
    which the streaming run API turns into a
    :class:`~repro.api.events.TrainingRoundFinished` event.  No-ops
    gracefully against a bare simulator with neither.
    """
    telemetry = getattr(simulator, "telemetry", None)
    if telemetry is not None:
        telemetry.add("train_epochs", stats.epochs_run)
        telemetry.add("train_epochs_skipped", stats.epochs_skipped)
        counters = stats.compile_counters
        telemetry.add("train_compiles", counters.get("traces", 0))
        telemetry.add("train_replays", counters.get("replays", 0))
        telemetry.add("train_fused_kernels", counters.get("fused_ops", 0))
        telemetry.add("train_fallbacks", counters.get("fallbacks", 0))
        telemetry.add("loop_replays", len(stats.loop_seconds))
        if stats.stacked:
            telemetry.add("stacked_replicas", 1)
        for seconds in stats.replay_seconds:
            telemetry.observe_latency("train_step_replay", seconds)
        for seconds in stats.eager_seconds:
            telemetry.observe_latency("train_step_eager", seconds)
        for seconds in stats.loop_seconds:
            telemetry.observe_latency("train_loop_replay", seconds)
        # REPRO_PROFILE=1 only: fold the round's per-kernel replay
        # seconds into the stage timers and emit matching
        # imposed-duration spans, so trace-derived stage totals keep
        # reproducing ``stage_seconds`` even for the kernel breakdown.
        for label, seconds in sorted(stats.kernel_seconds.items()):
            name = "train_kernel:" + label
            telemetry.add_stage_time(name, seconds)
            span = trace.start_span(name, attrs={"stage": True})
            span.set_attr("round", round_index)
            span.finish(elapsed=seconds)
    notify = getattr(simulator, "on_training", None)
    if notify is not None:
        notify(
            {
                "round": round_index,
                "epochs": stats.epochs_run,
                "epochs_skipped": stats.epochs_skipped,
                "compiled": stats.compiled,
                "losses": stats.last() if stats.total else {},
                "counters": dict(stats.compile_counters),
            }
        )
