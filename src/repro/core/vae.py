"""The CircuitVAE model: CNN encoder/decoder + MLP cost predictor.

Mirrors the paper's architecture (Sec. 5.1): the encoder and decoder are
CNNs over the N x N grid with dense heads, the prior is a diagonal unit
Gaussian, and a small MLP predicts the (standardized) cost from the latent
vector.  Channel widths are configurable; the defaults are scaled down
from the paper's ~1M parameters so everything trains on CPU, which does
not change any of the algorithmic behaviour the paper studies.

The cost head both enables latent-space optimization and shapes the latent
space: circuits with similar costs are pushed together because overlapping
posteriors with different costs are irreducibly penalized (Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..prefix.graph import PrefixGraph
from ..prefix.legalize import legalize

__all__ = ["VAEConfig", "CircuitVAEModel"]


@dataclass(frozen=True)
class VAEConfig:
    """Architecture hyperparameters."""

    n: int  # circuit bitwidth (grid is n x n)
    latent_dim: int = 24
    base_channels: int = 8
    hidden_dim: int = 128
    cost_hidden: int = 64

    @property
    def padded(self) -> int:
        """Grid padded up to a multiple of 4 (two stride-2 stages)."""
        return ((self.n + 3) // 4) * 4


class CircuitVAEModel(nn.Module):
    """beta-VAE over prefix-graph grids with a cost-prediction head."""

    def __init__(self, config: VAEConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        c = config.base_channels
        m = config.padded
        self._feat_hw = m // 4
        self._feat_ch = 4 * c
        flat = self._feat_ch * self._feat_hw * self._feat_hw

        # Encoder: 3 conv stages (x1, /2, /2) + dense head.
        self.enc_conv1 = nn.Conv2d(1, c, 3, rng, stride=1, padding=1)
        self.enc_conv2 = nn.Conv2d(c, 2 * c, 3, rng, stride=2, padding=1)
        self.enc_conv3 = nn.Conv2d(2 * c, 4 * c, 3, rng, stride=2, padding=1)
        self.enc_fc = nn.Linear(flat, config.hidden_dim, rng)
        self.mu_head = nn.Linear(config.hidden_dim, config.latent_dim, rng)
        self.logvar_head = nn.Linear(config.hidden_dim, config.latent_dim, rng)

        # Decoder: dense stem + 2 transposed-conv upsamples + output conv.
        self.dec_fc1 = nn.Linear(config.latent_dim, config.hidden_dim, rng)
        self.dec_fc2 = nn.Linear(config.hidden_dim, flat, rng)
        self.dec_deconv1 = nn.ConvTranspose2d(4 * c, 2 * c, 4, rng, stride=2, padding=1)
        self.dec_deconv2 = nn.ConvTranspose2d(2 * c, c, 4, rng, stride=2, padding=1)
        self.dec_out = nn.Conv2d(c, 1, 3, rng, stride=1, padding=1)

        # Cost predictor: 2-layer MLP on z (paper Sec. 5.1).
        self.cost_mlp = nn.MLP(
            [config.latent_dim, config.cost_hidden, config.cost_hidden, 1], rng
        )

        # Cost standardization (set from the dataset before each retrain).
        self.cost_mean: float = 0.0
        self.cost_std: float = 1.0

    # ------------------------------------------------------------------
    # Grid plumbing
    # ------------------------------------------------------------------
    def _pad_grids(self, grids: np.ndarray) -> np.ndarray:
        """(B, n, n) -> (B, 1, m, m) with zero padding."""
        batch, n, _ = grids.shape
        m = self.config.padded
        out = np.zeros((batch, 1, m, m), dtype=np.float64)
        out[:, 0, :n, :n] = grids
        return out

    # ------------------------------------------------------------------
    # Model pieces
    # ------------------------------------------------------------------
    def encode(self, grids: np.ndarray) -> Tuple[nn.Tensor, nn.Tensor]:
        """Map (B, n, n) grids to posterior (mu, logvar), each (B, latent)."""
        x = nn.Tensor(self._pad_grids(np.asarray(grids, dtype=np.float64)))
        return self.encode_tensor(x)

    def encode_tensor(self, x: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Encoder on an already-padded (B, 1, m, m) tensor.

        The tensor-in/tensor-out form is what the compiled training step
        traces (:mod:`repro.nn.compile`): all per-step data must flow
        through explicit tensor inputs, so padding happens outside.
        """
        h = self.enc_conv1(x).relu()
        h = self.enc_conv2(h).relu()
        h = self.enc_conv3(h).relu()
        h = h.reshape(h.shape[0], -1)
        h = self.enc_fc(h).relu()
        return self.mu_head(h), self.logvar_head(h)

    @staticmethod
    def reparameterize(
        mu: nn.Tensor, logvar: nn.Tensor, rng: np.random.Generator
    ) -> nn.Tensor:
        """z = mu + sigma * eps with eps ~ N(0, I) (Kingma & Welling)."""
        eps = nn.Tensor(rng.standard_normal(mu.shape))
        return mu + (logvar * 0.5).exp() * eps

    def decode(self, z: nn.Tensor) -> nn.Tensor:
        """Latents (B, latent) -> grid logits (B, n, n)."""
        n = self.config.n
        h = self.dec_fc1(z).relu()
        h = self.dec_fc2(h).relu()
        h = h.reshape(h.shape[0], self._feat_ch, self._feat_hw, self._feat_hw)
        h = self.dec_deconv1(h).relu()
        h = self.dec_deconv2(h).relu()
        logits = self.dec_out(h)
        return logits[:, 0, :n, :n]

    def predict_cost(self, z: nn.Tensor) -> nn.Tensor:
        """Standardized cost prediction f_pi(z), shape (B,)."""
        return self.cost_mlp(z).reshape(-1)

    def predict_cost_raw(self, z: nn.Tensor) -> np.ndarray:
        """Cost prediction in original cost units (no grad)."""
        with nn.no_grad():
            standardized = self.predict_cost(z).data
        return standardized * self.cost_std + self.cost_mean

    def forward(
        self, grids: np.ndarray, rng: np.random.Generator
    ) -> Tuple[nn.Tensor, nn.Tensor, nn.Tensor, nn.Tensor, nn.Tensor]:
        """Full pass: returns (logits, mu, logvar, z, cost_pred)."""
        mu, logvar = self.encode(grids)
        z = self.reparameterize(mu, logvar, rng)
        logits = self.decode(z)
        cost_pred = self.predict_cost(z)
        return logits, mu, logvar, z, cost_pred

    def training_losses(
        self,
        x_pad: nn.Tensor,
        target_grid: nn.Tensor,
        eps: nn.Tensor,
        cost_targets: nn.Tensor,
        beta: float,
        lam: float,
    ) -> dict:
        """One training step's loss assembly (paper Eq. 3), tensor-in.

        Shared verbatim by the eager loop and the compiled trace in
        :func:`repro.core.training.train_model`: all per-step data
        (padded grids, reconstruction target, reparameterization noise,
        standardized cost targets) enters as tensors, so the compiled
        replay stays numerically equivalent to eager by construction.
        Returns ``{"loss", "reconstruction", "kl", "cost"}``.
        """
        from ..nn import losses as L

        mu, logvar = self.encode_tensor(x_pad)
        z = mu + (logvar * 0.5).exp() * eps
        logits = self.decode(z)
        cost_pred = self.predict_cost(z)
        rec = L.reconstruction_loss(logits, target_grid)
        kl = L.kl_loss(mu, logvar)
        cost = L.cost_prediction_loss(cost_pred, cost_targets)
        loss = rec + beta * kl + lam * cost
        return {"loss": loss, "reconstruction": rec, "kl": kl, "cost": cost}

    # ------------------------------------------------------------------
    # Design sampling
    # ------------------------------------------------------------------
    def sample_designs(
        self,
        z: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> List[PrefixGraph]:
        """Decode latents into legal circuits.

        With ``rng`` the decoder's Bernoulli distribution is sampled (the
        paper samples designs from p(x|z)); without it, cells are
        thresholded at probability 0.5.  Either way the raw grid is
        legalized, making every latent vector a valid circuit.
        """
        with nn.no_grad():
            logits = self.decode(nn.Tensor(np.atleast_2d(z))).data
        probs = 1.0 / (1.0 + np.exp(-logits))
        if rng is not None:
            raw = rng.random(probs.shape) < probs
        else:
            raw = probs > 0.5
        return [legalize(raw[b]) for b in range(raw.shape[0])]

    def standardize_costs(self, costs: np.ndarray) -> np.ndarray:
        return (np.asarray(costs, dtype=np.float64) - self.cost_mean) / self.cost_std

    def set_cost_normalizer(self, mean: float, std: float) -> None:
        self.cost_mean = float(mean)
        self.cost_std = float(std) if std > 1e-9 else 1.0
