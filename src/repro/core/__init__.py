"""``repro.core`` — the CircuitVAE algorithm (the paper's contribution)."""

from .algorithm import CircuitVAEConfig, CircuitVAEOptimizer, build_initial_dataset
from .analysis import LatentDiagnostics, cost_rank_correlation, diagnose, reconstruction_accuracy
from .dataset import CircuitDataset, rank_weights
from .search import SearchConfig, SearchTrace, initialize_latents, latent_gradient_search
from .training import TrainConfig, TrainStats, train_model
from .vae import CircuitVAEModel, VAEConfig

__all__ = [
    "CircuitVAEModel",
    "LatentDiagnostics",
    "diagnose",
    "reconstruction_accuracy",
    "cost_rank_correlation",
    "VAEConfig",
    "CircuitDataset",
    "rank_weights",
    "TrainConfig",
    "TrainStats",
    "train_model",
    "SearchConfig",
    "SearchTrace",
    "initialize_latents",
    "latent_gradient_search",
    "CircuitVAEConfig",
    "CircuitVAEOptimizer",
    "build_initial_dataset",
]
