"""Diagnostics for a trained CircuitVAE: is the latent space healthy?

The paper's method depends on three properties the training loss is meant
to produce (Sec. 4.1): faithful reconstruction, a cost head that ranks
circuits correctly, and a latent layout where cost varies smoothly.  These
metrics make those properties measurable, power the Fig. 5 bench, and let
users debug their own runs (e.g. a collapsed KL shows up as zero latent
variance; an overfit cost head as high train R^2 but no rank correlation
on held-out designs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from .dataset import CircuitDataset
from .vae import CircuitVAEModel

__all__ = ["LatentDiagnostics", "diagnose", "reconstruction_accuracy", "cost_rank_correlation"]


@dataclass(frozen=True)
class LatentDiagnostics:
    """Summary of a model/dataset pair."""

    reconstruction_accuracy: float  # fraction of grid cells correct
    cost_r2: float  # explained variance of the cost head
    cost_rank_correlation: float  # Spearman rho of predicted vs true cost
    mean_latent_norm: float
    latent_dim_active: int  # dims whose posterior means actually vary

    def healthy(self) -> bool:
        """Heuristic gate used by long-running examples."""
        return (
            self.reconstruction_accuracy > 0.75
            and self.cost_rank_correlation > 0.3
            and self.latent_dim_active >= 2
        )


def reconstruction_accuracy(model: CircuitVAEModel, grids: np.ndarray) -> float:
    """Cell-level accuracy of mean-encode/decode round trips."""
    with nn.no_grad():
        mu, _ = model.encode(grids)
        logits = model.decode(mu).numpy()
    return float(((logits > 0) == (grids > 0.5)).mean())


def _rankdata(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values))
    ranks[order] = np.arange(len(values))
    return ranks


def cost_rank_correlation(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Spearman rank correlation (ties broken by order, adequate here)."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if len(predicted) < 2 or predicted.std() < 1e-12 or actual.std() < 1e-12:
        return 0.0
    pr, ar = _rankdata(predicted), _rankdata(actual)
    denom = pr.std() * ar.std()
    if denom < 1e-12:
        return 0.0
    return float(((pr - pr.mean()) * (ar - ar.mean())).mean() / denom)


def diagnose(model: CircuitVAEModel, dataset: CircuitDataset) -> LatentDiagnostics:
    """Compute all diagnostics on the current dataset."""
    if len(dataset) < 2:
        raise ValueError("need at least 2 datapoints to diagnose")
    grids = dataset.grids()
    costs = dataset.costs
    with nn.no_grad():
        mu, _ = model.encode(grids)
    latents = mu.data
    predicted = model.predict_cost_raw(nn.Tensor(latents))

    residual = float(((predicted - costs) ** 2).mean())
    variance = float(costs.var())
    r2 = 1.0 - residual / variance if variance > 1e-12 else 0.0

    dim_spread = latents.std(axis=0)
    return LatentDiagnostics(
        reconstruction_accuracy=reconstruction_accuracy(model, grids),
        cost_r2=r2,
        cost_rank_correlation=cost_rank_correlation(predicted, costs),
        mean_latent_norm=float(np.linalg.norm(latents, axis=1).mean()),
        latent_dim_active=int((dim_spread > 0.05 * dim_spread.max()).sum()),
    )
