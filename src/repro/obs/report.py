"""Trace analysis: span trees, time attribution, live tailing.

Everything here consumes the span dicts produced by
:mod:`repro.obs.trace` (usually via :func:`repro.obs.sink.read_trace`)
and is pure — no engine imports — so reports can run against any
``trace.jsonl``, including one from a crashed or still-running process.

The key quantities:

``total``
    Wall-clock between a span's start and finish.
``self``
    ``total`` minus the total of the span's *direct children* (clamped
    at zero — children on other threads can overlap their parent).
``coverage``
    Fraction of the root span's wall-clock accounted for by its direct
    children; the acceptance gate requires ≥95% for a traced run.
``stage_totals``
    Sum of span durations per stage name, restricted to spans flagged
    ``attrs.stage == true`` — these carry durations *imposed* from the
    telemetry stage timers, so the totals reproduce
    ``EngineTelemetry.stage_seconds`` exactly.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SpanNode",
    "build_tree",
    "aggregate",
    "stage_totals",
    "counter_totals",
    "coverage",
    "render_tree",
    "render_hot_stages",
    "follow_trace",
]


class SpanNode:
    """One span plus its resolved children (a tree vertex)."""

    __slots__ = ("data", "children")

    def __init__(self, data: Dict) -> None:
        self.data = data
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return self.data["name"]

    @property
    def duration(self) -> float:
        t0, t1 = self.data.get("t0"), self.data.get("t1")
        if t0 is None or t1 is None:
            return 0.0
        return max(t1 - t0, 0.0)

    @property
    def children_total(self) -> float:
        return sum(child.duration for child in self.children)

    @property
    def self_time(self) -> float:
        return max(self.duration - self.children_total, 0.0)

    def walk(self, depth: int = 0) -> Iterator[Tuple["SpanNode", int]]:
        yield self, depth
        for child in self.children:
            for item in child.walk(depth + 1):
                yield item

    def __repr__(self) -> str:
        return f"SpanNode({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


def build_tree(spans: List[Dict]) -> List[SpanNode]:
    """Link span dicts into root trees (roots have no resolvable parent).

    Children are sorted by start time within each parent.  Spans whose
    parent id does not appear in the list (e.g. the parent was torn off
    by a crash) become roots themselves rather than being dropped.
    """
    nodes = {s["span_id"]: SpanNode(s) for s in spans if "span_id" in s}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent_id = node.data.get("parent_id")
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.data.get("t0", 0.0))
    roots.sort(key=lambda n: n.data.get("t0", 0.0))
    return roots


def aggregate(roots: List[SpanNode]) -> List[Dict]:
    """Per-name rollup across the forest: calls, total and self seconds.

    Sorted by self seconds descending — the "where did the time go"
    table.  ``total`` double counts nested same-name spans by design
    (it answers "how long were we inside X", per call site).
    """
    rollup: Dict[str, Dict] = {}
    for root in roots:
        for node, _ in root.walk():
            entry = rollup.setdefault(
                node.name, {"name": node.name, "calls": 0, "total": 0.0, "self": 0.0}
            )
            entry["calls"] += 1
            entry["total"] += node.duration
            entry["self"] += node.self_time
    return sorted(rollup.values(), key=lambda e: e["self"], reverse=True)


def stage_totals(spans: List[Dict]) -> Dict[str, float]:
    """Summed seconds per stage name over spans marked ``attrs.stage``.

    Stage spans get their durations imposed from the telemetry stage
    timers (one measurement, charged to both), so this reproduces the
    engine's ``stage_seconds`` from the trace alone.
    """
    totals: Dict[str, float] = {}
    for span_dict in spans:
        attrs = span_dict.get("attrs") or {}
        if not attrs.get("stage"):
            continue
        t0, t1 = span_dict.get("t0"), span_dict.get("t1")
        if t0 is None or t1 is None:
            continue
        name = span_dict["name"]
        totals[name] = totals.get(name, 0.0) + max(t1 - t0, 0.0)
    return totals


def counter_totals(spans: List[Dict]) -> Dict[str, float]:
    """Sum every span-attached counter delta across the trace."""
    totals: Dict[str, float] = {}
    for span_dict in spans:
        for name, amount in (span_dict.get("counters") or {}).items():
            totals[name] = totals.get(name, 0.0) + amount
    return totals


def coverage(root: SpanNode) -> float:
    """Fraction of the root's wall-clock covered by its direct children.

    Child intervals are merged before measuring, so overlapping
    parallel-seed spans are not double counted and the result is ≤ 1.
    """
    duration = root.duration
    if duration <= 0.0:
        return 0.0
    intervals = []
    for child in root.children:
        t0, t1 = child.data.get("t0"), child.data.get("t1")
        if t0 is None or t1 is None:
            continue
        lo = max(t0, root.data["t0"])
        hi = min(t1, root.data["t1"])
        if hi > lo:
            intervals.append((lo, hi))
    intervals.sort()
    covered = 0.0
    cursor: Optional[float] = None
    end = 0.0
    for lo, hi in intervals:
        if cursor is None or lo > end:
            if cursor is not None:
                covered += end - cursor
            cursor, end = lo, hi
        elif hi > end:
            end = hi
    if cursor is not None:
        covered += end - cursor
    return min(covered / duration, 1.0)


# ----------------------------------------------------------------------
# Rendering (the `repro report` subcommand's output)
# ----------------------------------------------------------------------
def _format_node(node: SpanNode, root_duration: float) -> str:
    pct = 100.0 * node.duration / root_duration if root_duration > 0 else 0.0
    label = node.name
    attrs = node.data.get("attrs") or {}
    tags = [
        f"{key}={attrs[key]}"
        for key in ("method", "seed", "batch", "outcome", "mode")
        if key in attrs
    ]
    if tags:
        label += f" [{', '.join(tags)}]"
    return (
        f"{label}  total={node.duration:.3f}s  self={node.self_time:.3f}s  ({pct:.1f}%)"
    )


def render_tree(
    roots: List[SpanNode],
    max_depth: Optional[int] = None,
    min_seconds: float = 0.0,
    collapse_over: int = 8,
) -> str:
    """ASCII span tree with total/self attribution per node.

    When a node has more than ``collapse_over`` children, its children
    are grouped by name and each repeated name is summarized into one
    ``name ×N`` line (a 500-iteration run should not print 500
    ``evaluate`` lines); pass ``collapse_over=0`` to disable.
    """
    lines: List[str] = []
    for root in roots:
        root_duration = root.duration or 1e-12
        lines.append(_format_node(root, root_duration))
        _render_children(root, "", root_duration, max_depth, min_seconds, collapse_over, lines, 1)
    return "\n".join(lines)


def _render_children(
    node: SpanNode,
    prefix: str,
    root_duration: float,
    max_depth: Optional[int],
    min_seconds: float,
    collapse_over: int,
    lines: List[str],
    depth: int,
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    children = [c for c in node.children if c.duration >= min_seconds]
    if collapse_over and len(children) > collapse_over:
        # Group by name (first-appearance order): iteration loops emit
        # alternating or repeated names that must fold into one line.
        groups: List[List[SpanNode]] = []
        by_name: Dict[str, List[SpanNode]] = {}
        for child in children:
            group = by_name.get(child.name)
            if group is None:
                group = by_name[child.name] = []
                groups.append(group)
            group.append(child)
    else:
        groups = [[child] for child in children]
    rendered: List[Tuple[str, Optional[SpanNode]]] = []
    for group in groups:
        if len(group) > 1:
            total = sum(c.duration for c in group)
            self_total = sum(c.self_time for c in group)
            pct = 100.0 * total / root_duration
            rendered.append(
                (
                    f"{group[0].name} ×{len(group)}  total={total:.3f}s  "
                    f"self={self_total:.3f}s  ({pct:.1f}%)",
                    None,
                )
            )
        else:
            rendered.append((_format_node(group[0], root_duration), group[0]))
    for i, (text, child) in enumerate(rendered):
        last = i == len(rendered) - 1
        lines.append(f"{prefix}{'└─ ' if last else '├─ '}{text}")
        if child is not None:
            _render_children(
                child,
                prefix + ("   " if last else "│  "),
                root_duration,
                max_depth,
                min_seconds,
                collapse_over,
                lines,
                depth + 1,
            )


def render_hot_stages(roots: List[SpanNode], top: int = 10) -> str:
    """Top-N table of span names by self time."""
    entries = aggregate(roots)[:top]
    if not entries:
        return "(no spans)"
    name_width = max(len(e["name"]) for e in entries)
    name_width = max(name_width, len("span"))
    lines = [
        f"{'span':<{name_width}}  {'calls':>7}  {'total s':>10}  {'self s':>10}",
        f"{'-' * name_width}  {'-' * 7}  {'-' * 10}  {'-' * 10}",
    ]
    for e in entries:
        lines.append(
            f"{e['name']:<{name_width}}  {e['calls']:>7}  "
            f"{e['total']:>10.3f}  {e['self']:>10.3f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live tailing (the `repro status --follow` backend)
# ----------------------------------------------------------------------
def follow_trace(
    path: str,
    poll_interval: float = 0.5,
    stop: Optional[object] = None,
    timeout: Optional[float] = None,
) -> Iterator[Dict]:
    """Yield span dicts as a live writer appends them (``tail -f``).

    Waits for the file to exist, then polls at ``poll_interval``.
    Terminates when ``stop`` (anything with ``is_set()``, e.g. a
    ``threading.Event``) fires or ``timeout`` seconds elapse; a partial
    final line is retained in the buffer until its newline arrives.
    """
    deadline = time.monotonic() + timeout if timeout is not None else None

    def _done() -> bool:
        if stop is not None and stop.is_set():
            return True
        return deadline is not None and time.monotonic() >= deadline

    while not os.path.exists(path):
        if _done():
            return
        time.sleep(min(poll_interval, 0.1))

    buffer = ""
    with open(path) as handle:
        while True:
            chunk = handle.read()
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(payload, dict):
                        yield payload
            else:
                if _done():
                    return
                time.sleep(poll_interval)
