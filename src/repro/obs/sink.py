"""Durable trace sinks: append-only ``trace.jsonl`` + Perfetto export.

Spans stream to ``<run_dir>/trace.jsonl`` with the same crash-safety
discipline as the evaluation history: each span is one JSON line,
written and flushed atomically *per line* in append mode, and readers
tolerate a truncated final line (the signature of a writer killed
mid-append).  Nothing is buffered across spans, so a live run's trace
can be tailed (``python -m repro status --follow``) and a killed run's
trace is complete up to its last finished span.

:func:`export_perfetto` converts a trace to the Chrome/Perfetto
``trace_event`` JSON format (``ph: "X"`` complete events, microsecond
timestamps), so any run directory opens directly in ``ui.perfetto.dev``
or ``chrome://tracing`` as a flame graph.

:func:`validate_spans` is the schema gate the CI obs-smoke job runs: it
checks required fields, types, timestamp sanity and parent linkage.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Optional

from ..utils.io import ensure_parent_dir

__all__ = [
    "TRACE_FILENAME",
    "TraceSink",
    "read_trace",
    "iter_trace",
    "to_perfetto",
    "export_perfetto",
    "validate_spans",
]

#: conventional trace file name inside a run directory.
TRACE_FILENAME = "trace.jsonl"

#: required span-dict fields and their types (validation schema).
_SCHEMA = {
    "name": str,
    "trace_id": str,
    "span_id": str,
    "t0": (int, float),
    "t1": (int, float),
    "pid": int,
    "tid": int,
}


class TraceSink:
    """Append-only JSONL span writer (thread-safe, crash-safe per line).

    Owned by the pid that created it: a forked worker that inherits the
    sink cannot corrupt the file — writes from a foreign pid are
    silently dropped (workers ship their spans back through the pool
    protocol instead; see :meth:`repro.obs.trace.Tracer.emit_raw`).
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        ensure_parent_dir(self.path)
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._handle = open(self.path, "a")
        self.written = 0

    def write(self, span_dict: Dict) -> None:
        if os.getpid() != self._pid:
            return
        line = json.dumps(span_dict, separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"TraceSink({self.path!r}, written={self.written})"


def iter_trace(path: str) -> Iterable[Dict]:
    """Yield span dicts from a trace file, skipping a truncated tail."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a killed writer
            if isinstance(payload, dict):
                yield payload


def read_trace(path: str) -> List[Dict]:
    """Every readable span in the file, in write (i.e. finish) order."""
    return list(iter_trace(path))


# ----------------------------------------------------------------------
# Perfetto / Chrome trace_event export
# ----------------------------------------------------------------------
def to_perfetto(spans: Iterable[Dict]) -> Dict:
    """Spans -> Chrome ``trace_event`` JSON object (complete events).

    Timestamps become microseconds relative to the earliest span start,
    so the viewer opens at t=0; thread/process ids pass through, giving
    one track per (pid, tid) — parallel seeds and pool workers land on
    their own rows.
    """
    spans = list(spans)
    base = min((s["t0"] for s in spans), default=0.0)
    events = []
    for span_dict in spans:
        t1 = span_dict.get("t1")
        if t1 is None:
            continue  # unfinished span (should not occur in a file)
        args = {}
        if span_dict.get("attrs"):
            args.update(span_dict["attrs"])
        if span_dict.get("counters"):
            args["counters"] = span_dict["counters"]
        args["span_id"] = span_dict["span_id"]
        if span_dict.get("parent_id"):
            args["parent_id"] = span_dict["parent_id"]
        events.append(
            {
                "name": span_dict["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (span_dict["t0"] - base) * 1e6,
                "dur": max(t1 - span_dict["t0"], 0.0) * 1e6,
                "pid": span_dict.get("pid", 0),
                "tid": span_dict.get("tid", 0),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_perfetto(trace_path: str, out_path: Optional[str] = None) -> str:
    """Convert ``trace.jsonl`` to a Perfetto-openable JSON file.

    Returns the output path (default: the trace path with a
    ``.perfetto.json`` suffix).
    """
    if out_path is None:
        stem = trace_path[:-len(".jsonl")] if trace_path.endswith(".jsonl") else trace_path
        out_path = stem + ".perfetto.json"
    payload = to_perfetto(read_trace(trace_path))
    ensure_parent_dir(out_path)
    with open(out_path, "w") as handle:
        json.dump(payload, handle)
    return out_path


# ----------------------------------------------------------------------
# Schema validation (the CI obs-smoke gate)
# ----------------------------------------------------------------------
def validate_spans(spans: List[Dict]) -> List[str]:
    """Schema-check a span list; returns a list of problems (empty = ok).

    Checks per span: required fields present with the right types,
    ``t1 >= t0``; across the trace: exactly one trace id, unique span
    ids, and every ``parent_id`` resolvable (children are written before
    their parents finish, so a complete file must close the tree).
    """
    problems: List[str] = []
    ids = set()
    trace_ids = set()
    for i, span_dict in enumerate(spans):
        for field, types in _SCHEMA.items():
            value = span_dict.get(field)
            if value is None:
                problems.append(f"span {i}: missing field {field!r}")
            elif not isinstance(value, types):
                problems.append(
                    f"span {i}: field {field!r} has type {type(value).__name__}"
                )
        if "parent_id" not in span_dict:
            problems.append(f"span {i}: missing field 'parent_id' (may be null)")
        t0, t1 = span_dict.get("t0"), span_dict.get("t1")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)) and t1 < t0:
            problems.append(f"span {i}: t1 < t0")
        span_id = span_dict.get("span_id")
        if span_id in ids:
            problems.append(f"span {i}: duplicate span_id {span_id!r}")
        ids.add(span_id)
        trace_ids.add(span_dict.get("trace_id"))
    if len(trace_ids) > 1:
        problems.append(f"multiple trace ids in one file: {sorted(map(str, trace_ids))}")
    for i, span_dict in enumerate(spans):
        parent = span_dict.get("parent_id")
        if parent is not None and parent not in ids:
            problems.append(f"span {i}: unresolvable parent_id {parent!r}")
    return problems
