"""Hierarchical spans: the tracing half of :mod:`repro.obs`.

A trace is a tree of **spans** — named, timed intervals with attributes
and counter deltas — covering one experiment run::

    experiment                       (the whole grid, root span)
      seed GA/0                      (one (method, seed) cell)
        evaluate_batch               (one query_plan iteration)
          engine_evaluate            (cache classification + synthesis)
            synthesis                (stage span, == telemetry seconds)
              synthesis_vectorized
                synthesize_chunk     (shipped back from a pool worker)
        train                        (stage span around a retrain round)

Design constraints, in order:

1. **Near-free when off.**  Tracing is off unless a :class:`Tracer` is
   *activated*; every call site goes through :func:`active` /
   :func:`span`, which reduce to one module-global ``is None`` check and
   a shared no-op context manager.  No allocation, no clock read.
2. **Propagates across threads.**  The activated tracer is
   process-ambient; each thread keeps its own current-span stack, and a
   thread that has no stack yet (a freshly spawned parallel-seed thread)
   parents to the tracer's *default context* — the experiment root — so
   seed spans land in the right tree without any explicit plumbing.
3. **Propagates into worker processes.**  A :class:`SpanContext` is a
   picklable ``(trace_id, span_id)`` pair; the synthesis pool ships it
   with each work item, records worker-side spans into a collecting
   tracer, and the parent re-emits them (:meth:`Tracer.emit_raw`) into
   its sink.  Forked workers that inherit the parent's ambient tracer
   must call :func:`reset_in_child` — the sink also refuses writes from
   a foreign pid as a second line of defense.
4. **Durations can be imposed.**  ``Span.finish(elapsed=...)`` lets the
   telemetry stage helpers measure wall-clock *once* and charge the same
   number to both the stage counters and the span, so a report derived
   from the trace reproduces ``stage_seconds`` exactly.

This module is stdlib-only (no ``repro`` imports), so every layer —
including :mod:`repro.engine.telemetry`, which must stay import-cycle
free — can use it.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SpanContext",
    "Span",
    "Tracer",
    "active",
    "current_tracer",
    "span",
    "start_span",
    "reset_in_child",
]

#: picklable span address: (trace_id, span_id).
SpanContext = Tuple[str, str]

#: the process-ambient tracer (None = tracing off everywhere).
_AMBIENT: Optional["Tracer"] = None
_AMBIENT_LOCK = threading.Lock()


def active() -> bool:
    """Whether any tracer is currently activated (one global check)."""
    return _AMBIENT is not None


def current_tracer() -> Optional["Tracer"]:
    return _AMBIENT


def reset_in_child() -> None:
    """Drop inherited ambient state after a ``fork`` (worker entry)."""
    global _AMBIENT
    _AMBIENT = None


class _NullSpan:
    """Shared no-op span: what every call site gets when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, name: str, value) -> None:
        return None

    def add_counter(self, name: str, amount=1) -> None:
        return None

    def finish(self, elapsed: Optional[float] = None) -> None:
        return None

    @property
    def context(self) -> Optional[SpanContext]:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One named interval in a trace (context manager, re-entrant never).

    ``attrs`` carry structured metadata (graph key, batch size, cache
    outcome); ``counters`` carry additive deltas (synth calls, hits)
    that reports can sum without double counting — each increment is
    recorded on exactly one span.
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "attrs", "counters", "t0", "t1", "_start_pc", "pid", "tid",
        "_finished", "_on_stack",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict = dict(attrs) if attrs else {}
        self.counters: Dict[str, float] = {}
        self._start_pc = time.perf_counter()
        self.t0 = tracer.anchor + self._start_pc
        self.t1: Optional[float] = None
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._finished = False
        self._on_stack = False

    @property
    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value

    def add_counter(self, name: str, amount=1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def finish(self, elapsed: Optional[float] = None) -> None:
        """Close the span and emit it.  ``elapsed`` imposes the duration
        (the telemetry stage helpers measure once, charge twice)."""
        if self._finished:
            return
        self._finished = True
        if elapsed is None:
            elapsed = time.perf_counter() - self._start_pc
        self.t1 = self.t0 + elapsed
        if self._on_stack:
            self.tracer._pop(self)
        self.tracer._emit(self)

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._on_stack = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()

    def to_dict(self) -> Dict:
        payload: Dict = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0": self.t0,
            "t1": self.t1,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.counters:
            payload["counters"] = self.counters
        return payload

    def __repr__(self) -> str:
        state = "open" if self.t1 is None else f"{self.t1 - self.t0:.6f}s"
        return f"Span({self.name!r}, {state})"


class Tracer:
    """Produces spans and routes them to a sink (or an in-memory list).

    Parameters
    ----------
    sink:
        Anything with a ``write(span_dict)`` method (a
        :class:`repro.obs.sink.TraceSink`) or a plain callable; spans
        are delivered as dicts, children strictly before their parents
        close (spans are emitted on *finish*).
    collect:
        Record spans into an internal list instead (pool workers use
        this and ship :meth:`drain`'s result back with their results).
    trace_id:
        Fixed id for the whole tree; generated when omitted.
    """

    def __init__(
        self,
        sink=None,
        collect: bool = False,
        trace_id: Optional[str] = None,
        id_prefix: str = "s",
    ) -> None:
        if sink is not None and not callable(sink) and not hasattr(sink, "write"):
            raise TypeError("sink must be callable or expose .write(span_dict)")
        self._sink = sink
        self._collected: Optional[List[Dict]] = [] if collect else None
        self.trace_id = (
            trace_id
            if trace_id is not None
            else f"tr-{os.getpid():x}-{time.time_ns() & 0xFFFFFFFF:08x}"
        )
        #: span-id prefix; collecting tracers in pool workers use a
        #: per-(worker, job) prefix so shipped ids never collide with the
        #: parent's (or another worker's) ids inside one trace.
        self._id_prefix = id_prefix
        #: epoch anchor: span times are ``anchor + perf_counter()`` so
        #: durations are monotonic but timestamps read as wall clock.
        self.anchor = time.time() - time.perf_counter()
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._local = threading.local()
        #: fallback parent for threads with no local span stack (the
        #: experiment root; see :meth:`span`'s ``default=True``).
        self._default_ctx: Optional[SpanContext] = None

    # -- id / stack management -----------------------------------------
    def _next_id(self) -> str:
        with self._id_lock:
            return f"{self._id_prefix}{next(self._ids):06d}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            # Tolerate out-of-order finishes (an unwound seed thread):
            # everything above the span is abandoned, not corrupted.
            del stack[stack.index(span):]

    def current_context(self) -> Optional[SpanContext]:
        """This thread's innermost span context (picklable), or the
        tracer default — what a work item ships to a pool worker."""
        stack = self._stack()
        if stack:
            return stack[-1].context
        return self._default_ctx

    # -- span creation --------------------------------------------------
    def span(
        self,
        name: str,
        attrs: Optional[Dict] = None,
        parent: Optional[SpanContext] = None,
        default: bool = False,
    ) -> Span:
        """A new span parented to ``parent``, this thread's current span,
        or the tracer default, in that order.  Use as a context manager
        (which also makes it the thread's current span) or call
        :meth:`Span.finish` manually.  ``default=True`` additionally
        installs the span as the tracer-wide fallback parent."""
        if parent is None:
            parent = self.current_context()
        parent_id = parent[1] if parent is not None else None
        span = Span(self, name, self.trace_id, self._next_id(), parent_id, attrs)
        if default:
            self._default_ctx = span.context
        return span

    def _emit(self, span: Span) -> None:
        if self._collected is not None:
            self._collected.append(span.to_dict())
            return
        sink = self._sink
        if sink is None:
            return
        if hasattr(sink, "write"):
            sink.write(span.to_dict())
        else:
            sink(span.to_dict())

    def emit_raw(self, span_dicts: List[Dict]) -> None:
        """Forward already-finished span dicts (from a pool worker's
        collecting tracer) into this tracer's sink unchanged — their
        parent ids were assigned from the shipped context, so they slot
        into the tree directly."""
        for payload in span_dicts:
            if self._collected is not None:
                self._collected.append(payload)
            elif self._sink is not None:
                if hasattr(self._sink, "write"):
                    self._sink.write(payload)
                else:
                    self._sink(payload)

    def drain(self) -> List[Dict]:
        """Collected span dicts (collect mode); resets the buffer."""
        if self._collected is None:
            return []
        out, self._collected = self._collected, []
        return out

    # -- activation ------------------------------------------------------
    def activate(self) -> "_Activation":
        """Make this tracer process-ambient for a ``with`` block.

        One tracer at a time: activating while another tracer is active
        raises (two concurrent traced runs in one process would
        cross-wire their trees; run them in separate processes).
        """
        return _Activation(self)

    def __repr__(self) -> str:
        mode = "collect" if self._collected is not None else repr(self._sink)
        return f"Tracer({self.trace_id}, sink={mode})"


class _Activation:
    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        global _AMBIENT
        with _AMBIENT_LOCK:
            if _AMBIENT is not None and _AMBIENT is not self._tracer:
                raise RuntimeError(
                    "another tracer is already active in this process"
                )
            _AMBIENT = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> None:
        global _AMBIENT
        with _AMBIENT_LOCK:
            if _AMBIENT is self._tracer:
                _AMBIENT = None


# ----------------------------------------------------------------------
# Guarded module-level call sites (what the rest of the codebase uses)
# ----------------------------------------------------------------------
def span(name: str, attrs: Optional[Dict] = None):
    """A span on the ambient tracer, or the shared no-op when tracing is
    off.  The off path is one global check and a singleton return."""
    tracer = _AMBIENT
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, attrs)


def start_span(name: str, attrs: Optional[Dict] = None):
    """Like :func:`span` but for manual :meth:`Span.finish` callers that
    do not want the span on the thread stack (stage helpers impose their
    own measured duration and never nest other work under themselves
    after the fact)."""
    tracer = _AMBIENT
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, attrs)
