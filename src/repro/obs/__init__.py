"""repro.obs — hierarchical tracing, unified metrics, run reporting.

Three stdlib-only cores (safe for the dependency-light engine layers to
import) plus analysis tooling:

- :mod:`repro.obs.trace` — spans, the ambient :class:`Tracer`,
  cross-thread and cross-process context propagation.
- :mod:`repro.obs.metrics` — counters/gauges/histograms behind one
  :class:`MetricsRegistry` (backs ``EngineTelemetry``).
- :mod:`repro.obs.sink` — durable ``trace.jsonl`` writer, readers, the
  Perfetto exporter and the CI schema validator.
- :mod:`repro.obs.report` — span trees, self/total attribution,
  stage-seconds reconstruction, live tailing.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sink import (
    TRACE_FILENAME,
    TraceSink,
    export_perfetto,
    read_trace,
    to_perfetto,
    validate_spans,
)
from .trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    active,
    current_tracer,
    reset_in_child,
    span,
    start_span,
)
from .report import (
    SpanNode,
    aggregate,
    build_tree,
    counter_totals,
    coverage,
    follow_trace,
    render_hot_stages,
    render_tree,
    stage_totals,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_FILENAME",
    "TraceSink",
    "export_perfetto",
    "read_trace",
    "to_perfetto",
    "validate_spans",
    "NULL_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "active",
    "current_tracer",
    "reset_in_child",
    "span",
    "start_span",
    "SpanNode",
    "aggregate",
    "build_tree",
    "counter_totals",
    "coverage",
    "follow_trace",
    "render_hot_stages",
    "render_tree",
    "stage_totals",
]
