"""Unified metrics: counters, gauges and histograms behind one registry.

:class:`MetricsRegistry` is the single source of truth for numeric
observability state.  :class:`~repro.engine.telemetry.EngineTelemetry`
is backed by one (its named counters *are* registry counters; its stage
timers additionally feed per-stage latency histograms), so the legacy
``as_dict()`` snapshot and the richer registry view can never disagree
— they read the same cells under the same lock.

Concurrency model: one registry-wide :class:`threading.RLock` guards
every instrument.  That makes multi-instrument snapshots atomic — the
torn-read class of bug (ratios computed outside the lock that produced
their numerators) is structurally impossible against a registry — at
the cost of a little contention, which is irrelevant at engine rates
(thousands of increments per second, not millions).

Stdlib-only, like the rest of :mod:`repro.obs`'s core, so the engine
can depend on it without import cycles.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default latency buckets (seconds): exponential, micro to minutes.
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0
)


class Counter:
    """Monotonic counter (guarded by the registry lock)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    Buckets are upper bounds (``le`` semantics, Prometheus-style); an
    implicit overflow bucket catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        lock: threading.RLock,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation; +inf resolves to max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            seen = 0
            for i, n in enumerate(self.bucket_counts):
                seen += n
                if seen >= target and n:
                    if i < len(self.bounds):
                        return self.bounds[i]
                    return self.max
            return self.max

    def as_dict(self) -> Dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "buckets": {
                    ("+inf" if i == len(self.bounds) else repr(self.bounds[i])): n
                    for i, n in enumerate(self.bucket_counts)
                    if n
                },
            }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean():.6f})"


class MetricsRegistry:
    """Get-or-create home for named instruments, with atomic snapshots."""

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self.lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, self.lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self.lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, self.lock)
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self.lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, self.lock, buckets
                )
            return instrument

    # -- snapshots -------------------------------------------------------
    def counter_values(self, names: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Atomic multi-counter read (missing names read as 0)."""
        with self.lock:
            if names is None:
                return {name: c.value for name, c in self._counters.items()}
            return {
                name: (self._counters[name].value if name in self._counters else 0)
                for name in names
            }

    def as_dict(self) -> Dict:
        """One JSON-friendly snapshot of every instrument, atomically."""
        with self.lock:
            return {
                "counters": {name: c.value for name, c in self._counters.items()},
                "gauges": {name: g.value for name, g in self._gauges.items()},
                "histograms": {
                    name: h.as_dict() for name, h in self._histograms.items()
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        # Copy the other side's state in one atomic pass, then apply —
        # never hold both locks at once.
        with other.lock:
            counters = {name: c.value for name, c in other._counters.items()}
            gauges = {name: g.value for name, g in other._gauges.items()}
            histograms = {
                name: (h.bounds, list(h.bucket_counts), h.count, h.sum, h.min, h.max)
                for name, h in other._histograms.items()
            }
        with self.lock:
            for name, value in counters.items():
                self.counter(name).value += value
            for name, value in gauges.items():
                self.gauge(name).value = value
            for name, (bounds, bucket_counts, count, total, lo, hi) in histograms.items():
                ours = self.histogram(name, bounds)
                if ours.bounds != bounds:
                    raise ValueError(f"histogram {name!r} bucket mismatch on merge")
                ours.count += count
                ours.sum += total
                ours.min = min(ours.min, lo)
                ours.max = max(ours.max, hi)
                for i, n in enumerate(bucket_counts):
                    ours.bucket_counts[i] += n

    def __repr__(self) -> str:
        with self.lock:
            return (
                f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
            )
