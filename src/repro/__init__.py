"""CircuitVAE: Efficient and Scalable Latent Circuit Optimization — a
complete, from-scratch reproduction of the DAC 2024 paper.

Subpackages
-----------
``repro.nn``
    Numpy autograd + neural-network substrate (PyTorch stand-in).
``repro.prefix``
    Prefix-graph circuit representation, legalization, verification.
``repro.synth``
    Physical-synthesis flow: cell libraries, mapping, STA, sizing.
``repro.circuits``
    Concrete design tasks (adders, gray-to-binary).
``repro.opt``
    Simulator facade, budgets, experiment harness, run statistics.
``repro.engine``
    Parallel, persistent, batched evaluation engine: shared disk cache,
    multiprocessing synthesis pool, futures-style batch API, telemetry.
``repro.core``
    The CircuitVAE model and Algorithm 1.
``repro.baselines``
    GA, PrefixRL-style RL, latent Bayesian optimization, random search.
``repro.api``
    Declarative experiment specs, the method registry, sessions and the
    ``python -m repro`` CLI — the public entrypoint for experiments.
``repro.utils``
    Deterministic RNG helpers, ASCII plotting, table formatting.

Quickstart
----------
>>> from repro.circuits import adder_task
>>> from repro.core import CircuitVAEOptimizer
>>> from repro.opt import CircuitSimulator
>>> import numpy as np
>>> task = adder_task(n=16, delay_weight=0.66)
>>> sim = CircuitSimulator(task, budget=200)
>>> best = CircuitVAEOptimizer().run(sim, np.random.default_rng(0))
>>> best.cost  # doctest: +SKIP
"""

__version__ = "1.0.0"

from . import nn  # noqa: F401  (import order: nn has no repro-internal deps)

__all__ = ["nn", "__version__"]
