"""Technology mapping: prefix graph -> gate-level netlist.

"Prefix graphs are translated into physical circuits through cell mapping
(which translates the logical graph into a list of electrical components
with a lookup table)" — paper Sec. 3.  Two mappings are provided, matching
the paper's two tasks; both share the span-decomposition structure so the
*same* prefix graph maps to either circuit type:

* :func:`map_adder` — generate/propagate cells.  Leaves compute
  ``g = AND(a,b)``, ``p = XOR(a,b)``; each prefix operator computes
  ``g' = g_up + p_up * g_lo`` (as AOI21 + INV, the standard fast mapping)
  and ``p' = AND(p_up, p_lo)``; sum bits are a final XOR against the
  carries.  Output-column spans skip the propagate network (no consumer),
  which is the usual prefix-adder area optimization.

* :func:`map_gray_to_binary` — each operator is a single XOR2; leaves are
  the (reversed) gray inputs, outputs are the decoded binary bits.
"""

from __future__ import annotations

from typing import Dict, Literal, Tuple

from ..prefix.graph import PrefixGraph, Span
from .library import CellLibrary
from .netlist import Netlist

__all__ = ["map_adder", "map_gray_to_binary", "map_leading_zero_detector", "map_prefix_graph"]

AdderStyle = Literal["aoi", "andor"]


def map_adder(graph: PrefixGraph, library: CellLibrary, style: AdderStyle = "aoi") -> Netlist:
    """Map a prefix graph to a full binary-adder netlist.

    ``style='aoi'`` maps the carry operator as INV(AOI21(p_up, g_lo, g_up))
    (2 cells, fast); ``style='andor'`` uses OR2(g_up, AND2(p_up, g_lo))
    (also 2 cells, slower but sometimes smaller at low drive).
    """
    n = graph.n
    netlist = Netlist(library)
    a_nets = [netlist.add_input(f"a[{i}]") for i in range(n)]
    b_nets = [netlist.add_input(f"b[{i}]") for i in range(n)]

    and2 = library.smallest("AND2")
    xor2 = library.smallest("XOR2")
    or2 = library.smallest("OR2")
    aoi21 = library.smallest("AOI21")
    inv = library.smallest("INV")

    # Leaf generate/propagate.
    g_net: Dict[Span, int] = {}
    p_net: Dict[Span, int] = {}
    for i in range(n):
        g_net[(i, i)] = netlist.add_gate(and2, [a_nets[i], b_nets[i]], name=f"g{i}_{i}", column=i)
        p_net[(i, i)] = netlist.add_gate(xor2, [a_nets[i], b_nets[i]], name=f"p{i}_{i}", column=i)

    # Prefix operators, bottom-up.
    needs_propagate = _propagate_consumers(graph)
    for node in graph.topological_order():
        i, j = node
        if i == j:
            continue
        upper, lower = graph.parents(i, j)
        if style == "aoi":
            # g' = !AOI21(p_up, g_lo, g_up) = g_up | (p_up & g_lo)
            aoi_out = netlist.add_gate(
                aoi21, [p_net[upper], g_net[lower], g_net[upper]], name=f"aoi{i}_{j}", column=i
            )
            g_net[node] = netlist.add_gate(inv, [aoi_out], name=f"g{i}_{j}", column=i)
        else:
            and_out = netlist.add_gate(
                and2, [p_net[upper], g_net[lower]], name=f"pg{i}_{j}", column=i
            )
            g_net[node] = netlist.add_gate(
                or2, [g_net[upper], and_out], name=f"g{i}_{j}", column=i
            )
        if node in needs_propagate:
            p_net[node] = netlist.add_gate(
                and2, [p_net[upper], p_net[lower]], name=f"p{i}_{j}", column=i
            )

    # Sum stage: s_0 = p_0; s_i = p_i XOR c_{i-1}; cout = c_{n-1}.
    netlist.mark_output("s[0]", p_net[(0, 0)])
    for i in range(1, n):
        carry = g_net[(i - 1, 0)]
        s = netlist.add_gate(xor2, [p_net[(i, i)], carry], name=f"s{i}", column=i)
        netlist.mark_output(f"s[{i}]", s)
    netlist.mark_output("cout", g_net[(n - 1, 0)])
    return netlist


def _propagate_consumers(graph: PrefixGraph) -> set:
    """Spans whose group-propagate is actually consumed by a child.

    A span is used as an *upper* parent (needs p) or a *lower* parent
    (needs p only if the child itself needs p).  Output-column spans are
    never upper parents (their lsb is 0), so their propagate is dead.
    Computed by a reverse sweep over topological order.
    """
    order = graph.topological_order()
    needs: set = set()
    for node in reversed(order):
        i, j = node
        if i == j:
            continue
        upper, lower = graph.parents(i, j)
        needs.add(upper)  # p_up always feeds the carry operator
        if node in needs:
            needs.add(lower)  # p' = p_up & p_lo only if p' is itself needed
    # Diagonal propagates also feed the sum XORs; they are materialized
    # unconditionally by map_adder, so no special handling here.
    return needs


def map_gray_to_binary(graph: PrefixGraph, library: CellLibrary) -> Netlist:
    """Map a prefix graph to a gray-to-binary decoder (XOR prefix network).

    Leaf ``i`` carries gray bit ``n-1-i`` (see
    :func:`repro.prefix.verify.simulate_gray_to_binary`); span (i, 0) is
    binary output bit ``n-1-i``.  The MSB is a feed-through.
    """
    n = graph.n
    netlist = Netlist(library)
    gray_nets = [netlist.add_input(f"gray[{i}]") for i in range(n)]
    xor2 = library.smallest("XOR2")

    value: Dict[Span, int] = {(i, i): gray_nets[n - 1 - i] for i in range(n)}
    for node in graph.topological_order():
        i, j = node
        if i == j:
            continue
        upper, lower = graph.parents(i, j)
        value[node] = netlist.add_gate(
            xor2, [value[upper], value[lower]], name=f"x{i}_{j}", column=i
        )
    for i in range(n):
        netlist.mark_output(f"bin[{n - 1 - i}]", value[(i, 0)])
    return netlist


def map_leading_zero_detector(graph: PrefixGraph, library: CellLibrary) -> Netlist:
    """Map a prefix graph to a leading-zero detector (OR prefix network).

    Leaf ``i`` carries input bit ``n-1-i``; span (i, 0) is the monotone
    flag "some 1 among the top i+1 bits".  Outputs are the one-hot "first
    one is at position n-1-i" signals: ``hot_i = F_i & !F_{i-1}`` (with
    ``hot`` for i=0 the flag itself), plus the all-zero indicator.  This
    is the "other prefix computation" the paper's conclusion suggests
    (leading zero detectors) — the optimizer applies unchanged.
    """
    n = graph.n
    netlist = Netlist(library)
    in_nets = [netlist.add_input(f"x[{i}]") for i in range(n)]
    or2 = library.smallest("OR2")
    and2 = library.smallest("AND2")
    inv = library.smallest("INV")

    value: Dict[Span, int] = {(i, i): in_nets[n - 1 - i] for i in range(n)}
    for node in graph.topological_order():
        i, j = node
        if i == j:
            continue
        upper, lower = graph.parents(i, j)
        value[node] = netlist.add_gate(
            or2, [value[upper], value[lower]], name=f"f{i}_{j}", column=i
        )
    # One-hot first-one outputs + the all-zero flag.
    netlist.mark_output("hot[0]", value[(0, 0)])
    prev_flag = value[(0, 0)]
    for i in range(1, n):
        flag = value[(i, 0)]
        not_prev = netlist.add_gate(inv, [prev_flag], name=f"nf{i}", column=i)
        hot = netlist.add_gate(and2, [flag, not_prev], name=f"hot{i}", column=i)
        netlist.mark_output(f"hot[{i}]", hot)
        prev_flag = flag
    all_zero = netlist.add_gate(inv, [value[(n - 1, 0)]], name="allzero", column=n - 1)
    netlist.mark_output("all_zero", all_zero)
    return netlist


def map_prefix_graph(
    graph: PrefixGraph,
    library: CellLibrary,
    circuit_type: str = "adder",
    style: AdderStyle = "aoi",
) -> Netlist:
    """Dispatch on circuit type ('adder', 'gray' or 'lzd')."""
    if circuit_type == "adder":
        return map_adder(graph, library, style=style)
    if circuit_type == "gray":
        return map_gray_to_binary(graph, library)
    if circuit_type == "lzd":
        return map_leading_zero_detector(graph, library)
    raise ValueError(f"unknown circuit type {circuit_type!r}")
