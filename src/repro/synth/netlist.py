"""Gate-level netlist data structure.

The output of technology mapping and the object the physical-synthesis
passes (buffering, sizing) rewrite.  Nets and gates are integer-indexed for
speed; names exist for debugging and the Verilog-ish dump.

A net has exactly one driver (a gate output or a primary input) and any
number of sinks.  Primary outputs are named references to nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .library import Cell, CellLibrary

__all__ = ["Gate", "Netlist"]


def _eval_function(function: str, pins: Sequence[bool]) -> bool:
    """Boolean semantics of every supported cell function."""
    if function == "INV":
        return not pins[0]
    if function == "BUF":
        return bool(pins[0])
    if function == "AND2":
        return pins[0] and pins[1]
    if function == "OR2":
        return pins[0] or pins[1]
    if function == "NAND2":
        return not (pins[0] and pins[1])
    if function == "NOR2":
        return not (pins[0] or pins[1])
    if function == "XOR2":
        return pins[0] != pins[1]
    if function == "XNOR2":
        return pins[0] == pins[1]
    if function == "AOI21":
        # Z = !((A & B) | C)
        return not ((pins[0] and pins[1]) or pins[2])
    raise KeyError(f"no boolean model for cell function {function!r}")


@dataclass
class Gate:
    """One placed cell instance.

    ``column`` is the datapath bit column this gate logically belongs to
    (set by technology mapping from the span it implements, or by buffer
    insertion from its sink centroid); the placer turns it into ``x``.
    """

    index: int
    cell: Cell
    inputs: List[int]  # net indices, one per pin
    output: int  # net index
    column: Optional[float] = None  # datapath bit column
    x: float = 0.0  # placement coordinates (um)
    y: float = 0.0

    def __repr__(self) -> str:
        return f"Gate({self.index}, {self.cell.name}, in={self.inputs}, out={self.output})"


class Netlist:
    """A combinational gate-level netlist.

    Net bookkeeping: ``net_driver[n]`` is the driving gate index or -1 for
    primary inputs; ``net_sinks[n]`` lists ``(gate_index, pin)`` pairs.
    Primary outputs may also "sink" a net; they contribute to fanout via
    ``po_load_ff`` during timing but have no gate index.
    """

    def __init__(self, library: CellLibrary):
        self.library = library
        self.gates: List[Gate] = []
        self.net_names: List[str] = []
        self.net_driver: List[int] = []  # -1 = primary input
        self.net_sinks: List[List[Tuple[int, int]]] = []
        self.primary_inputs: Dict[str, int] = {}
        self.primary_outputs: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> int:
        index = len(self.net_names)
        self.net_names.append(name)
        self.net_driver.append(-1)
        self.net_sinks.append([])
        return index

    def add_input(self, name: str) -> int:
        net = self.add_net(name)
        self.primary_inputs[name] = net
        return net

    def mark_output(self, name: str, net: int) -> None:
        self.primary_outputs[name] = net

    def add_gate(
        self,
        cell: Cell,
        inputs: Sequence[int],
        name: str = "",
        column: Optional[float] = None,
    ) -> int:
        """Instantiate ``cell`` on the given input nets; returns output net."""
        if len(inputs) != cell.num_inputs:
            raise ValueError(
                f"{cell.name} needs {cell.num_inputs} inputs, got {len(inputs)}"
            )
        out_net = self.add_net(name or f"n{len(self.net_names)}")
        gate = Gate(
            index=len(self.gates), cell=cell, inputs=list(inputs), output=out_net,
            column=column,
        )
        self.gates.append(gate)
        self.net_driver[out_net] = gate.index
        for pin, net in enumerate(inputs):
            self.net_sinks[net].append((gate.index, pin))
        return out_net

    # ------------------------------------------------------------------
    # Rewrites (physical synthesis)
    # ------------------------------------------------------------------
    def swap_cell(self, gate_index: int, cell: Cell) -> None:
        """Replace a gate's cell with a same-function variant (sizing)."""
        old = self.gates[gate_index].cell
        if cell.function != old.function:
            raise ValueError(f"cannot swap {old.function} for {cell.function}")
        self.gates[gate_index].cell = cell

    def rewire_sink(self, net: int, sink: Tuple[int, int], new_net: int) -> None:
        """Move one (gate, pin) sink from ``net`` onto ``new_net``."""
        self.net_sinks[net].remove(sink)
        gate_index, pin = sink
        self.gates[gate_index].inputs[pin] = new_net
        self.net_sinks[new_net].append(sink)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def fanout(self, net: int) -> int:
        """Gate sinks plus primary-output sinks on this net."""
        extra = sum(1 for po_net in self.primary_outputs.values() if po_net == net)
        return len(self.net_sinks[net]) + extra

    def area(self) -> float:
        """Total cell area in um^2."""
        return sum(g.cell.area for g in self.gates)

    def count_by_function(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell.function] = counts.get(gate.cell.function, 0) + 1
        return dict(sorted(counts.items()))

    def topological_order(self) -> List[int]:
        """Gate indices in dependency order (inputs before consumers)."""
        indegree = [0] * len(self.gates)
        for gate in self.gates:
            for net in gate.inputs:
                if self.net_driver[net] >= 0:
                    indegree[gate.index] += 1
        ready = [i for i, d in enumerate(indegree) if d == 0]
        order: List[int] = []
        while ready:
            gate_index = ready.pop()
            order.append(gate_index)
            for sink_index, _pin in self.net_sinks[self.gates[gate_index].output]:
                indegree[sink_index] -= 1
                if indegree[sink_index] == 0:
                    ready.append(sink_index)
        if len(order) != len(self.gates):
            raise ValueError("netlist contains a combinational cycle")
        return order

    def validate(self) -> None:
        """Structural sanity: drivers/sinks consistent, no dangling pins."""
        for gate in self.gates:
            if self.net_driver[gate.output] != gate.index:
                raise AssertionError(f"driver mismatch on net {gate.output}")
            for pin, net in enumerate(gate.inputs):
                if (gate.index, pin) not in self.net_sinks[net]:
                    raise AssertionError(f"sink list missing gate {gate.index} pin {pin}")
        for name, net in self.primary_outputs.items():
            if not (0 <= net < len(self.net_names)):
                raise AssertionError(f"primary output {name} references bad net {net}")
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------------
    # Logic simulation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Boolean-simulate the netlist; returns primary-output values.

        Used to verify that technology mapping preserved the circuit's
        function (the netlist must compute exactly what the prefix graph
        denotes).  ``inputs`` maps every primary-input name to a bit.
        """
        values: List[Optional[bool]] = [None] * len(self.net_names)
        for name, net in self.primary_inputs.items():
            if name not in inputs:
                raise KeyError(f"missing value for primary input {name!r}")
            values[net] = bool(inputs[name])
        for gate_index in self.topological_order():
            gate = self.gates[gate_index]
            pins = [values[net] for net in gate.inputs]
            if any(p is None for p in pins):
                raise AssertionError(f"gate {gate_index} evaluated before its inputs")
            values[gate.output] = _eval_function(gate.cell.function, pins)
        return {name: bool(values[net]) for name, net in self.primary_outputs.items()}

    # ------------------------------------------------------------------
    # Debug output
    # ------------------------------------------------------------------
    def to_verilog(self, module_name: str = "circuit") -> str:
        """Emit a structural-Verilog-style dump (for inspection, not EDA)."""
        lines = [f"module {module_name} ("]
        ports = [f"  input {name}" for name in self.primary_inputs]
        ports += [f"  output {name}" for name in self.primary_outputs]
        lines.append(",\n".join(ports))
        lines.append(");")
        for gate in self.gates:
            ins = ", ".join(f".{chr(ord('A') + p)}({self.net_names[n]})" for p, n in enumerate(gate.inputs))
            lines.append(
                f"  {gate.cell.name} g{gate.index} ({ins}, .Z({self.net_names[gate.output]}));"
            )
        for name, net in self.primary_outputs.items():
            lines.append(f"  assign {name} = {self.net_names[net]};")
        lines.append("endmodule")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Netlist({len(self.gates)} gates, {len(self.net_names)} nets, "
            f"{len(self.primary_inputs)} PIs, {len(self.primary_outputs)} POs)"
        )
