"""Delta-aware incremental synthesis over structurally-shared populations.

Search populations (GA offspring, BO acquisition batches) are mostly
*small edits of each other*: a mutated Sklansky tree shares almost every
fanin cone with its parent.  This module exploits that at two levels,
while keeping every :class:`~repro.synth.physical.PhysicalResult` field
**bit-identical** to the reference flow:

1. **Delta planning** (:func:`plan_deltas`) — using the Merkle cone keys
   of :mod:`repro.prefix.canonical`, the population is split into a few
   *anchors* (structurally novel graphs) and the *matched* majority
   whose internal cones overlap an anchor (or a caller-provided base
   graph) above :data:`SHARE_THRESHOLD`.  Anchors take the reference
   batched flow (``full_fallbacks``); matched graphs ride the delta
   pipeline (``incremental_evals``, with ``cone_hits`` counting their
   shared cones).

2. **Delta evaluation** (:func:`_synthesize_delta`) — matched graphs are
   built by a *vectorized structural builder* (the population's operator
   schedule, needs table and gate blocks derived with batch-wide numpy
   scatters instead of per-graph Python loops) and sized with the
   cone-limited batched STA (:meth:`_PackedBatch.resta`): after each
   sizing pass only the fanout cones of swapped gates are re-timed.

Bit-identity is structural, not numerical luck: the vectorized builder
emits the exact :class:`_FlatPopulation` the lean per-graph builders
produce (same gate order, sink order and column values), and the dirty
STA re-evaluates gates with the reference float operations, stopping on
bitwise-equal arrivals.  Splitting a population into separate batches is
itself exact because the batched flow treats graphs independently.
``tests/test_synth_incremental.py`` asserts equality across circuit
types, libraries, styles and IO profiles; ``REPRO_INCREMENTAL_EVAL=0``
disables the path entirely.
"""

from __future__ import annotations

import os
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..prefix.canonical import cone_keys
from ..prefix.graph import PrefixGraph
from ..prefix.metrics import batch_levels, stacked_grids
from .batched import (
    _FlatPopulation,
    _IOTemplate,
    _LibraryTables,
    _PackedBatch,
    _extract_results,
    _size_gates_batched,
    _tables_for,
    synthesize_many,
)
from .library import CellLibrary
from .physical import PhysicalResult, SynthesisOptions
from .timing import IOTiming

__all__ = [
    "IncrementalStats",
    "SHARE_THRESHOLD",
    "incremental_enabled",
    "plan_deltas",
    "synthesize_population",
]

#: Minimum shared-cone fraction for a candidate to ride the delta path.
SHARE_THRESHOLD = 0.5


def incremental_enabled() -> bool:
    """Kill switch: ``REPRO_INCREMENTAL_EVAL=0`` forces the full flow."""
    return os.environ.get("REPRO_INCREMENTAL_EVAL", "1") != "0"


@dataclass
class IncrementalStats:
    """Telemetry of one (or more) population evaluations.

    ``incremental_evals`` — graphs that took the delta pipeline;
    ``cone_hits`` — their internal cones shared with the chosen base;
    ``full_fallbacks`` — graphs evaluated by the reference flow (anchors,
    guard failures, or the kill switch).
    """

    incremental_evals: int = 0
    cone_hits: int = 0
    full_fallbacks: int = 0

    def merge(self, other: "IncrementalStats") -> None:
        self.incremental_evals += other.incremental_evals
        self.cone_hits += other.cone_hits
        self.full_fallbacks += other.full_fallbacks


# Counters are consulted once per plan per graph; populations overlap
# heavily between engine batches, so memoize alongside the cone keys.
# thread-safety: guarded by _COUNTERS_LOCK — parallel seeds share one
# in-process engine, so this LRU is mutated from several threads (and
# from the serve daemon's eval lane) concurrently.
_COUNTERS: "OrderedDict[bytes, Counter]" = OrderedDict()
_COUNTERS_LOCK = threading.Lock()
_COUNTER_LIMIT = 2048

#: The delta pipeline's fast-path contract, machine-checked by
#: ``python -m repro check``: the kill switch is read right here
#: (:func:`incremental_enabled`), anchors and guard failures fall back
#: to :func:`repro.synth.batched.synthesize_many` (the bit-identical
#: reference), and ``benchmarks/bench_incremental_eval.py`` gates the
#: speedup while asserting bit-identity against that reference.
FAST_PATH_CONTRACT = {
    "kill_switch": "REPRO_INCREMENTAL_EVAL",
    "reference": "synthesize_many",
    "bench": "bench_incremental_eval.py",
}


def _cone_counter(graph: PrefixGraph) -> Counter:
    """Multiset of (cone key, width) over a graph's internal nodes."""
    identity = graph.key()
    with _COUNTERS_LOCK:
        cached = _COUNTERS.get(identity)
        if cached is not None:
            _COUNTERS.move_to_end(identity)
            return cached
    counter = Counter(
        (key, i - j) for (i, j), key in cone_keys(graph).items() if i != j
    )
    with _COUNTERS_LOCK:
        _COUNTERS[identity] = counter
        if len(_COUNTERS) > _COUNTER_LIMIT:
            _COUNTERS.popitem(last=False)
    return counter


def plan_deltas(
    graphs: Sequence[PrefixGraph],
    base_hints: Sequence[PrefixGraph] = (),
    threshold: float = SHARE_THRESHOLD,
) -> Tuple[List[int], List[int], List[int]]:
    """Greedy anchor selection over a population.

    Each graph is compared (multiset cone-key overlap) against the
    caller's ``base_hints`` and the anchors picked so far — *not* all
    pairs, which would dominate the runtime the delta path is meant to
    save.  Returns ``(matched, anchors, shared)``: indices of graphs on
    the delta path, indices of anchor graphs, and per-matched-graph
    shared-cone counts (aligned with ``matched``).
    """
    hint_counters = [_cone_counter(g) for g in base_hints]
    anchors: List[int] = []
    anchor_counters: List[Counter] = []
    matched: List[int] = []
    shared: List[int] = []
    for index, graph in enumerate(graphs):
        counter = _cone_counter(graph)
        total = sum(counter.values())
        best = 0
        if total:
            for base in hint_counters:
                best = max(best, sum((counter & base).values()))
            for base in anchor_counters:
                best = max(best, sum((counter & base).values()))
        if total and best >= threshold * total:
            matched.append(index)
            shared.append(best)
        else:
            anchors.append(index)
            anchor_counters.append(counter)
    return matched, anchors, shared


# ----------------------------------------------------------------------
# Vectorized structural builder (batch-wide mirror of the lean builders)
# ----------------------------------------------------------------------
def _batch_ops(grids: np.ndarray, levels: np.ndarray):
    """All graphs' operator schedules at once, sorted like ``_span_plan``.

    ``np.nonzero`` over the stacked grids walks cells in (graph, row,
    column) order, so consecutive entries within one (graph, row) run
    are exactly the present-column pairs ``(j, k)`` of ``_span_plan``.
    Returns per-op arrays ``(ob, oi, oj, ok, lev)`` sorted by
    ``(graph, level, i, j)`` — the per-graph ``ops.sort()`` order.
    """
    b_idx, i_idx, j_idx = np.nonzero(grids)
    if len(b_idx) > 1:
        pair = (b_idx[:-1] == b_idx[1:]) & (i_idx[:-1] == i_idx[1:])
    else:
        pair = np.zeros(0, dtype=bool)
    ob = b_idx[:-1][pair]
    oi = i_idx[:-1][pair]
    oj = j_idx[:-1][pair]
    ok = j_idx[1:][pair]
    lev = levels[ob, oi, oj]
    order = np.lexsort((oj, oi, lev, ob))
    return ob[order], oi[order], oj[order], ok[order], lev[order]


def _batch_needs(B: int, n: int, ob, oi, oj, ok, lev) -> np.ndarray:
    """Vectorized ``_propagate_consumers`` truth tables, all graphs.

    The scalar sweep walks ops in descending (level, i, j) order; an op
    at level L (its own node's level) only *writes* strictly lower-level
    nodes (its parents) and only *reads* its own node, so processing one
    level at a time is race-free and order within a level is immaterial.
    """
    needs = np.zeros((B, n, n), dtype=bool)
    if not len(ob):
        return needs
    for level in range(int(lev.max()), 0, -1):
        sel = lev == level
        if not sel.any():
            continue
        sb, si, sj, sk = ob[sel], oi[sel], oj[sel], ok[sel]
        needs[sb, si, sk] = True  # p_up always feeds the carry operator
        cond = needs[sb, si, sj]  # p' = p_up & p_lo only if p' is needed
        needs[sb[cond], sk[cond] - 1, sj[cond]] = True
    return needs


def _assemble_adder(graphs, tables, template, style, ob, oi, oj, ok, needs):
    """Pre-buffering flat arrays for the adder mapping (all graphs)."""
    n = graphs[0].n
    B = len(graphs)
    npi = template.num_pis  # 2n
    and2, xor2 = tables.smallest["AND2"], tables.smallest["XOR2"]
    or2, aoi21, inv = (
        tables.smallest["OR2"], tables.smallest["AOI21"], tables.smallest["INV"],
    )
    needs_val = needs[ob, oi, oj]
    block = 2 + needs_val.astype(np.int64)
    op_counts = np.bincount(ob, minlength=B)
    op_start = np.concatenate([[0], np.cumsum(op_counts)])
    block_cum = np.concatenate([[0], np.cumsum(block)])
    S = block_cum[op_start[1:]] - block_cum[op_start[:-1]]  # per-graph sizes
    # Local index of each op's first gate: leaves, then prior blocks.
    lb = 2 * n + (block_cum[:-1] - block_cum[op_start[:-1]][ob])

    # Net tables: scatter every op's outputs, then gather parent nets —
    # safe because each (graph, i, j) is written by exactly one op.
    diag = np.arange(n)
    G_net = np.zeros((B, n, n), dtype=np.int64)
    P_net = np.zeros((B, n, n), dtype=np.int64)
    G_net[:, diag, diag] = npi + 2 * diag
    P_net[:, diag, diag] = npi + 2 * diag + 1
    G_net[ob, oi, oj] = npi + lb + 1
    P_net[ob[needs_val], oi[needs_val], oj[needs_val]] = (npi + lb + 2)[needs_val]
    p_up = P_net[ob, oi, ok]
    g_lo = G_net[ob, ok - 1, oj]
    g_up = G_net[ob, oi, ok]
    p_lo = P_net[ob, ok - 1, oj]

    m = 2 * n + S + (n - 1)  # per-graph gate counts (pre-buffering)
    goff = np.concatenate([[0], np.cumsum(m)])
    M = int(goff[-1])
    gate_cell = np.empty(M, dtype=np.int64)
    gate_col = np.empty(M, dtype=np.float64)
    pin_counts = np.empty(M, dtype=np.int64)
    pins = np.full((M, 3), -1, dtype=np.int64)

    # Leaf g/p pairs: gates 2i (AND2) and 2i+1 (XOR2), pins [a_i, b_i].
    leaf = goff[:-1, None] + np.arange(2 * n)[None, :]
    gate_cell[leaf] = np.tile([and2, xor2], n)
    gate_col[leaf] = np.repeat(diag, 2).astype(np.float64)
    pin_counts[leaf] = 2
    pins[leaf, 0] = np.repeat(diag, 2)
    pins[leaf, 1] = np.repeat(diag + n, 2)

    # Operator blocks (2 carry gates + optional propagate AND2).
    gf = goff[ob] + lb
    aoi_out = npi + lb  # net of the block's first gate
    if style == "aoi":
        gate_cell[gf] = aoi21
        pins[gf, 0] = p_up
        pins[gf, 1] = g_lo
        pins[gf, 2] = g_up
        pin_counts[gf] = 3
        gate_cell[gf + 1] = inv
        pins[gf + 1, 0] = aoi_out
        pin_counts[gf + 1] = 1
    else:
        gate_cell[gf] = and2
        pins[gf, 0] = p_up
        pins[gf, 1] = g_lo
        pin_counts[gf] = 2
        gate_cell[gf + 1] = or2
        pins[gf + 1, 0] = g_up
        pins[gf + 1, 1] = aoi_out
        pin_counts[gf + 1] = 2
    gate_col[gf] = oi
    gate_col[gf + 1] = oi
    g3 = gf[needs_val] + 2
    gate_cell[g3] = and2
    pins[g3, 0] = p_up[needs_val]
    pins[g3, 1] = p_lo[needs_val]
    pin_counts[g3] = 2
    gate_col[g3] = oi[needs_val]

    # Sum stage: XOR2(p_i, carry_{i-1}) for i in 1..n-1.
    sum_base = goff[:-1] + 2 * n + S
    if n > 1:
        srow = sum_base[:, None] + np.arange(n - 1)[None, :]
        gate_cell[srow] = xor2
        pins[srow, 0] = npi + 2 * np.arange(1, n) + 1  # leaf p_i
        pins[srow, 1] = G_net[:, : n - 1, 0]  # carry = g[i-1][0]
        pin_counts[srow] = 2
        gate_col[srow] = np.arange(1, n).astype(np.float64)

    po_net = np.empty((B, n + 1), dtype=np.int64)
    po_net[:, 0] = npi + 1  # s[0] = leaf p_0
    if n > 1:
        po_net[:, 1:n] = (npi + 2 * n + S)[:, None] + np.arange(n - 1)
    po_net[:, n] = G_net[:, n - 1, 0]  # cout
    return m, gate_cell, pin_counts, pins, gate_col, po_net.ravel()


def _assemble_xor_or(graphs, tables, template, circuit_type, ob, oi, oj, ok):
    """Pre-buffering flat arrays for the gray / lzd mappings."""
    n = graphs[0].n
    B = len(graphs)
    op_cell = tables.smallest["XOR2" if circuit_type == "gray" else "OR2"]
    op_counts = np.bincount(ob, minlength=B)
    op_start = np.concatenate([[0], np.cumsum(op_counts)])
    t_local = np.arange(len(ob)) - op_start[:-1][ob]  # op index within graph

    diag = np.arange(n)
    V_net = np.zeros((B, n, n), dtype=np.int64)
    V_net[:, diag, diag] = n - 1 - diag  # reversed PI nets
    V_net[ob, oi, oj] = n + t_local
    up = V_net[ob, oi, ok]
    lo = V_net[ob, ok - 1, oj]

    extra = 0 if circuit_type == "gray" else 2 * (n - 1) + 1
    m = op_counts + extra
    goff = np.concatenate([[0], np.cumsum(m)])
    M = int(goff[-1])
    gate_cell = np.empty(M, dtype=np.int64)
    gate_col = np.empty(M, dtype=np.float64)
    pin_counts = np.empty(M, dtype=np.int64)
    pins = np.full((M, 3), -1, dtype=np.int64)

    gop = goff[ob] + t_local
    gate_cell[gop] = op_cell
    pins[gop, 0] = up
    pins[gop, 1] = lo
    pin_counts[gop] = 2
    gate_col[gop] = oi

    if circuit_type == "gray":
        return m, gate_cell, pin_counts, pins, gate_col, V_net[:, :, 0].ravel()

    # lzd one-hot chain: INV(prev flag) + AND2(flag, not_prev) per bit,
    # plus the trailing all_zero INV — mirror of _map_xor_or_lean.
    and2, inv = tables.smallest["AND2"], tables.smallest["INV"]
    chain_base = goff[:-1] + op_counts  # first chain gate per graph
    po_net = np.empty((B, n + 1), dtype=np.int64)
    po_net[:, 0] = V_net[:, 0, 0]  # hot[0]
    if n > 1:
        ginv = chain_base[:, None] + 2 * np.arange(n - 1)[None, :]
        gand = ginv + 1
        gate_cell[ginv] = inv
        pins[ginv, 0] = V_net[:, : n - 1, 0]  # prev_flag = value[i-1][0]
        pin_counts[ginv] = 1
        gate_col[ginv] = np.arange(1, n).astype(np.float64)
        gate_cell[gand] = and2
        pins[gand, 0] = V_net[:, 1:n, 0]  # flag = value[i][0]
        pins[gand, 1] = n + ginv - goff[:-1, None]  # not_prev net
        pin_counts[gand] = 2
        gate_col[gand] = np.arange(1, n).astype(np.float64)
        po_net[:, 1:n] = n + gand - goff[:-1, None]  # hot[i]
    gzero = chain_base + 2 * (n - 1)
    gate_cell[gzero] = inv
    pins[gzero, 0] = V_net[:, n - 1, 0]
    pin_counts[gzero] = 1
    gate_col[gzero] = float(n - 1)
    po_net[:, n] = n + gzero - goff[:-1]  # all_zero
    return m, gate_cell, pin_counts, pins, gate_col, po_net.ravel()


def _buffer_flat(m, gate_cell, pin_counts, flat_pins, gate_col, po_net,
                 tables: _LibraryTables, template: _IOTemplate, max_fanout: int):
    """Mirror of ``_buffer_fanout_lean`` over the flat pre-buffer arrays.

    Only over-limit nets (and the buffer trees they grow) are touched in
    Python; everything else stays in the already-built arrays.  Existing
    sink pins are rewired in place in ``flat_pins``; per-graph buffer
    gates are appended by an interleaved concatenate at the end.
    """
    if max_fanout < 2:
        raise ValueError("max_fanout must be >= 2")
    B = len(m)
    npi = template.num_pis
    goff = np.concatenate([[0], np.cumsum(m)])
    M = int(goff[-1])
    net_counts = m + npi
    net_off = np.concatenate([[0], np.cumsum(net_counts)])
    gate_graph = np.repeat(np.arange(B), m)
    pin_off = np.concatenate([[0], np.cumsum(pin_counts)])
    pin_gate = np.repeat(np.arange(M), pin_counts)
    pin_slot = np.arange(len(flat_pins)) - pin_off[:-1][pin_gate]
    global_pin = flat_pins + net_off[gate_graph[pin_gate]]
    sink_counts = np.bincount(global_pin, minlength=int(net_off[-1]))
    over = np.flatnonzero(sink_counts > max_fanout)
    num_buffers = np.zeros(B, dtype=np.int64)
    if not len(over):
        return _FlatPopulation(
            m, gate_cell, pin_counts, flat_pins, gate_col, po_net, num_buffers
        )

    # Sink lists in (gate, pin) order — flat_pins is gate-major/pin-minor,
    # so a stable argsort groups each net's sinks in sink-list order.
    order = np.argsort(global_pin, kind="stable")
    sorted_nets = global_pin[order]
    starts = np.searchsorted(sorted_nets, over)
    ends = np.searchsorted(sorted_nets, over, side="right")
    # Gather just the over-limit nets' sink ranges (not the whole batch).
    span = ends - starts
    span_off = np.concatenate([[0], np.cumsum(span)])
    gather = np.repeat(starts - span_off[:-1], span) + np.arange(int(span_off[-1]))
    sel_pins = order[gather]
    sink_gate = pin_gate[sel_pins]
    sink_slot = pin_slot[sel_pins]
    over_graph = np.searchsorted(net_off, over, side="right") - 1
    buf_caps = np.asarray(tables.buf_caps, dtype=np.float64)
    buf_ids = np.asarray(tables.buf_ids, dtype=np.int64)
    buf_cell: List[List[int]] = [[] for _ in range(B)]
    buf_in: List[List[int]] = [[] for _ in range(B)]
    buf_col: List[List[float]] = [[] for _ in range(B)]

    # A net with at most max_fanout**2 sinks is fixed by one wave of
    # groups (its ceil(s/mf) buffers themselves fit under the limit), so
    # graphs whose over-limit nets all satisfy that build their whole
    # buffer list in one vectorized pass; deeper trees (and libraries
    # whose BUF variants aren't cap-sorted, where the first-fit scan
    # can't become a searchsorted) take the per-graph queue loop below.
    is_deep = np.zeros(B, dtype=bool)
    if np.any(np.diff(buf_caps) < 0.0):
        is_deep[over_graph] = True
    else:
        is_deep[over_graph[span > max_fanout * max_fanout]] = True
    v = np.flatnonzero(~is_deep[over_graph])
    vbuf_off = np.zeros(B + 1, dtype=np.int64)
    vbuf_cell = vbuf_in = np.zeros(0, dtype=np.int64)
    vbuf_col = np.zeros(0, dtype=np.float64)
    if len(v):
        # Scalar order: nets descending within a graph, groups ascending
        # within a net, graphs independent (sorted ascending for slicing).
        ordv = v[np.lexsort((-over[v], over_graph[v]))]
        vspan = span[ordv]
        ngroups = -(-vspan // max_fanout)
        total = int(ngroups.sum())
        gnet = np.repeat(ordv, ngroups)  # group -> index into `over`
        gidx = np.arange(total) - np.repeat(
            np.cumsum(ngroups) - ngroups, ngroups
        )
        local = gidx[:, None] * max_fanout + np.arange(max_fanout)[None, :]
        valid = local < np.repeat(vspan, ngroups)[:, None]
        pos = np.where(valid, span_off[gnet][:, None] + local, 0)
        sg = sink_gate[pos]
        # Group load: caps in sink order, zero-padded — np.add.accumulate
        # is the exact left-to-right fold of the scalar sum() (trailing
        # +0.0 never changes a positive partial sum).
        caps_m = np.where(valid, tables.cap[gate_cell[sg]], 0.0)
        load = np.add.accumulate(caps_m, axis=1)[:, -1]
        cell_idx = np.minimum(
            np.searchsorted(buf_caps * 4.0, load, side="left"),
            len(buf_caps) - 1,
        )
        colm = gate_col[sg]
        colok = valid & ~np.isnan(colm)
        # NaN columns are skipped, not zeroed: c + 0.0 == c exactly, so
        # substituting 0.0 reproduces the skip-sum bit for bit.
        csum = np.add.accumulate(np.where(colok, colm, 0.0), axis=1)[:, -1]
        ccount = colok.sum(axis=1)
        centroid = np.where(
            ccount > 0, csum / np.maximum(ccount, 1), np.nan
        )
        gb = over_graph[gnet]
        gcount = np.bincount(gb, minlength=B)
        buf_local = np.arange(total) - (np.cumsum(gcount) - gcount)[gb]
        buf_out_local = npi + m[gb] + buf_local
        pp = pin_off[sg] + sink_slot[pos]
        flat_pins[pp[valid]] = np.broadcast_to(
            buf_out_local[:, None], (total, max_fanout)
        )[valid]
        vbuf_cell = buf_ids[cell_idx]
        vbuf_in = over[gnet] - net_off[gb]
        vbuf_col = centroid
        vbuf_off[1:] = np.cumsum(gcount)
        num_buffers += gcount

    deep_graphs = np.flatnonzero(is_deep).tolist()
    if deep_graphs:
        over_sink_gate = sink_gate.tolist()
        over_sink_slot = sink_slot.tolist()
        caps = tables.cap.tolist()
        buf_pairs = list(zip(tables.buf_ids, tables.buf_caps))
    for b in deep_graphs:
        sel = np.flatnonzero(over_graph == b)
        noff = int(net_off[b])
        base = int(goff[b])
        mb = int(m[b])
        cells_b = buf_cell[b]
        ins_b = buf_in[b]
        cols_b = buf_col[b]
        # net -> [(local gate, pin)] for the nets buffering will touch.
        sinks: Dict[int, List[Tuple[int, int]]] = {}
        for o in sel.tolist():
            sinks[int(over[o]) - noff] = [
                (over_sink_gate[p] - base, over_sink_slot[p])
                for p in range(int(span_off[o]), int(span_off[o + 1]))
            ]

        def cap_of(gate: int) -> float:
            if gate < mb:
                return caps[gate_cell[base + gate]]
            return caps[cells_b[gate - mb]]

        def col_of(gate: int) -> Optional[float]:
            column = gate_col[base + gate] if gate < mb else cols_b[gate - mb]
            return None if np.isnan(column) else float(column)

        def rewire(gate: int, pin: int, new_net: int) -> None:
            if gate < mb:
                flat_pins[pin_off[base + gate] + pin] = new_net
            else:
                ins_b[gate - mb] = new_net

        queue = sorted(sinks)
        while queue:
            net = queue.pop()
            slist = list(sinks[net])
            if len(slist) <= max_fanout:
                continue
            groups = [
                slist[k : k + max_fanout] for k in range(0, len(slist), max_fanout)
            ]
            for group in groups:
                load = sum(cap_of(g) for g, _ in group)
                cell_id = buf_pairs[0][0]
                for cell_id, cap in buf_pairs:
                    if cap * 4.0 >= load:
                        break
                sink_columns = [
                    c for c in (col_of(g) for g, _ in group) if c is not None
                ]
                centroid = (
                    sum(sink_columns) / len(sink_columns) if sink_columns
                    else float("nan")
                )
                buf_gate = mb + len(cells_b)
                buf_out = npi + buf_gate
                cells_b.append(cell_id)
                ins_b.append(net)
                cols_b.append(centroid)
                sinks[net].append((buf_gate, 0))
                sinks[buf_out] = []
                num_buffers[b] += 1
                for sink in group:
                    sinks[net].remove(sink)
                    rewire(sink[0], sink[1], buf_out)
                    sinks[buf_out].append(sink)
            if len(sinks[net]) > max_fanout:
                queue.append(net)

    gate_counts = m + num_buffers
    cell_parts, count_parts, pin_parts, col_parts = [], [], [], []
    for b in range(B):
        gs, ge = int(goff[b]), int(goff[b + 1])
        ps, pe = int(pin_off[gs]), int(pin_off[ge])
        if is_deep[b]:
            bc = np.asarray(buf_cell[b], dtype=np.int64)
            bi = np.asarray(buf_in[b], dtype=np.int64)
            bcol = np.asarray(buf_col[b], dtype=np.float64)
        else:
            vs, ve = int(vbuf_off[b]), int(vbuf_off[b + 1])
            bc = vbuf_cell[vs:ve]
            bi = vbuf_in[vs:ve]
            bcol = vbuf_col[vs:ve]
        cell_parts += [gate_cell[gs:ge], bc]
        count_parts += [pin_counts[gs:ge], np.ones(len(bc), dtype=np.int64)]
        pin_parts += [flat_pins[ps:pe], bi]
        col_parts += [gate_col[gs:ge], bcol]
    return _FlatPopulation(
        gate_counts,
        np.concatenate(cell_parts),
        np.concatenate(count_parts),
        np.concatenate(pin_parts),
        np.concatenate(col_parts),
        po_net,
        num_buffers,
    )


def _build_flat(
    graphs: Sequence[PrefixGraph],
    tables: _LibraryTables,
    template: _IOTemplate,
    circuit_type: str,
    options: SynthesisOptions,
) -> _FlatPopulation:
    """Whole-population structural build, emitting ``_FlatPopulation``."""
    grids = stacked_grids(graphs)
    levels = batch_levels(grids)
    ob, oi, oj, ok, lev = _batch_ops(grids, levels)
    if circuit_type == "adder":
        needs = _batch_needs(len(graphs), graphs[0].n, ob, oi, oj, ok, lev)
        parts = _assemble_adder(
            graphs, tables, template, options.mapping_style, ob, oi, oj, ok, needs
        )
    else:
        parts = _assemble_xor_or(graphs, tables, template, circuit_type, ob, oi, oj, ok)
    m, gate_cell, pin_counts, pins, gate_col, po_net = parts
    flat_pins = pins.ravel()[pins.ravel() >= 0]
    return _buffer_flat(
        m, gate_cell, pin_counts, flat_pins, gate_col, po_net,
        tables, template, options.max_fanout,
    )


def _synthesize_delta(
    graphs: Sequence[PrefixGraph],
    library: CellLibrary,
    circuit_type: str,
    io_timing: IOTiming,
    options: SynthesisOptions,
) -> List[PhysicalResult]:
    """The fast pipeline: vectorized build + cone-limited sizing STA."""
    tables = _tables_for(library)
    template = _IOTemplate(graphs[0].n, circuit_type, io_timing)
    flat = _build_flat(graphs, tables, template, circuit_type, options)
    pb = _PackedBatch(flat, tables, library, template)
    delay_ns, crit_po = _size_gates_batched(pb, options, dirty_sta=True)
    return _extract_results(pb, delay_ns, crit_po)


def synthesize_population(
    graphs: Sequence[PrefixGraph],
    library: CellLibrary,
    circuit_type: str = "adder",
    io_timing: Optional[IOTiming] = None,
    options: Optional[SynthesisOptions] = None,
    base_hints: Sequence[PrefixGraph] = (),
    stats: Optional[IncrementalStats] = None,
) -> Tuple[List[PhysicalResult], IncrementalStats]:
    """Evaluate a population, routing shared structure to the delta path.

    Results are bit-identical to :func:`repro.synth.synthesize_many`
    (itself bit-identical to the scalar flow).  ``base_hints`` are
    graphs the caller has already evaluated (e.g. a cache's cone-base
    tier or the surviving parents of a GA round); candidates matching a
    hint need no in-batch anchor.  Anchors ride the same batch — they
    *are* the in-batch bases — but count as ``full_fallbacks``: they
    found no base and pay for a full evaluation.  Any guard failure —
    the kill switch, a degenerate batch, an unsupported circuit type or
    mapping style — falls back to the reference flow for the whole
    batch.
    """
    graphs = list(graphs)
    if stats is None:
        stats = IncrementalStats()
    io_timing = io_timing or IOTiming()
    options = options or SynthesisOptions()
    supported = (
        incremental_enabled()
        and len(graphs) >= 2
        and circuit_type in ("adder", "gray", "lzd")
        and options.mapping_style in ("aoi", "andor")
        and options.max_fanout >= 2
        and len({graph.n for graph in graphs}) == 1
    )
    if not supported:
        stats.full_fallbacks += len(graphs)
        return (
            synthesize_many(graphs, library, circuit_type, io_timing, options),
            stats,
        )
    matched, anchors, shared = plan_deltas(graphs, base_hints)
    results = _synthesize_delta(graphs, library, circuit_type, io_timing, options)
    stats.incremental_evals += len(matched)
    stats.cone_hits += sum(shared)
    stats.full_fallbacks += len(anchors)
    return results, stats
