"""The scalar objective of the paper (Sec. 3).

``f(x) = omega * delay(x) + (1 - omega) * area(x)`` with delay measured in
nanoseconds *times 10* and area in square microns *divided by 100* — the
paper's normalization, chosen so sweeping omega in [0, 1] trades the goals
smoothly.  ``omega`` is the **delay weight**.
"""

from __future__ import annotations

from dataclasses import dataclass

from .physical import PhysicalResult

__all__ = ["DELAY_SCALE", "AREA_SCALE", "CostWeights", "cost_from_metrics"]

DELAY_SCALE = 10.0  # ns -> cost units
AREA_SCALE = 0.01  # um^2 -> cost units


def cost_from_metrics(area_um2: float, delay_ns: float, delay_weight: float) -> float:
    """Scalar cost of (area, delay) at a given delay weight omega."""
    if not 0.0 <= delay_weight <= 1.0:
        raise ValueError(f"delay weight must be in [0, 1], got {delay_weight}")
    return delay_weight * DELAY_SCALE * delay_ns + (1.0 - delay_weight) * AREA_SCALE * area_um2


@dataclass(frozen=True)
class CostWeights:
    """A delay weight with convenience evaluation over synthesis results."""

    delay_weight: float

    def __post_init__(self):
        if not 0.0 <= self.delay_weight <= 1.0:
            raise ValueError(f"delay weight must be in [0, 1], got {self.delay_weight}")

    def cost(self, result: PhysicalResult) -> float:
        return cost_from_metrics(result.area_um2, result.delay_ns, self.delay_weight)

    def __repr__(self) -> str:
        return f"CostWeights(omega={self.delay_weight})"
