"""Virtual datapath placement and the wire model.

Real prefix adders are laid out as bit-sliced datapaths: one column per
output bit, rows stacked by logic depth.  Technology mapping annotates each
gate with the bit ``column`` of the span it implements (results live at
their span's msb column, the datapath convention); buffer insertion places
buffers at the centroid of their sink group.  The placer assigns
``x = column * bit_pitch`` and ``y = logic_level * row_height``; wire
length between a driver and its sinks is Manhattan distance in this grid
and contributes capacitance to the driver's load during timing analysis.

This is where structures with long cross-datapath wires (Kogge-Stone's
upper levels span half the adder) pay a realistic penalty that a pure
gate-count model would miss — one of the physical effects the paper
emphasizes ("the actual delay of a fully synthesized and laid-out circuit
depends in a complicated way on many other physical factors").
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .library import CellLibrary
from .netlist import Netlist

__all__ = ["place_datapath", "wire_length", "total_wire_length", "input_column"]

_PIN_RE = re.compile(r"\[(\d+)\]")


def input_column(netlist: Netlist, net: int) -> float:
    """Bit column of a primary-input net, parsed from its ``name[bit]``."""
    match = _PIN_RE.search(netlist.net_names[net])
    return float(match.group(1)) if match else 0.0


def _resolve_column(netlist: Netlist, gate_index: int, memo: Dict[int, float]) -> float:
    """Gate column: the mapping-provided hint, else the fanin centroid."""
    if gate_index in memo:
        return memo[gate_index]
    gate = netlist.gates[gate_index]
    if gate.column is not None:
        memo[gate_index] = float(gate.column)
        return memo[gate_index]
    memo[gate_index] = 0.0  # break cycles defensively (DAG: unreachable)
    cols: List[float] = []
    for net in gate.inputs:
        driver = netlist.net_driver[net]
        if driver >= 0:
            cols.append(_resolve_column(netlist, driver, memo))
        else:
            cols.append(input_column(netlist, net))
    column = sum(cols) / len(cols) if cols else 0.0
    memo[gate_index] = column
    return column


def place_datapath(netlist: Netlist) -> None:
    """Assign (x, y) coordinates in um to every gate, in place."""
    library = netlist.library
    depth: List[int] = [0] * len(netlist.gates)
    memo: Dict[int, float] = {}
    for gate_index in netlist.topological_order():
        gate = netlist.gates[gate_index]
        level = 0
        for net in gate.inputs:
            driver = netlist.net_driver[net]
            if driver >= 0:
                level = max(level, depth[driver] + 1)
        depth[gate_index] = level
        gate.x = _resolve_column(netlist, gate_index, memo) * library.bit_pitch_um
        gate.y = level * library.row_height_um


def wire_length(netlist: Netlist, net: int) -> float:
    """Total Manhattan wirelength (um) of a net (driver to each sink)."""
    driver = netlist.net_driver[net]
    if driver < 0:
        x0 = input_column(netlist, net) * netlist.library.bit_pitch_um
        y0 = 0.0
    else:
        gate = netlist.gates[driver]
        x0, y0 = gate.x, gate.y
    length = 0.0
    for sink_index, _pin in netlist.net_sinks[net]:
        sink = netlist.gates[sink_index]
        length += abs(sink.x - x0) + abs(sink.y - y0)
    return length


def total_wire_length(netlist: Netlist) -> float:
    """Sum of all net wirelengths (um) — reported in synthesis stats."""
    return sum(wire_length(netlist, net) for net in range(len(netlist.net_names)))
