"""``repro.synth`` — the physical-synthesis substrate.

Standing in for OpenROAD/OpenPhySyn + Nangate45 (see DESIGN.md): cell
libraries, technology mapping of prefix graphs, placement-aware static
timing, fanout buffering, gate sizing, the paper's scalar cost function,
and the commercial-tool emulation used by the Fig. 6 experiment.
"""

from .batched import synthesize_many
from .incremental import (
    IncrementalStats,
    SHARE_THRESHOLD,
    incremental_enabled,
    plan_deltas,
    synthesize_population,
)
from .commercial import CommercialTool
from .cost import AREA_SCALE, DELAY_SCALE, CostWeights, cost_from_metrics
from .library import Cell, CellLibrary, LIBRARIES, nangate45, scaled_library
from .mapping import (
    map_adder,
    map_gray_to_binary,
    map_leading_zero_detector,
    map_prefix_graph,
)
from .netlist import Gate, Netlist
from .physical import (
    PhysicalResult,
    SynthesisOptions,
    buffer_fanout,
    size_gates,
    synthesize,
)
from .placement import place_datapath, total_wire_length, wire_length
from .timing import (
    IOTiming,
    TimingReport,
    TimingState,
    analyze_timing,
    dirty_after_swaps,
    extract_report,
    net_load,
    retime,
    timing_state,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "LIBRARIES",
    "nangate45",
    "scaled_library",
    "Gate",
    "Netlist",
    "map_adder",
    "map_gray_to_binary",
    "map_leading_zero_detector",
    "map_prefix_graph",
    "place_datapath",
    "wire_length",
    "total_wire_length",
    "IOTiming",
    "TimingReport",
    "TimingState",
    "analyze_timing",
    "dirty_after_swaps",
    "extract_report",
    "net_load",
    "retime",
    "timing_state",
    "SynthesisOptions",
    "PhysicalResult",
    "buffer_fanout",
    "size_gates",
    "synthesize",
    "synthesize_many",
    "synthesize_population",
    "IncrementalStats",
    "SHARE_THRESHOLD",
    "incremental_enabled",
    "plan_deltas",
    "CostWeights",
    "cost_from_metrics",
    "DELAY_SCALE",
    "AREA_SCALE",
    "CommercialTool",
]
