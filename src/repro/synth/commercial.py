"""Emulation of a commercial synthesis tool (the Fig. 6 evaluator).

The paper's realistic experiment searches with the open flow but *evaluates*
the best candidates with a commercial design tool, noting "the domain gap in
the cost function between training and evaluation: the commercial tool makes
different choices with respect to netlist buffering, gate sizing, cell
placement, etc."

:class:`CommercialTool` reproduces exactly that: it is a second, stronger
and differently-tuned physical synthesis configuration —

* higher sizing effort (more passes, tighter convergence),
* more aggressive buffering threshold (3 instead of 4),
* the alternative AND-OR mapping is also tried and the better result kept,
* a slightly different wire model (commercial routers achieve shorter
  wires; emulated by a 0.9 capacitance factor),

so a circuit's commercial (area, delay) correlates with — but does not
equal — the search-time flow's numbers.  The tool also *provides* its own
adder implementations (:meth:`provided_adders`): the best classical
structure per objective, which is what "the design tool's provided adders"
means in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..prefix.graph import PrefixGraph
from ..prefix.structures import STRUCTURES
from .cost import cost_from_metrics
from .library import Cell, CellLibrary
from .physical import PhysicalResult, SynthesisOptions, synthesize
from .timing import IOTiming

__all__ = ["CommercialTool"]


def _rescale_wire(library: CellLibrary, factor: float) -> CellLibrary:
    """A copy of ``library`` with the wire capacitance scaled by ``factor``."""
    return CellLibrary(
        name=f"{library.name}-routed",
        cells=[library.cell(name) for name in sorted(library._cells)],
        tau_ns=library.tau_ns,
        wire_cap_per_um=library.wire_cap_per_um * factor,
        bit_pitch_um=library.bit_pitch_um,
        row_height_um=library.row_height_um,
    )


class CommercialTool:
    """A stronger, differently-configured synthesis flow.

    Parameters
    ----------
    library:
        Technology library (typically the scaled 8 nm library for Fig. 6).
    io_timing:
        Datapath timing context shared by all evaluations.
    """

    def __init__(self, library: CellLibrary, io_timing: Optional[IOTiming] = None):
        self.library = _rescale_wire(library, 0.9)
        self.io_timing = io_timing or IOTiming()
        self._options = [
            SynthesisOptions(
                max_fanout=3, sizing_passes=12, area_recovery=True,
                slack_threshold=0.25, mapping_style="aoi",
            ),
            SynthesisOptions(
                max_fanout=3, sizing_passes=12, area_recovery=True,
                slack_threshold=0.25, mapping_style="andor",
            ),
        ]

    def evaluate(self, graph: PrefixGraph, circuit_type: str = "adder") -> PhysicalResult:
        """Synthesize with both mapping styles, keep the faster result
        (commercial tools time-optimize first, then recover area)."""
        results = [
            synthesize(graph, self.library, circuit_type, self.io_timing, options)
            for options in self._options
        ]
        return min(results, key=lambda r: (r.delay_ns, r.area_um2))

    def provided_adders(self, n: int) -> Dict[str, PhysicalResult]:
        """The tool's own adder offerings: every classical structure,
        synthesized at full effort.  Fig. 6's 'design tool' frontier."""
        return {
            name: self.evaluate(builder(n), circuit_type="adder")
            for name, builder in STRUCTURES.items()
        }

    def best_provided(self, n: int, delay_weight: float) -> Tuple[str, PhysicalResult]:
        """The provided adder minimizing the scalar cost at ``delay_weight``."""
        offerings = self.provided_adders(n)
        name = min(
            offerings,
            key=lambda k: cost_from_metrics(
                offerings[k].area_um2, offerings[k].delay_ns, delay_weight
            ),
        )
        return name, offerings[name]
