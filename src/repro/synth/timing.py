"""Static timing analysis (STA) with a logical-effort delay model.

Computes per-net arrival times in topological order; a gate's delay depends
on its output load (sink pin capacitances + wire capacitance from the
placement), so sizing and buffering decisions feed back into timing exactly
as in a real flow.

Structured as a **worklist STA over an explicit** :class:`TimingState`:
:func:`retime` accepts a *dirty frontier* of gates (the gates whose cell
or output load changed) and re-evaluates only their fanout cones, cutting
propagation the moment a recomputed arrival is bitwise equal to the
stored one.  :func:`analyze_timing` is the monolithic entry point — a
fresh state re-timed with every gate dirty — so full-graph analysis and
cone-limited delta analysis share one propagation kernel and are
bit-identical by construction (``tests/test_synth_timing_golden.py``
pins the per-node values).

Supports per-bit **IO timing constraints**: input arrival offsets and output
required-time margins, the "bit input and output timings captured from a
complete datapath" of the paper's realistic experiment (Sec. 5.4).  The
reported circuit delay is ``max_o(arrival(o) + margin(o))`` over primary
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .netlist import Netlist
from .placement import wire_length

__all__ = [
    "IOTiming",
    "TimingReport",
    "TimingState",
    "analyze_timing",
    "dirty_after_swaps",
    "extract_report",
    "net_load",
    "retime",
    "timing_state",
]

#: Capacitive load (fF) presented by a primary output (downstream logic).
PO_LOAD_FF = 3.0


@dataclass(frozen=True)
class IOTiming:
    """Per-bit timing environment of the circuit.

    ``input_arrival[name]`` — time (ns) at which a primary input is stable;
    missing names default to 0.  ``output_margin[name]`` — extra required
    time (ns) charged after a primary output; missing names default to 0.
    The uniform default (empty maps) reproduces the standard-benchmark
    setting of Sec. 5.2; the datapath profiles of Sec. 5.4 are built with
    :func:`repro.circuits.adder.datapath_io_timing`.
    """

    input_arrival: Dict[str, float] = field(default_factory=dict)
    output_margin: Dict[str, float] = field(default_factory=dict)

    def arrival(self, name: str) -> float:
        return self.input_arrival.get(name, 0.0)

    def margin(self, name: str) -> float:
        return self.output_margin.get(name, 0.0)


@dataclass
class TimingReport:
    """Result of one STA run."""

    delay_ns: float
    arrival_ns: np.ndarray  # per net
    critical_output: str
    critical_path: List[int]  # gate indices, input-side first
    gate_delay_ns: np.ndarray  # per gate

    def slack_ns(self, net: int) -> float:
        """Slack of a net relative to the critical delay (>= 0)."""
        return self.delay_ns - float(self.arrival_ns[net])


@dataclass
class TimingState:
    """Mutable per-net/per-gate timing data the worklist STA maintains.

    Valid only for a fixed netlist *structure*: cell swaps are what
    :func:`retime` absorbs incrementally; adding gates or rewiring nets
    requires a fresh state.
    """

    arrival_ns: np.ndarray  # per net
    from_gate: np.ndarray  # per net: gate that set the arrival (-1 = PI)
    gate_delay_ns: np.ndarray  # per gate

    def copy(self) -> "TimingState":
        """Independent snapshot (for speculative sizing passes)."""
        return TimingState(
            self.arrival_ns.copy(), self.from_gate.copy(), self.gate_delay_ns.copy()
        )


def net_load(netlist: Netlist, net: int) -> float:
    """Capacitive load (fF) on a net: sink pins + wire + PO load."""
    load = 0.0
    for sink_index, _pin in netlist.net_sinks[net]:
        load += netlist.gates[sink_index].cell.input_cap
    load += wire_length(netlist, net) * netlist.library.wire_cap_per_um
    for po_net in netlist.primary_outputs.values():
        if po_net == net:
            load += PO_LOAD_FF
    return load


def timing_state(netlist: Netlist, io_timing: Optional[IOTiming] = None) -> TimingState:
    """A fresh (not yet propagated) state: PI arrivals set, gates untimed."""
    io_timing = io_timing or IOTiming()
    num_nets = len(netlist.net_names)
    arrival = np.zeros(num_nets)
    for name, net in netlist.primary_inputs.items():
        arrival[net] = io_timing.arrival(name)
    return TimingState(
        arrival_ns=arrival,
        from_gate=np.full(num_nets, -1, dtype=np.int64),
        gate_delay_ns=np.zeros(len(netlist.gates)),
    )


def dirty_after_swaps(netlist: Netlist, swapped: Iterable[int]) -> List[int]:
    """The dirty frontier induced by cell swaps on ``swapped`` gates.

    A swapped gate's own delay changes (new cell, and its output load may
    differ through downstream pin swaps); the *drivers of its input nets*
    see a changed load through the new pin capacitance.  Everything else
    is reached by arrival propagation inside :func:`retime`.
    """
    dirty = set()
    for gate_index in swapped:
        dirty.add(gate_index)
        for net in netlist.gates[gate_index].inputs:
            driver = netlist.net_driver[net]
            if driver >= 0:
                dirty.add(driver)
    return sorted(dirty)


def retime(
    netlist: Netlist,
    state: TimingState,
    dirty_gates: Optional[Iterable[int]] = None,
    order: Optional[Sequence[int]] = None,
) -> TimingState:
    """Worklist arrival propagation over a dirty frontier (in place).

    ``dirty_gates`` are the gates whose delay must be re-evaluated (cell
    or output load changed — see :func:`dirty_after_swaps`); ``None``
    means *all* gates (a full pass).  Gates outside the frontier are
    re-evaluated only when a fanin arrival actually changed, and
    propagation stops wherever the recomputed arrival is bitwise equal
    to the stored value — each re-evaluated gate performs the exact
    float operations of the monolithic pass, so the state after retiming
    equals a from-scratch analysis bit for bit.
    """
    tau = netlist.library.tau_ns
    arrival = state.arrival_ns
    from_gate = state.from_gate
    gate_delays = state.gate_delay_ns
    if order is None:
        order = netlist.topological_order()
    if dirty_gates is None:
        frontier = None
    else:
        frontier = np.zeros(len(netlist.gates), dtype=bool)
        frontier[list(dirty_gates)] = True
    net_dirty = np.zeros(len(netlist.net_names), dtype=bool)

    for gate_index in order:
        gate = netlist.gates[gate_index]
        if frontier is not None and not frontier[gate_index]:
            for net in gate.inputs:
                if net_dirty[net]:
                    break
            else:
                continue
        load = net_load(netlist, gate.output)
        delay = gate.cell.delay(load, tau)
        gate_delays[gate_index] = delay
        worst = 0.0
        for net in gate.inputs:
            if arrival[net] > worst:
                worst = arrival[net]
        new_arrival = worst + delay
        if frontier is None or new_arrival != arrival[gate.output]:
            arrival[gate.output] = new_arrival
            net_dirty[gate.output] = True
        from_gate[gate.output] = gate_index
    return state


def extract_report(
    netlist: Netlist, state: TimingState, io_timing: Optional[IOTiming] = None
) -> TimingReport:
    """Critical endpoint + backwards path walk over a propagated state."""
    io_timing = io_timing or IOTiming()
    arrival = state.arrival_ns
    from_gate = state.from_gate
    worst_delay = -np.inf
    critical_output = ""
    critical_net = -1
    for name, net in netlist.primary_outputs.items():
        endpoint = arrival[net] + io_timing.margin(name)
        if endpoint > worst_delay:
            worst_delay = endpoint
            critical_output = name
            critical_net = net

    # Trace the critical path backwards through worst-arrival inputs.
    path: List[int] = []
    net = critical_net
    while net >= 0 and from_gate[net] >= 0:
        gate_index = int(from_gate[net])
        path.append(gate_index)
        gate = netlist.gates[gate_index]
        net = max(gate.inputs, key=lambda n: arrival[n]) if gate.inputs else -1
    path.reverse()

    return TimingReport(
        delay_ns=float(worst_delay),
        arrival_ns=arrival,
        critical_output=critical_output,
        critical_path=path,
        gate_delay_ns=state.gate_delay_ns,
    )


def analyze_timing(netlist: Netlist, io_timing: Optional[IOTiming] = None) -> TimingReport:
    """Propagate arrival times and extract the critical path (full pass)."""
    io_timing = io_timing or IOTiming()
    state = retime(netlist, timing_state(netlist, io_timing))
    return extract_report(netlist, state, io_timing)
