"""Static timing analysis (STA) with a logical-effort delay model.

Computes per-net arrival times in topological order; a gate's delay depends
on its output load (sink pin capacitances + wire capacitance from the
placement), so sizing and buffering decisions feed back into timing exactly
as in a real flow.

Supports per-bit **IO timing constraints**: input arrival offsets and output
required-time margins, the "bit input and output timings captured from a
complete datapath" of the paper's realistic experiment (Sec. 5.4).  The
reported circuit delay is ``max_o(arrival(o) + margin(o))`` over primary
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .netlist import Netlist
from .placement import wire_length

__all__ = ["IOTiming", "TimingReport", "analyze_timing", "net_load"]

#: Capacitive load (fF) presented by a primary output (downstream logic).
PO_LOAD_FF = 3.0


@dataclass(frozen=True)
class IOTiming:
    """Per-bit timing environment of the circuit.

    ``input_arrival[name]`` — time (ns) at which a primary input is stable;
    missing names default to 0.  ``output_margin[name]`` — extra required
    time (ns) charged after a primary output; missing names default to 0.
    The uniform default (empty maps) reproduces the standard-benchmark
    setting of Sec. 5.2; the datapath profiles of Sec. 5.4 are built with
    :func:`repro.circuits.adder.datapath_io_timing`.
    """

    input_arrival: Dict[str, float] = field(default_factory=dict)
    output_margin: Dict[str, float] = field(default_factory=dict)

    def arrival(self, name: str) -> float:
        return self.input_arrival.get(name, 0.0)

    def margin(self, name: str) -> float:
        return self.output_margin.get(name, 0.0)


@dataclass
class TimingReport:
    """Result of one STA run."""

    delay_ns: float
    arrival_ns: np.ndarray  # per net
    critical_output: str
    critical_path: List[int]  # gate indices, input-side first
    gate_delay_ns: np.ndarray  # per gate

    def slack_ns(self, net: int) -> float:
        """Slack of a net relative to the critical delay (>= 0)."""
        return self.delay_ns - float(self.arrival_ns[net])


def net_load(netlist: Netlist, net: int) -> float:
    """Capacitive load (fF) on a net: sink pins + wire + PO load."""
    load = 0.0
    for sink_index, _pin in netlist.net_sinks[net]:
        load += netlist.gates[sink_index].cell.input_cap
    load += wire_length(netlist, net) * netlist.library.wire_cap_per_um
    for po_net in netlist.primary_outputs.values():
        if po_net == net:
            load += PO_LOAD_FF
    return load


def analyze_timing(netlist: Netlist, io_timing: Optional[IOTiming] = None) -> TimingReport:
    """Propagate arrival times and extract the critical path."""
    io_timing = io_timing or IOTiming()
    tau = netlist.library.tau_ns
    num_nets = len(netlist.net_names)
    arrival = np.zeros(num_nets)
    from_gate = np.full(num_nets, -1, dtype=np.int64)  # gate that set arrival

    for name, net in netlist.primary_inputs.items():
        arrival[net] = io_timing.arrival(name)

    gate_delays = np.zeros(len(netlist.gates))
    for gate_index in netlist.topological_order():
        gate = netlist.gates[gate_index]
        load = net_load(netlist, gate.output)
        delay = gate.cell.delay(load, tau)
        gate_delays[gate_index] = delay
        worst = 0.0
        for net in gate.inputs:
            if arrival[net] > worst:
                worst = arrival[net]
        arrival[gate.output] = worst + delay
        from_gate[gate.output] = gate_index

    worst_delay = -np.inf
    critical_output = ""
    critical_net = -1
    for name, net in netlist.primary_outputs.items():
        endpoint = arrival[net] + io_timing.margin(name)
        if endpoint > worst_delay:
            worst_delay = endpoint
            critical_output = name
            critical_net = net

    # Trace the critical path backwards through worst-arrival inputs.
    path: List[int] = []
    net = critical_net
    while net >= 0 and from_gate[net] >= 0:
        gate_index = int(from_gate[net])
        path.append(gate_index)
        gate = netlist.gates[gate_index]
        net = max(gate.inputs, key=lambda n: arrival[n]) if gate.inputs else -1
    path.reverse()

    return TimingReport(
        delay_ns=float(worst_delay),
        arrival_ns=arrival,
        critical_output=critical_output,
        critical_path=path,
        gate_delay_ns=gate_delays,
    )
