"""Vectorized batched synthesis: a whole population in numpy passes.

:func:`synthesize_many` produces, for a batch of legal prefix graphs on
one task configuration, results **bit-identical** to calling
:func:`repro.synth.physical.synthesize` on each graph — but with the hot
parts of the flow (placement geometry, wire loads, static timing and the
iterative sizing loop; together ~80% of scalar wall-clock) executed as
vectorized numpy passes over the *whole batch* instead of one
Python-interpreted netlist at a time.

The flow has two halves with very different batching structure:

1. **Structural half** (map → buffer) is per-graph and integer-valued.
   It runs through a *lean builder* — a faithful re-derivation of
   :func:`~repro.synth.mapping.map_prefix_graph` and
   :func:`~repro.synth.physical.buffer_fanout` over plain lists instead
   of :class:`~repro.synth.netlist.Netlist` objects — sharing one
   stacked level array (:func:`repro.prefix.metrics.batch_levels`) and
   one set of IO name/arrival/margin templates across the population.
   Every net/gate index, sink order and float operation matches the
   reference flow, so downstream timing sees the same circuit in the
   same order.

2. **Geometry + timing half** (place → STA → sizing) runs fully packed:
   all netlists are flattened into batch-wide index arrays (gates,
   nets, sink CSR, per-level schedule); logic depth is solved by
   vectorized longest-path relaxation, placement and wirelength by
   array arithmetic, and each sizing pass walks every graph's critical
   path simultaneously, one path position per vectorized step.

Bit-identity discipline — the reference flow accumulates floats in
well-defined orders, and every vectorized reduction here preserves them:

* loads sum sink pin caps *in sink-list order* (sequential adds over
  padded slot columns; adding the 0.0 pads is exact), then the wire
  term, then per-PO loads — exactly ``net_load``'s order;
* wirelength sums per-sink Manhattan terms in sink-list order the same
  way;
* arrival is ``max(0, fanin arrivals) + delay``: max and add are exact,
  so level-synchronous propagation equals topological-order
  propagation;
* every elementwise formula (logical-effort delay, upsizing gain) uses
  the same operator association as its scalar counterpart;
* ordering decisions (critical-PO argmax, path sort, tie-breaks) follow
  the scalar code's first-wins/stable-sort semantics.

``tests/test_synth_batched.py`` asserts exact equality of every
:class:`PhysicalResult` field against the scalar flow across circuit
types, libraries, mapping styles, IO profiles and flow options.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from ..prefix.graph import PrefixGraph
from ..prefix.metrics import batch_levels, stacked_grids
from .library import CellLibrary
from .physical import PhysicalResult, SynthesisOptions
from .timing import IOTiming, PO_LOAD_FF

__all__ = ["synthesize_many"]


# ----------------------------------------------------------------------
# Per-library lookup tables
# ----------------------------------------------------------------------
class _LibraryTables:
    """Cell attributes as arrays indexed by a dense cell id.

    Ids are assigned function-by-function (sorted names), variant-by-
    variant (ascending drive), plus one trailing *dummy* id whose
    capacitance/area are 0 — the padding target for sink-slot gathers.
    """

    def __init__(self, library: CellLibrary):
        cells = []
        for function in library.functions():
            cells.extend(library.variants(function))
        self.id_of: Dict[str, int] = {c.name: i for i, c in enumerate(cells)}
        self.function_of: List[str] = [c.function for c in cells]
        self.dummy = len(cells)
        self.area = np.array([c.area for c in cells] + [0.0])
        self.cap = np.array([c.input_cap for c in cells] + [0.0])
        self.g = np.array([c.logical_effort for c in cells] + [0.0])
        self.p = np.array([c.intrinsic_delay for c in cells] + [0.0])
        # tau * logical_effort, the first product of _upsizing_gain's
        # fanin term — precomputing it preserves the value exactly.
        self.tau_g = library.tau_ns * self.g
        self.drive = np.array([c.drive for c in cells] + [0], dtype=np.int64)
        # resize(+1)/resize(-1) as id maps (-1 = no such variant).
        up = np.full(len(cells) + 1, -1, dtype=np.int64)
        down = np.full(len(cells) + 1, -1, dtype=np.int64)
        for function in library.functions():
            ids = [self.id_of[c.name] for c in library.variants(function)]
            for a, b in zip(ids[:-1], ids[1:]):
                up[a] = b
                down[b] = a
        self.up, self.down = up, down
        self.smallest = {
            function: self.id_of[library.smallest(function).name]
            for function in library.functions()
        }
        self.buf_ids = [self.id_of[c.name] for c in library.variants("BUF")]
        self.buf_caps = [c.input_cap for c in library.variants("BUF")]
        # Function histogram support (count_by_function's sorted-name
        # order is the id order: functions() is sorted).
        functions = library.functions()
        index_of = {f: i for i, f in enumerate(functions)}
        self.function_names = functions
        self.function_id = np.array(
            [index_of[f] for f in self.function_of] + [len(functions)],
            dtype=np.int64,
        )


_TABLES: "WeakKeyDictionary[CellLibrary, _LibraryTables]" = WeakKeyDictionary()


def _tables_for(library: CellLibrary) -> _LibraryTables:
    tables = _TABLES.get(library)
    if tables is None:
        tables = _LibraryTables(library)
        _TABLES[library] = tables
    return tables


# ----------------------------------------------------------------------
# Shared IO templates (identical for every graph in a batch)
# ----------------------------------------------------------------------
class _IOTemplate:
    """PI/PO names, columns, arrivals and margins for one (n, type)."""

    __slots__ = ("pi_col", "pi_arrival", "po_names", "po_margin", "num_pis")

    def __init__(self, n: int, circuit_type: str, io_timing: IOTiming):
        if circuit_type == "adder":
            pi_names = [f"a[{i}]" for i in range(n)] + [f"b[{i}]" for i in range(n)]
            self.pi_col = list(range(n)) + list(range(n))
            self.po_names = [f"s[{i}]" for i in range(n)] + ["cout"]
        elif circuit_type == "gray":
            pi_names = [f"gray[{i}]" for i in range(n)]
            self.pi_col = list(range(n))
            self.po_names = [f"bin[{n - 1 - i}]" for i in range(n)]
        elif circuit_type == "lzd":
            pi_names = [f"x[{i}]" for i in range(n)]
            self.pi_col = list(range(n))
            self.po_names = [f"hot[{i}]" for i in range(n)] + ["all_zero"]
        else:
            raise ValueError(f"unknown circuit type {circuit_type!r}")
        self.num_pis = len(pi_names)
        self.pi_arrival = [io_timing.arrival(name) for name in pi_names]
        self.po_margin = [io_timing.margin(name) for name in self.po_names]


# ----------------------------------------------------------------------
# Lean structural builder (mirror of mapping.py + physical.buffer_fanout
# over plain lists; gate ``i`` drives net ``num_pis + i``)
# ----------------------------------------------------------------------
class _LeanNetlist:
    __slots__ = ("gate_cell", "gate_in", "gate_col", "net_sinks", "po_net",
                 "num_pis", "num_buffers")

    def __init__(self, num_pis: int):
        self.num_pis = num_pis
        self.gate_cell: List[int] = []
        self.gate_in: List[List[int]] = []
        self.gate_col: List[Optional[float]] = []
        self.net_sinks: List[List[Tuple[int, int]]] = [[] for _ in range(num_pis)]
        self.po_net: List[int] = []  # aligned with the template's po_names
        self.num_buffers = 0

    @property
    def num_nets(self) -> int:
        return self.num_pis + len(self.gate_cell)


def _span_plan(graph: PrefixGraph, levels: np.ndarray):
    """Operator schedule shared by all three mappings.

    Returns the non-diagonal spans as ``(level, i, j, k)`` tuples — ``k``
    the upper parent's column, so parents are (i, k) and (k-1, j) — in
    the exact order ``PrefixGraph.topological_order()`` visits them,
    plus the ``_propagate_consumers`` truth table as a list-of-lists.
    """
    n = graph.n
    ops: List[Tuple[int, int, int, int]] = []
    grid = graph.grid
    level_list = levels.tolist()
    for i in range(1, n):
        cols = np.nonzero(grid[i, : i + 1])[0].tolist()
        row_levels = level_list[i]
        for j, k in zip(cols[:-1], cols[1:]):
            ops.append((row_levels[j], i, j, k))
    # topological_order(): sorted by (level, node) over *all* present
    # spans; diagonals (level 0) are skipped by every mapper, so the
    # relative order of operators is unchanged by dropping them.  (i, j)
    # is unique, so the trailing k never influences the sort.
    ops.sort()
    needs = [[False] * n for _ in range(n)]
    for _lev, i, j, k in reversed(ops):
        needs[i][k] = True  # p_up always feeds the carry operator
        if needs[i][j]:
            needs[k - 1][j] = True  # p' = p_up & p_lo only if p' is needed
    return ops, needs


def _map_adder_lean(graph, tables, ops, needs, style) -> _LeanNetlist:
    # The gate-construction sequence of mapping.map_adder with the
    # Netlist bookkeeping inlined over plain lists (this is the hottest
    # structural loop of the batch, hence the manual appends and the
    # list-of-lists span tables instead of tuple-keyed dicts).
    n = graph.n
    ln = _LeanNetlist(2 * n)
    gate_cell, gate_in, gate_col = ln.gate_cell, ln.gate_in, ln.gate_col
    net_sinks = ln.net_sinks
    npi = 2 * n
    and2, xor2 = tables.smallest["AND2"], tables.smallest["XOR2"]
    or2, aoi21, inv = (
        tables.smallest["OR2"], tables.smallest["AOI21"], tables.smallest["INV"],
    )

    g = [[0] * n for _ in range(n)]  # g[i][j] = net carrying span (i, j)
    p = [[0] * n for _ in range(n)]
    index = 0
    for i in range(n):
        gate_cell.append(and2)
        gate_in.append([i, n + i])
        gate_col.append(i)
        net_sinks.append([])
        net_sinks[i].append((index, 0))
        net_sinks[n + i].append((index, 1))
        g[i][i] = npi + index
        index += 1
        gate_cell.append(xor2)
        gate_in.append([i, n + i])
        gate_col.append(i)
        net_sinks.append([])
        net_sinks[i].append((index, 0))
        net_sinks[n + i].append((index, 1))
        p[i][i] = npi + index
        index += 1
    aoi = style == "aoi"
    for _lev, i, j, k in ops:
        row_g, row_p = g[i], p[i]
        p_up, g_lo, g_up = row_p[k], g[k - 1][j], row_g[k]
        if aoi:
            gate_cell.append(aoi21)
            gate_in.append([p_up, g_lo, g_up])
            gate_col.append(i)
            net_sinks.append([])
            net_sinks[p_up].append((index, 0))
            net_sinks[g_lo].append((index, 1))
            net_sinks[g_up].append((index, 2))
            aoi_out = npi + index
            index += 1
            gate_cell.append(inv)
            gate_in.append([aoi_out])
            gate_col.append(i)
            net_sinks.append([])
            net_sinks[aoi_out].append((index, 0))
        else:
            gate_cell.append(and2)
            gate_in.append([p_up, g_lo])
            gate_col.append(i)
            net_sinks.append([])
            net_sinks[p_up].append((index, 0))
            net_sinks[g_lo].append((index, 1))
            and_out = npi + index
            index += 1
            gate_cell.append(or2)
            gate_in.append([g_up, and_out])
            gate_col.append(i)
            net_sinks.append([])
            net_sinks[g_up].append((index, 0))
            net_sinks[and_out].append((index, 1))
        row_g[j] = npi + index
        index += 1
        if needs[i][j]:
            p_lo = p[k - 1][j]
            gate_cell.append(and2)
            gate_in.append([p_up, p_lo])
            gate_col.append(i)
            net_sinks.append([])
            net_sinks[p_up].append((index, 0))
            net_sinks[p_lo].append((index, 1))
            row_p[j] = npi + index
            index += 1
    ln.po_net.append(p[0][0])  # s[0]
    for i in range(1, n):
        p_i, carry = p[i][i], g[i - 1][0]
        gate_cell.append(xor2)
        gate_in.append([p_i, carry])
        gate_col.append(i)
        net_sinks.append([])
        net_sinks[p_i].append((index, 0))
        net_sinks[carry].append((index, 1))
        ln.po_net.append(npi + index)  # s[i]
        index += 1
    ln.po_net.append(g[n - 1][0])  # cout
    return ln


def _map_xor_or_lean(graph, tables, ops, circuit_type) -> _LeanNetlist:
    """Shared body of the gray (XOR-prefix) and lzd (OR-prefix) mappings."""
    n = graph.n
    ln = _LeanNetlist(n)
    gate_cell, gate_in, gate_col = ln.gate_cell, ln.gate_in, ln.gate_col
    net_sinks = ln.net_sinks

    def add(cell: int, inputs: List[int], column: int) -> int:
        index = len(gate_cell)
        gate_cell.append(cell)
        gate_in.append(inputs)
        gate_col.append(column)
        net_sinks.append([])
        for pin, net in enumerate(inputs):
            net_sinks[net].append((index, pin))
        return n + index

    op_cell = tables.smallest["XOR2" if circuit_type == "gray" else "OR2"]
    value = [[0] * n for _ in range(n)]  # value[i][j] = net of span (i, j)
    for i in range(n):
        value[i][i] = n - 1 - i
    for _lev, i, j, k in ops:
        value[i][j] = add(op_cell, [value[i][k], value[k - 1][j]], i)
    if circuit_type == "gray":
        for i in range(n):
            ln.po_net.append(value[i][0])  # bin[n-1-i]
        return ln
    and2, inv = tables.smallest["AND2"], tables.smallest["INV"]
    ln.po_net.append(value[0][0])  # hot[0]
    prev_flag = value[0][0]
    for i in range(1, n):
        flag = value[i][0]
        not_prev = add(inv, [prev_flag], i)
        ln.po_net.append(add(and2, [flag, not_prev], i))  # hot[i]
        prev_flag = flag
    ln.po_net.append(add(inv, [value[n - 1][0]], n - 1))  # all_zero
    return ln


def _buffer_candidates(ln: _LeanNetlist, max_fanout: int) -> List[int]:
    """Nets over the fanout limit, ascending (C-speed length scan)."""
    lengths = np.fromiter(map(len, ln.net_sinks), np.int64, count=ln.num_nets)
    return np.flatnonzero(lengths > max_fanout).tolist()


def _buffer_fanout_lean(ln: _LeanNetlist, tables: _LibraryTables, max_fanout: int) -> None:
    """Mirror of ``physical.buffer_fanout`` over the lean structure."""
    if max_fanout < 2:
        raise ValueError("max_fanout must be >= 2")
    caps = tables.cap.tolist()  # python floats: exact values, faster sums
    buf_pairs = list(zip(tables.buf_ids, tables.buf_caps))
    gate_cell, gate_in, gate_col = ln.gate_cell, ln.gate_in, ln.gate_col
    net_sinks = ln.net_sinks
    npi = ln.num_pis
    # Scalar buffer_fanout scans every net id descending (pop from the
    # end of range(num_nets)); nets at or under the limit are no-ops, so
    # pre-filtering them preserves the processing order exactly.  A net
    # can only *lose* sinks, so the filter stays complete.
    queue = _buffer_candidates(ln, max_fanout)
    while queue:
        net = queue.pop()
        sinks = list(net_sinks[net])
        if len(sinks) <= max_fanout:
            continue
        groups = [sinks[k : k + max_fanout] for k in range(0, len(sinks), max_fanout)]
        for group in groups:
            load = sum(caps[gate_cell[g]] for g, _ in group)
            cell_id = buf_pairs[0][0]
            for cell_id, cap in buf_pairs:
                if cap * 4.0 >= load:
                    break
            sink_columns = [
                gate_col[g] for g, _ in group if gate_col[g] is not None
            ]
            centroid = sum(sink_columns) / len(sink_columns) if sink_columns else None
            index = len(gate_cell)
            gate_cell.append(cell_id)
            gate_in.append([net])
            gate_col.append(centroid)
            net_sinks.append([])
            net_sinks[net].append((index, 0))
            buf_out = npi + index
            ln.num_buffers += 1
            for sink in group:
                net_sinks[net].remove(sink)
                gate_index, pin = sink
                gate_in[gate_index][pin] = buf_out
                net_sinks[buf_out].append(sink)
        if len(net_sinks[net]) > max_fanout:
            queue.append(net)


def _build_lean(graph, tables, circuit_type, options, levels) -> _LeanNetlist:
    ops, needs = _span_plan(graph, levels)
    if circuit_type == "adder":
        ln = _map_adder_lean(graph, tables, ops, needs, options.mapping_style)
    else:
        ln = _map_xor_or_lean(graph, tables, ops, circuit_type)
    _buffer_fanout_lean(ln, tables, options.max_fanout)
    return ln


# ----------------------------------------------------------------------
# Flat population form (shared by the lean and the array builders)
# ----------------------------------------------------------------------
class _FlatPopulation:
    """A population's structure as flat arrays, one step before packing.

    ``flat_pins`` holds *graph-local* net ids (gate ``i`` of a graph
    drives net ``num_pis + i``); ``gate_col`` uses NaN where a column
    hint is missing (the reference flow's ``None``).  This is the common
    input format of :class:`_PackedBatch`: the lean per-graph builders
    flatten into it, and the incremental pipeline's vectorized builder
    (:mod:`repro.synth.incremental`) emits it directly.
    """

    __slots__ = (
        "gate_counts", "gate_cell", "pin_counts", "flat_pins", "gate_col",
        "po_net", "num_buffers",
    )

    def __init__(self, gate_counts, gate_cell, pin_counts, flat_pins,
                 gate_col, po_net, num_buffers):
        self.gate_counts = gate_counts
        self.gate_cell = gate_cell
        self.pin_counts = pin_counts
        self.flat_pins = flat_pins
        self.gate_col = gate_col
        self.po_net = po_net
        self.num_buffers = num_buffers


def _flatten_leans(leans: List[_LeanNetlist], template: _IOTemplate) -> _FlatPopulation:
    gate_counts = np.array([len(ln.gate_cell) for ln in leans], dtype=np.int64)
    G = int(gate_counts.sum())
    gate_cell = np.fromiter(
        chain.from_iterable(ln.gate_cell for ln in leans), np.int64, count=G
    )
    pin_counts = np.fromiter(
        chain.from_iterable(map(len, ln.gate_in) for ln in leans),
        np.int64, count=G,
    )
    flat_pins = np.fromiter(
        chain.from_iterable(chain.from_iterable(ln.gate_in) for ln in leans),
        np.int64, count=int(pin_counts.sum()),
    )
    column_parts = []
    for ln in leans:
        try:
            column_parts.append(np.asarray(ln.gate_col, dtype=np.float64))
        except TypeError:  # a None centroid (no sink columns): rare
            column_parts.append(
                np.array(
                    [np.nan if col is None else col for col in ln.gate_col],
                    dtype=np.float64,
                )
            )
    gate_col = (
        np.concatenate(column_parts) if column_parts else np.empty(0)
    )
    po_count = len(template.po_names)
    po_net = np.empty(len(leans) * po_count, dtype=np.int64)
    for b, ln in enumerate(leans):
        po_net[b * po_count : (b + 1) * po_count] = ln.po_net
    num_buffers = np.array([ln.num_buffers for ln in leans], dtype=np.int64)
    return _FlatPopulation(
        gate_counts, gate_cell, pin_counts, flat_pins, gate_col, po_net,
        num_buffers,
    )


# ----------------------------------------------------------------------
# Batch packing + vectorized geometry
# ----------------------------------------------------------------------
class _PackedBatch:
    """All netlists of a population, flattened into index arrays.

    Gates and nets get *flat* ids across the batch (per-graph offsets);
    every padded slot points at the trailing dummy gate (cell cap 0) or
    dummy net (arrival 0), so sequential accumulation over pad columns
    is a numeric no-op.  Placement, per-net wirelength and the logic-
    depth schedule are derived here with batch-wide array arithmetic.
    """

    def __init__(self, flat: _FlatPopulation, tables: _LibraryTables,
                 library: CellLibrary, template: _IOTemplate):
        self.tables = tables
        self.tau = library.tau_ns
        gate_counts = flat.gate_counts
        B = len(gate_counts)
        self.B = B
        npi = template.num_pis
        net_counts = gate_counts + npi
        self.gate_off = np.concatenate([[0], np.cumsum(gate_counts)])
        self.net_off = np.concatenate([[0], np.cumsum(net_counts)])
        G = int(self.gate_off[-1])
        N = int(self.net_off[-1])
        self.G, self.N = G, N
        self.num_buffers = flat.num_buffers
        self.gate_graph = np.repeat(np.arange(B), gate_counts)
        self.net_graph = np.repeat(np.arange(B), net_counts)

        # --- flat gate arrays (one trailing dummy slot in gate_cell) ---
        gate_cell = np.empty(G + 1, dtype=np.int64)
        gate_cell[:G] = flat.gate_cell
        gate_cell[G] = tables.dummy
        # gate g of graph b drives net net_off[b] + npi + local_index.
        gate_out = (
            np.arange(G) - self.gate_off[self.gate_graph]
            + self.net_off[self.gate_graph] + npi
        )
        net_driver = np.full(N + 1, -1, dtype=np.int64)
        net_driver[gate_out] = np.arange(G)

        pin_counts = flat.pin_counts
        total_pins = int(pin_counts.sum())
        pin_gate = np.repeat(np.arange(G), pin_counts)
        flat_pins = flat.flat_pins + self.net_off[self.gate_graph[pin_gate]]
        pin_slot = np.arange(total_pins) - np.repeat(
            np.concatenate([[0], np.cumsum(pin_counts)[:-1]]), pin_counts
        )
        gate_in = np.full((G, 3), N, dtype=np.int64)  # pad = dummy net
        gate_in[pin_gate, pin_slot] = flat_pins

        # --- sink CSR (per net, in sink-list order) --------------------
        # Every net_sinks list is ascending in (gate, pin) — mapping
        # appends gates in creation order, buffering appends only newer
        # gates and removals keep the rest ordered (same invariant holds
        # in the reference Netlist).  So grouping the pin arrays by net
        # with a stable sort reproduces the sink-list order exactly.
        sink_order = np.argsort(flat_pins, kind="stable")
        sink_counts = np.bincount(flat_pins, minlength=N)[:N]
        max_sinks = int(sink_counts.max()) if N else 0
        sink_net = np.repeat(np.arange(N), sink_counts)
        sink_slot = np.arange(total_pins) - np.repeat(
            np.concatenate([[0], np.cumsum(sink_counts)[:-1]]), sink_counts
        )
        net_sink_gate = np.full((N, max_sinks), G, dtype=np.int64)  # pad = dummy
        net_sink_gate[sink_net, sink_slot] = pin_gate[sink_order]

        # --- logic depth by longest-path relaxation --------------------
        # place_datapath's level: max over driven fanins of depth+1.
        # Iterating to fixpoint converges in max-depth steps and matches
        # the topological computation exactly (integer max/add).  The
        # dummy slot holds -1 so undriven pins contribute max(-1)+1 = 0
        # without masking.
        pin_driver = net_driver[gate_in]  # (G, 3); -1 for PI / pad
        driver0 = np.where(pin_driver[:, 0] >= 0, pin_driver[:, 0], G)
        driver1 = np.where(pin_driver[:, 1] >= 0, pin_driver[:, 1], G)
        driver2 = np.where(pin_driver[:, 2] >= 0, pin_driver[:, 2], G)
        depth = np.empty(G + 1, dtype=np.int64)
        depth[:G] = 0
        depth[G] = -1
        while True:
            cand = np.maximum(
                np.maximum(depth[driver0], depth[driver1]), depth[driver2]
            )
            cand += 1
            if np.array_equal(cand, depth[:G]):
                break
            depth[:G] = cand
        self.gate_level = depth[:G]

        # --- placement (x, y) and static wirelengths -------------------
        pitch, row_height = library.bit_pitch_um, library.row_height_um
        nan_cols = np.isnan(flat.gate_col) if G else np.zeros(0, dtype=bool)
        x = np.where(nan_cols, 0.0, flat.gate_col) * pitch if G else np.empty(0)
        y = self.gate_level * row_height
        if nan_cols.any():
            self._resolve_fallback_columns(
                flat, gate_in, np.flatnonzero(nan_cols), template, pitch, x
            )
        x_ext = np.append(x, 0.0)
        y_ext = np.append(y, 0.0)

        pi_col = np.asarray(template.pi_col, dtype=np.float64)
        x0 = np.empty(N)
        y0 = np.zeros(N)
        for b in range(B):
            noff = int(self.net_off[b])
            x0[noff : noff + npi] = pi_col * pitch
        driven = net_driver[:N] >= 0
        drv = np.where(driven, net_driver[:N], 0)
        x0 = np.where(driven, x[drv], x0)
        y0 = np.where(driven, y[drv], y0)
        # wire_length: per-sink |dx| + |dy| summed in sink-list order.
        wire = np.zeros(N)
        valid = net_sink_gate < G
        for slot in range(max_sinks):
            sg = net_sink_gate[:, slot]
            term = np.abs(x_ext[sg] - x0) + np.abs(y_ext[sg] - y0)
            wire = wire + np.where(valid[:, slot], term, 0.0)
        self.wire_lengths = wire
        # net_load's `wire_length * wire_cap_per_um` product, precomputed.
        self.wire_terms = wire * library.wire_cap_per_um

        # --- PI arrivals, POs ------------------------------------------
        net_pi_arrival = np.zeros(N)
        pi_arr = np.asarray(template.pi_arrival)
        po_count = len(template.po_names)
        net_po_count = np.zeros(N, dtype=np.int64)
        for b in range(B):
            noff = int(self.net_off[b])
            net_pi_arrival[noff : noff + npi] = pi_arr
        po_net = flat.po_net + np.repeat(self.net_off[:B], po_count)
        np.add.at(net_po_count, po_net, 1)
        self.net_pi_arrival = net_pi_arrival
        self.net_po_count = net_po_count
        self.max_po_mult = int(net_po_count.max()) if N else 0
        self.po_net = po_net
        self.po_margin = np.tile(np.asarray(template.po_margin), B)
        self.po_count = po_count
        self.po_names = template.po_names

        self.gate_cell = gate_cell
        # Input caps by gate (dummy 0.0), maintained through cell swaps —
        # a pure gather cache, so reads equal tables.cap[gate_cell[...]].
        self.cap_gate = tables.cap[gate_cell]
        self.gate_out = gate_out
        self.gate_in = gate_in
        self.net_sink_gate = net_sink_gate
        self.net_driver = net_driver
        self.max_sinks = max_sinks
        self._all_nets = np.arange(N)

        # Level-synchronous schedule: gates grouped by logic level.
        self.level_order = np.argsort(self.gate_level, kind="stable")
        sorted_levels = self.gate_level[self.level_order]
        max_level = int(self.gate_level.max()) if G else -1
        level_bounds = np.searchsorted(sorted_levels, np.arange(max_level + 2))
        self.level_idx = [
            self.level_order[level_bounds[level] : level_bounds[level + 1]]
            for level in range(max_level + 1)
        ]
        # PO load contributions, one layer per multiplicity step (net_load
        # adds PO_LOAD_FF once per primary output on the net).
        self.po_add = [
            np.where(net_po_count > repeat, PO_LOAD_FF, 0.0)
            for repeat in range(self.max_po_mult)
        ]

    # ------------------------------------------------------------------
    def _resolve_fallback_columns(self, flat, gate_in, fallback, template, pitch, x):
        """placement._resolve_column's fanin-centroid fallback.

        Only reachable for gates without a mapping/centroid column hint
        (NaN in the flat form), which the builders never produce in
        practice — kept for strict parity with the reference placer.
        """
        npi = template.num_pis
        N = self.N
        memo: Dict[int, float] = {}

        def resolve(flat_gate: int) -> float:
            if flat_gate in memo:
                return memo[flat_gate]
            column = flat.gate_col[flat_gate]
            if not np.isnan(column):
                memo[flat_gate] = float(column)
                return memo[flat_gate]
            memo[flat_gate] = 0.0
            b = int(self.gate_graph[flat_gate])
            goff, noff = int(self.gate_off[b]), int(self.net_off[b])
            cols = [
                resolve(goff + (net - noff - npi)) if net - noff >= npi
                else float(template.pi_col[net - noff])
                for net in gate_in[flat_gate].tolist()
                if net != N  # pad slots, not real pins
            ]
            memo[flat_gate] = sum(cols) / len(cols) if cols else 0.0
            return memo[flat_gate]

        for flat_gate in fallback.tolist():
            x[flat_gate] = resolve(flat_gate) * pitch

    # ------------------------------------------------------------------
    def net_loads(self, nets: np.ndarray) -> np.ndarray:
        """Capacitive load of ``nets``, in ``net_load``'s accumulation
        order: sink pins (sink-list order), wire term, PO loads."""
        load = np.zeros(len(nets))
        sink_rows = self.net_sink_gate[nets]
        for slot in range(self.max_sinks):
            load = load + self.cap_gate[sink_rows[:, slot]]
        load = load + self.wire_terms[nets]
        for layer in self.po_add:
            load = load + layer[nets]
        return load

    def sta(self):
        """Batched mirror of ``timing.analyze_timing``.

        Returns ``(arrival, gate_delay, delay_ns, crit_po)`` where
        ``arrival`` is flat over nets (+1 dummy slot) and ``delay_ns`` /
        ``crit_po`` are per graph.
        """
        tables = self.tables
        cells = self.gate_cell[: self.G]
        loads = self.net_loads(self._all_nets)
        gate_load = loads[self.gate_out]
        caps = self.cap_gate[: self.G]
        # Mirror of Cell.delay: tau * (p + g * (load / cap)).
        gate_delay = self.tau * (
            tables.p[cells] + tables.g[cells] * (gate_load / caps)
        )
        arrival = np.append(self.net_pi_arrival, 0.0)
        for idx in self.level_idx:
            worst = arrival[self.gate_in[idx]].max(axis=1)
            # analyze_timing starts its fanin scan at worst = 0.0.
            np.maximum(worst, 0.0, out=worst)
            arrival[self.gate_out[idx]] = worst + gate_delay[idx]
        endpoints = arrival[self.po_net] + self.po_margin
        # Per-graph argmax == the scalar strict-`>` scan (first max wins).
        crit_local = np.argmax(endpoints.reshape(self.B, self.po_count), axis=1)
        crit_po = np.arange(self.B) * self.po_count + crit_local
        delay_ns = endpoints[crit_po]
        return arrival, gate_delay, delay_ns, crit_po

    def resta(self, arrival: np.ndarray, gate_delay: np.ndarray,
              dirty_gates: np.ndarray):
        """Batched mirror of ``timing.retime``: cone-limited delta STA.

        Starting from a propagated ``(arrival, gate_delay)`` state (not
        modified), re-evaluates only the ``dirty_gates`` frontier and
        whatever their arrival changes reach, cutting propagation where
        a recomputed arrival is bitwise equal to the stored one.  Each
        re-evaluated gate performs exactly :meth:`sta`'s float
        operations, so the returned state matches a full pass bit for
        bit — the batch analogue of the scalar worklist STA.
        """
        tables = self.tables
        arrival = arrival.copy()
        gate_delay = gate_delay.copy()
        G = self.G
        levels = self.gate_level
        num_levels = len(self.level_idx)
        # Push-based worklist: a gate re-evaluates iff it is in the
        # frontier or a fanin arrival changed; changed arrivals mark
        # their sink gates (always at strictly later levels), so an
        # ascending level sweep touching only marked gates is exact.
        pending = np.zeros(G, dtype=bool)
        pending[dirty_gates] = True
        level_count = np.bincount(levels[dirty_gates], minlength=num_levels)
        for level, idx in enumerate(self.level_idx):
            if not level_count[level]:
                continue
            sel = idx[pending[idx]]
            cells = self.gate_cell[sel]
            load = self.net_loads(self.gate_out[sel])
            delay = self.tau * (
                tables.p[cells] + tables.g[cells] * (load / self.cap_gate[sel])
            )
            gate_delay[sel] = delay
            worst = arrival[self.gate_in[sel]].max(axis=1)
            np.maximum(worst, 0.0, out=worst)
            new_arrival = worst + delay
            out = self.gate_out[sel]
            changed = new_arrival != arrival[out]
            arrival[out] = new_arrival
            if changed.any():
                sinks = self.net_sink_gate[out[changed]].ravel()
                sinks = sinks[sinks < G]
                fresh = sinks[~pending[sinks]]
                if len(fresh):
                    pending[fresh] = True
                    # fresh may repeat a gate (sink of two changed nets);
                    # the overcount is harmless — level_count only gates
                    # the skip, and pending[idx] is exact.
                    level_count += np.bincount(
                        levels[fresh], minlength=num_levels
                    )
        endpoints = arrival[self.po_net] + self.po_margin
        crit_local = np.argmax(endpoints.reshape(self.B, self.po_count), axis=1)
        crit_po = np.arange(self.B) * self.po_count + crit_local
        delay_ns = endpoints[crit_po]
        return arrival, gate_delay, delay_ns, crit_po

    def trace_paths(self, crit_po: np.ndarray, arrival: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`trace_path` over several graphs in lockstep.

        Returns a padded ``(len(crit_po), max_len)`` matrix of gate
        indices, input-side first, -1 past each path's end.  Each row
        equals the scalar walk: the next net is the first strict-max
        arrival over the gate's real pins (dummy pads masked to -inf,
        ``np.argmax``'s first-wins tie-break is the scalar scan's).
        """
        k = len(crit_po)
        net = self.po_net[crit_po]
        alive = np.ones(k, dtype=bool)
        rows = np.arange(k)
        gate_in, net_driver = self.gate_in, self.net_driver
        cols: List[np.ndarray] = []
        # Sentinel: the dummy net's arrival reads as -inf for the walk,
        # so pad pins lose every argmax without a masking pass.
        saved_dummy = arrival[self.N]
        arrival[self.N] = -np.inf
        while True:
            gate = net_driver[net]
            alive &= gate >= 0
            if not alive.any():
                break
            gate = np.where(alive, gate, 0)
            cols.append(np.where(alive, gate, -1))
            pins = gate_in[gate]
            best = np.argmax(arrival[pins], axis=1)
            net = np.where(alive, pins[rows, best], -1)
        arrival[self.N] = saved_dummy
        if not cols:
            return np.full((k, 0), -1, dtype=np.int64)
        mat = np.stack(cols, axis=1)  # walk order: output-side first
        lengths = (mat >= 0).sum(axis=1)
        # Reverse each row's valid prefix (paths are input-side first).
        take = lengths[:, None] - 1 - np.arange(mat.shape[1])[None, :]
        return np.where(take >= 0, mat[rows[:, None], np.maximum(take, 0)], -1)

    def trace_path(self, crit_po: int, arrival: np.ndarray) -> List[int]:
        """Mirror of analyze_timing's backwards critical-path walk."""
        path: List[int] = []
        net = int(self.po_net[crit_po])
        N = self.N
        gate_in, net_driver = self.gate_in, self.net_driver
        while net >= 0:
            gate = int(net_driver[net])
            if gate < 0:
                break
            path.append(gate)
            # First strict max wins over the pin order, like the scalar
            # walk's Python max (pads point at the dummy net, skipped).
            best = -1
            best_arrival = 0.0
            for n in gate_in[gate].tolist():
                if n == N:
                    continue
                a = arrival[n]
                if best < 0 or a > best_arrival:
                    best, best_arrival = n, a
            net = best
        path.reverse()
        return path


# ----------------------------------------------------------------------
# Batched sizing (mirror of physical.size_gates, batch-lockstep)
# ----------------------------------------------------------------------
def _size_gates_batched(pb: _PackedBatch, options: SynthesisOptions,
                        dirty_sta: bool = False):
    """Run every graph's sizing loop simultaneously.

    Each pass mirrors ``size_gates`` decision for decision: critical-path
    gates are visited in stable descending-delay order *one position per
    vectorized step* (so earlier swaps feed later gains, as in the scalar
    loop), area recovery is one vectorized sweep against the pass-entry
    report, and regression rollback/early-stop happen per graph.

    With ``dirty_sta`` the accept/rollback timing check runs through
    :meth:`_PackedBatch.resta` over the frontier of swapped gates (plus
    their fanin drivers, whose loads changed) instead of a full
    :meth:`_PackedBatch.sta` pass — bit-identical, and the main wall-
    clock saving of the incremental pipeline.  The initial STA is always
    a full pass.
    """
    tables = pb.tables
    arrival, gate_delay, delay_ns, crit_po = pb.sta()
    if options.sizing_passes <= 0:
        return delay_ns, crit_po
    path_mat = pb.trace_paths(crit_po, arrival)
    active = np.ones(pb.B, dtype=bool)
    graph_ids = np.arange(pb.B)

    for _ in range(options.sizing_passes):
        if not active.any():
            break
        snapshot = pb.gate_cell[: pb.G].copy()
        changed = np.zeros(pb.B, dtype=bool)
        swapped_parts: List[np.ndarray] = []

        # ---- critical-path upsizing, worst offenders first ------------
        # Stable descending-delay sort per row == the scalar's
        # sorted(path, key=-delay); pads get key +inf and land last.
        key = np.where(path_mat >= 0, -gate_delay[path_mat], np.inf)
        path_arr = np.take_along_axis(
            path_mat, np.argsort(key, axis=1, kind="stable"), axis=1
        )
        path_arr[~active] = -1
        lengths = (path_arr >= 0).sum(axis=1)
        max_len = int(lengths.max()) if len(lengths) else 0
        for k in range(max_len):
            col = path_arr[:, k]
            sel = col >= 0
            if not sel.any():
                continue
            gates = col[sel]
            cur = pb.gate_cell[gates]
            up = tables.up[cur]
            has_up = up >= 0
            up_safe = np.where(has_up, up, cur)
            load = pb.net_loads(pb.gate_out[gates])
            cur_cap = tables.cap[cur]
            big_cap = tables.cap[up_safe]
            # _upsizing_gain: bigger.delay(load) - cell.delay(load) ...
            own_delta = pb.tau * (
                tables.p[up_safe] + tables.g[up_safe] * (load / big_cap)
            ) - pb.tau * (tables.p[cur] + tables.g[cur] * (load / cur_cap))
            cap_delta = big_cap - cur_cap
            # Fanin slowdown, all three pins at once; summing the pad
            # zeros left to right matches the scalar pin loop exactly.
            driver = pb.net_driver[pb.gate_in[gates]]
            has_driver = driver >= 0
            driver_cell = pb.gate_cell[np.where(has_driver, driver, 0)]
            term = (
                tables.tau_g[driver_cell] * cap_delta[:, None]
                / tables.cap[driver_cell]
            )
            fanin_delta = np.where(has_driver, term, 0.0).sum(axis=1)
            apply = has_up & ((own_delta + fanin_delta) < -1e-6)
            if apply.any():
                swapped = gates[apply]
                pb.gate_cell[swapped] = up[apply]
                pb.cap_gate[swapped] = tables.cap[up[apply]]
                changed[graph_ids[sel][apply]] = True
                swapped_parts.append(swapped)

        # ---- slack-driven area recovery -------------------------------
        if options.area_recovery:
            cells = pb.gate_cell[: pb.G]
            down = tables.down[cells]
            threshold = options.slack_threshold * delay_ns
            slack = delay_ns[pb.gate_graph] - arrival[pb.gate_out]
            shrink = (
                active[pb.gate_graph]
                & (tables.drive[cells] != 1)
                & (slack > threshold[pb.gate_graph])
                & (down >= 0)
            )
            if shrink.any():
                idx = np.flatnonzero(shrink)
                pb.gate_cell[idx] = down[idx]
                pb.cap_gate[idx] = tables.cap[down[idx]]
                changed[np.unique(pb.gate_graph[idx])] = True
                swapped_parts.append(idx)

        # ---- accept / rollback / stop ---------------------------------
        still = active & changed
        if not still.any():
            break
        if dirty_sta:
            swapped = np.unique(np.concatenate(swapped_parts))
            fanin = pb.net_driver[pb.gate_in[swapped].ravel()]
            dirty = np.unique(np.concatenate([swapped, fanin[fanin >= 0]]))
            new_arrival, new_gate_delay, new_delay, new_crit = pb.resta(
                arrival, gate_delay, dirty
            )
        else:
            new_arrival, new_gate_delay, new_delay, new_crit = pb.sta()
        regressed = still & (new_delay > delay_ns + 1e-12)
        if regressed.any():
            mask = regressed[pb.gate_graph]
            pb.gate_cell[: pb.G][mask] = snapshot[mask]
            pb.cap_gate[: pb.G][mask] = tables.cap[snapshot[mask]]
        accepted = still & ~regressed
        delay_ns = np.where(accepted, new_delay, delay_ns)
        crit_po = np.where(accepted, new_crit, crit_po)
        arrival = np.where(
            np.append(accepted[pb.net_graph], False), new_arrival, arrival
        )
        gate_delay = np.where(accepted[pb.gate_graph], new_gate_delay, gate_delay)
        acc = np.flatnonzero(accepted)
        if len(acc):
            traced = pb.trace_paths(crit_po[acc], arrival)
            path_mat = np.full((pb.B, traced.shape[1]), -1, dtype=np.int64)
            path_mat[acc] = traced
        active = accepted

    return delay_ns, crit_po


# ----------------------------------------------------------------------
# Result extraction (shared with repro.synth.incremental)
# ----------------------------------------------------------------------
def _extract_results(
    pb: _PackedBatch, delay_ns: np.ndarray, crit_po: np.ndarray
) -> List[PhysicalResult]:
    results: List[PhysicalResult] = []
    tables = pb.tables
    function_names = tables.function_names
    num_functions = len(function_names)
    cells_flat = pb.gate_cell[: pb.G]
    gate_areas = tables.area[cells_flat]
    histograms = np.bincount(
        tables.function_id[cells_flat]
        + np.repeat(np.arange(pb.B), np.diff(pb.gate_off)) * num_functions,
        minlength=pb.B * num_functions,
    ).reshape(pb.B, num_functions)
    for b in range(pb.B):
        goff, gend = int(pb.gate_off[b]), int(pb.gate_off[b + 1])
        noff, nend = int(pb.net_off[b]), int(pb.net_off[b + 1])
        # np.add.accumulate is a strict left-to-right fold (unlike
        # np.sum / reduceat, which regroup pairwise), so its last element
        # reproduces Netlist.area() / total_wire_length() bit for bit.
        area = float(np.add.accumulate(gate_areas[goff:gend])[-1])
        wirelength = float(np.add.accumulate(pb.wire_lengths[noff:nend])[-1])
        histogram = histograms[b]
        results.append(
            PhysicalResult(
                area_um2=area,
                delay_ns=float(delay_ns[b]),
                num_gates=gend - goff,
                num_buffers=int(pb.num_buffers[b]),
                wirelength_um=wirelength,
                cell_counts={
                    function_names[i]: int(count)
                    for i, count in enumerate(histogram[:num_functions])
                    if count
                },
                critical_output=pb.po_names[int(crit_po[b]) % pb.po_count],
            )
        )
    return results


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def synthesize_many(
    graphs: Sequence[PrefixGraph],
    library: CellLibrary,
    circuit_type: str = "adder",
    io_timing: Optional[IOTiming] = None,
    options: Optional[SynthesisOptions] = None,
) -> List[PhysicalResult]:
    """Synthesize a population; bit-identical to the per-graph flow."""
    graphs = list(graphs)
    if not graphs:
        return []
    io_timing = io_timing or IOTiming()
    options = options or SynthesisOptions()
    tables = _tables_for(library)
    template = _IOTemplate(graphs[0].n, circuit_type, io_timing)
    level_stack = batch_levels(stacked_grids(graphs))
    leans = [
        _build_lean(graph, tables, circuit_type, options, level_stack[b])
        for b, graph in enumerate(graphs)
    ]
    pb = _PackedBatch(_flatten_leans(leans, template), tables, library, template)
    delay_ns, crit_po = _size_gates_batched(pb, options)
    return _extract_results(pb, delay_ns, crit_po)
