"""Physical synthesis: buffering + gate sizing on top of STA.

This is the OpenPhySyn stand-in (see DESIGN.md).  Given a mapped netlist it
runs the classic lightweight optimization loop:

1. **Fanout buffering** — nets driving more than ``max_fanout`` sinks get a
   buffer tree (built greedily over sink groups), which is what rescues
   high-fanout structures like Sklansky from quadratic slowdown.
2. **Critical-path sizing** — greedy upsizing of gates on the critical path
   when the logical-effort model predicts a net win (own delay drop minus
   the extra delay induced on the fanin driver by the larger pin).
3. **Area recovery** — downsizing of gates with large positive slack.

The loop is deterministic, so the simulator built on it is a pure function
of the prefix graph — a property the optimizer's caching relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..prefix.graph import PrefixGraph
from .library import CellLibrary
from .mapping import map_prefix_graph
from .netlist import Netlist
from .placement import place_datapath, total_wire_length
from .timing import (
    IOTiming,
    TimingReport,
    analyze_timing,
    dirty_after_swaps,
    extract_report,
    net_load,
    retime,
    timing_state,
)

__all__ = ["SynthesisOptions", "PhysicalResult", "buffer_fanout", "size_gates", "synthesize"]


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the physical synthesis flow.

    The defaults are the search-time flow; the commercial-tool emulation
    overrides them (more effort, different thresholds) to create the
    Fig. 6 domain gap.
    """

    max_fanout: int = 4
    sizing_passes: int = 6
    area_recovery: bool = True
    slack_threshold: float = 0.30  # fraction of delay above which to downsize
    mapping_style: str = "aoi"


@dataclass
class PhysicalResult:
    """Outcome of synthesizing one circuit."""

    area_um2: float
    delay_ns: float
    num_gates: int
    num_buffers: int
    wirelength_um: float
    cell_counts: Dict[str, int]
    critical_output: str

    def __repr__(self) -> str:
        return (
            f"PhysicalResult(area={self.area_um2:.1f}um2, delay={self.delay_ns:.3f}ns, "
            f"gates={self.num_gates})"
        )


def buffer_fanout(netlist: Netlist, max_fanout: int = 4) -> int:
    """Insert buffer trees on nets whose sink count exceeds ``max_fanout``.

    Returns the number of buffers inserted.  Buffer drive strength is
    chosen from the load it must drive.  Primary-output sinks are never
    rebuffered (outputs must stay connected to their logical net).
    """
    if max_fanout < 2:
        raise ValueError("max_fanout must be >= 2")
    buf_variants = netlist.library.variants("BUF")
    inserted = 0
    queue = list(range(len(netlist.net_names)))
    while queue:
        net = queue.pop()
        sinks = list(netlist.net_sinks[net])
        if len(sinks) <= max_fanout:
            continue
        # Move *every* sink behind a buffer; the net then drives only the
        # buffers.  If there are more than max_fanout buffers, the net is
        # re-queued and gets a second buffer level — fanout shrinks by a
        # factor of max_fanout per level, so this terminates.
        groups = [sinks[k : k + max_fanout] for k in range(0, len(sinks), max_fanout)]
        for group in groups:
            load = sum(netlist.gates[g].cell.input_cap for g, _ in group)
            cell = buf_variants[0]
            for variant in buf_variants:
                cell = variant
                if variant.input_cap * 4.0 >= load:
                    break
            sink_columns = [
                netlist.gates[g].column for g, _ in group
                if netlist.gates[g].column is not None
            ]
            centroid = sum(sink_columns) / len(sink_columns) if sink_columns else None
            buf_out = netlist.add_gate(
                cell, [net], name=f"buf{len(netlist.gates)}", column=centroid
            )
            inserted += 1
            for sink in group:
                netlist.rewire_sink(net, sink, buf_out)
        if len(netlist.net_sinks[net]) > max_fanout:
            queue.append(net)
    return inserted


def _upsizing_gain(netlist: Netlist, gate_index: int, report: TimingReport) -> Tuple[float, Optional[int]]:
    """Predicted delay change (negative = good) from upsizing one step.

    Accounts for the gate's own speedup at constant load and the slowdown of
    each fanin driver due to the increased pin capacitance.
    """
    gate = netlist.gates[gate_index]
    bigger = netlist.library.resize(gate.cell, +1)
    if bigger is None:
        return 0.0, None
    tau = netlist.library.tau_ns
    load = net_load(netlist, gate.output)
    own_delta = bigger.delay(load, tau) - gate.cell.delay(load, tau)
    cap_delta = bigger.input_cap - gate.cell.input_cap
    fanin_delta = 0.0
    for net in gate.inputs:
        driver = netlist.net_driver[net]
        if driver >= 0:
            drv_cell = netlist.gates[driver].cell
            fanin_delta += tau * drv_cell.logical_effort * cap_delta / drv_cell.input_cap
    return own_delta + fanin_delta, gate_index


def size_gates(
    netlist: Netlist,
    io_timing: IOTiming,
    passes: int = 6,
    area_recovery: bool = True,
    slack_threshold: float = 0.30,
) -> TimingReport:
    """Iterative critical-path upsizing + slack-driven area recovery.

    Each pass is accepted only if it improves (or at least preserves) the
    critical delay; a regressing pass is rolled back and the loop stops,
    so the flow is monotone in delay and always terminates.
    """
    # One worklist-STA state carried across passes: each speculative pass
    # re-times only the fanout cones of the gates it actually swapped
    # (plus their fanin drivers, whose loads changed) instead of paying a
    # full-graph pass — bit-identical to re-analyzing from scratch, see
    # repro.synth.timing.retime.
    order = netlist.topological_order()
    state = retime(netlist, timing_state(netlist, io_timing), order=order)
    report = extract_report(netlist, state, io_timing)
    for _ in range(passes):
        snapshot = [gate.cell for gate in netlist.gates]
        swapped: List[int] = []
        # Upsize along the critical path, worst offenders first.
        path = sorted(
            report.critical_path,
            key=lambda g: -report.gate_delay_ns[g],
        )
        for gate_index in path:
            delta, target = _upsizing_gain(netlist, gate_index, report)
            if target is not None and delta < -1e-6:
                bigger = netlist.library.resize(netlist.gates[gate_index].cell, +1)
                netlist.swap_cell(gate_index, bigger)
                swapped.append(gate_index)
        if area_recovery:
            threshold = slack_threshold * report.delay_ns
            for gate in netlist.gates:
                if gate.cell.drive == 1:
                    continue
                if report.slack_ns(gate.output) > threshold:
                    smaller = netlist.library.resize(gate.cell, -1)
                    if smaller is not None:
                        netlist.swap_cell(gate.index, smaller)
                        swapped.append(gate.index)
        if not swapped:
            break
        new_state = retime(
            netlist,
            state.copy(),
            dirty_gates=dirty_after_swaps(netlist, swapped),
            order=order,
        )
        new_report = extract_report(netlist, new_state, io_timing)
        if new_report.delay_ns > report.delay_ns + 1e-12:
            # The greedy local model mispredicted: roll back and stop.
            for gate, cell in zip(netlist.gates, snapshot):
                gate.cell = cell
            break
        state, report = new_state, new_report
    return report


def synthesize(
    graph: PrefixGraph,
    library: CellLibrary,
    circuit_type: str = "adder",
    io_timing: Optional[IOTiming] = None,
    options: Optional[SynthesisOptions] = None,
) -> PhysicalResult:
    """Run the full flow: map -> place -> buffer -> size -> report."""
    io_timing = io_timing or IOTiming()
    options = options or SynthesisOptions()
    netlist = map_prefix_graph(graph, library, circuit_type, style=options.mapping_style)
    place_datapath(netlist)
    num_buffers = buffer_fanout(netlist, options.max_fanout)
    place_datapath(netlist)
    report = size_gates(
        netlist,
        io_timing,
        passes=options.sizing_passes,
        area_recovery=options.area_recovery,
        slack_threshold=options.slack_threshold,
    )
    return PhysicalResult(
        area_um2=netlist.area(),
        delay_ns=report.delay_ns,
        num_gates=len(netlist.gates),
        num_buffers=num_buffers,
        wirelength_um=total_wire_length(netlist),
        cell_counts=netlist.count_by_function(),
        critical_output=report.critical_output,
    )
