"""Standard-cell libraries for the synthesis flow.

The paper compiles netlists with the open 45 nm Nangate45 library (Sec. 5.1)
and, for the realistic experiment of Fig. 6, a proprietary 8 nm library.
Neither ships offline, so :func:`nangate45` models the public Nangate45
datasheet values (areas in um^2, unit-load delays via the logical-effort
model), and :func:`scaled_library` derives a technology-shrunk variant that
stands in for the 8 nm node (smaller area, faster tau, *different relative
gate costs*, which is what creates the paper's domain gap).

Delay model: a gate driving load ``C_out`` from a pin with input capacitance
``C_in`` has delay ``tau * (p + g * C_out / C_in)`` — the classic logical
effort formulation (Sutherland et al.), which is also what lightweight
physical synthesis tools use for sizing decisions.  Upsizing a cell (X2,
X4, ...) multiplies its input capacitance and area but lowers the effective
fanout ``h = C_out / C_in``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Cell", "CellLibrary", "nangate45", "scaled_library", "LIBRARIES", "LIBRARY_NAMES"]

#: Functions the mapper may instantiate, with their input pin counts.
FUNCTIONS: Dict[str, int] = {
    "INV": 1,
    "BUF": 1,
    "AND2": 2,
    "OR2": 2,
    "NAND2": 2,
    "NOR2": 2,
    "XOR2": 2,
    "XNOR2": 2,
    "AOI21": 3,
}


@dataclass(frozen=True)
class Cell:
    """One standard cell (a function at a drive strength)."""

    name: str  # e.g. "AND2_X2"
    function: str  # e.g. "AND2"
    drive: int  # 1, 2, 4, ...
    area: float  # um^2
    input_cap: float  # fF per input pin
    logical_effort: float  # dimensionless g
    intrinsic_delay: float  # parasitic p, in units of tau

    @property
    def num_inputs(self) -> int:
        return FUNCTIONS[self.function]

    def delay(self, load_ff: float, tau_ns: float) -> float:
        """Propagation delay in ns for a given output load."""
        h = load_ff / self.input_cap
        return tau_ns * (self.intrinsic_delay + self.logical_effort * h)


class CellLibrary:
    """A named set of cells plus technology constants.

    Attributes
    ----------
    tau_ns:
        Delay unit of the logical-effort model (ns).
    wire_cap_per_um:
        Interconnect capacitance (fF/um) used by the placement-aware wire
        model.
    bit_pitch_um / row_height_um:
        Geometry of the virtual datapath placement (one column per bit,
        one row per logic level).
    """

    def __init__(
        self,
        name: str,
        cells: Sequence[Cell],
        tau_ns: float,
        wire_cap_per_um: float,
        bit_pitch_um: float,
        row_height_um: float,
    ):
        self.name = name
        self.tau_ns = tau_ns
        self.wire_cap_per_um = wire_cap_per_um
        self.bit_pitch_um = bit_pitch_um
        self.row_height_um = row_height_um
        self._cells: Dict[str, Cell] = {c.name: c for c in cells}
        self._by_function: Dict[str, List[Cell]] = {}
        for cell in cells:
            self._by_function.setdefault(cell.function, []).append(cell)
        for variants in self._by_function.values():
            variants.sort(key=lambda c: c.drive)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}")

    def variants(self, function: str) -> List[Cell]:
        """All drive strengths of a function, ascending."""
        try:
            return list(self._by_function[function])
        except KeyError:
            raise KeyError(f"library {self.name!r} has no function {function!r}")

    def smallest(self, function: str) -> Cell:
        return self.variants(function)[0]

    def resize(self, cell: Cell, step: int) -> Optional[Cell]:
        """The next cell ``step`` drive positions up (+) or down (-), if any."""
        variants = self.variants(cell.function)
        idx = variants.index(cell) + step
        if 0 <= idx < len(variants):
            return variants[idx]
        return None

    def functions(self) -> List[str]:
        return sorted(self._by_function)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, {len(self._cells)} cells)"


def _expand_drives(
    function: str,
    base_area: float,
    base_cap: float,
    logical_effort: float,
    intrinsic: float,
    drives: Sequence[int] = (1, 2, 4, 8),
) -> List[Cell]:
    """Generate X1..X8 variants: area and cap scale with drive, the
    intrinsic delay grows slightly (longer internal wires in wide cells)."""
    cells = []
    for drive in drives:
        cells.append(
            Cell(
                name=f"{function}_X{drive}",
                function=function,
                drive=drive,
                area=round(base_area * (0.62 + 0.38 * drive), 4),
                input_cap=base_cap * drive,
                logical_effort=logical_effort,
                intrinsic_delay=intrinsic * (1.0 + 0.04 * (drive - 1)),
            )
        )
    return cells


def nangate45() -> CellLibrary:
    """A library modeled on Nangate 45 nm OpenCell datasheet values."""
    cells: List[Cell] = []
    #                      function  area    cap   g      p
    cells += _expand_drives("INV", 0.532, 1.00, 1.00, 1.00)
    cells += _expand_drives("BUF", 0.798, 1.05, 1.15, 2.00)
    cells += _expand_drives("NAND2", 0.798, 1.20, 1.33, 1.60)
    cells += _expand_drives("NOR2", 0.798, 1.25, 1.67, 1.90)
    cells += _expand_drives("AND2", 1.064, 1.15, 1.45, 2.60)
    cells += _expand_drives("OR2", 1.064, 1.20, 1.70, 2.90)
    cells += _expand_drives("XOR2", 1.596, 1.90, 2.55, 3.80)
    cells += _expand_drives("XNOR2", 1.596, 1.90, 2.55, 3.80)
    cells += _expand_drives("AOI21", 1.064, 1.35, 1.85, 2.30)
    return CellLibrary(
        name="nangate45",
        cells=cells,
        tau_ns=0.0125,
        wire_cap_per_um=0.16,
        bit_pitch_um=1.40,
        row_height_um=1.40,
    )


def scaled_library(node: str = "8nm") -> CellLibrary:
    """A technology-shrunk library standing in for the proprietary 8 nm node.

    Relative to Nangate45: ~7x denser, ~2.8x faster tau, relatively cheaper
    XOR (modern libraries implement XOR with pass-transistor topologies) and
    relatively more expensive wires — the kind of shifts that change which
    prefix structures win, producing the domain gap Fig. 6 relies on.
    """
    if node != "8nm":
        raise ValueError(f"unknown node {node!r}; only '8nm' is modeled")
    base = nangate45()
    cells = []
    for name in sorted(base._cells):
        cell = base._cells[name]
        xor_discount = 0.80 if cell.function in ("XOR2", "XNOR2") else 1.0
        cells.append(
            Cell(
                name=cell.name,
                function=cell.function,
                drive=cell.drive,
                area=round(cell.area * 0.145, 5),
                input_cap=cell.input_cap * 0.55,
                logical_effort=cell.logical_effort * xor_discount,
                intrinsic_delay=cell.intrinsic_delay * xor_discount,
            )
        )
    return CellLibrary(
        name="scaled-8nm",
        cells=cells,
        tau_ns=0.0045,
        wire_cap_per_um=0.21,
        bit_pitch_um=0.51,
        row_height_um=0.51,
    )


#: Names of every built-in library — the authoritative list validators
#: (e.g. :class:`repro.api.TaskSpec`) check against without paying to
#: construct the libraries themselves.
LIBRARY_NAMES = ("nangate45", "8nm")


def LIBRARIES() -> Dict[str, CellLibrary]:
    """Factory map of all built-in libraries (keys = ``LIBRARY_NAMES``)."""
    return {"nangate45": nangate45(), "8nm": scaled_library("8nm")}
