"""The method registry: search algorithms resolved by name.

Every optimization method is registered as a ``(config dataclass,
factory)`` pair under a stable name, so frontends — the CLI, specs in
JSON, future job queues — can say ``"GA"`` instead of importing
:class:`~repro.baselines.ga.GeneticAlgorithm` and closing over a lambda.
CircuitVAE and all four baselines register at import time; plugins add
themselves with the same decorator:

>>> from repro.api import register_method
>>> @register_method("my-search", MySearchConfig)
... def _build(config):
...     return MySearch(config)

Method parameters travel as plain JSON-able dicts
(:attr:`repro.api.MethodSpec.params`) and are materialized into the
registered config dataclass by :func:`build_config`, which understands
nested config dataclasses (``{"train": {"epochs": 5}}`` builds a
:class:`~repro.core.training.TrainConfig`) and resolves named classical
structures for :class:`~repro.prefix.graph.PrefixGraph`-typed fields
(``{"fixed_init_graph": "sklansky"}`` becomes ``sklansky(n)`` for the
task bitwidth) — that keeps every spec serializable while still covering
the paper's ablations.
"""

from __future__ import annotations

import dataclasses
import typing
import warnings
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..baselines import (
    BOConfig,
    GAConfig,
    GeneticAlgorithm,
    LatentBO,
    PrefixRL,
    RandomSearch,
    RandomSearchConfig,
    RLConfig,
)
from ..core import CircuitVAEConfig, CircuitVAEOptimizer
from ..opt.optimizer import SearchAlgorithm
from ..prefix.graph import PrefixGraph
from ..prefix.structures import STRUCTURES, make_structure

__all__ = [
    "MethodEntry",
    "register_method",
    "available_methods",
    "get_method",
    "validate_params",
    "build_config",
    "build_algorithm",
]


@dataclasses.dataclass(frozen=True)
class MethodEntry:
    """One registered method: its name, config type and factory."""

    name: str
    config_cls: type
    factory: Callable[[Any], SearchAlgorithm]


_REGISTRY: Dict[str, MethodEntry] = {}


def register_method(name: str, config_cls: type):
    """Class-/function-decorator registering ``factory(config)`` under ``name``.

    ``config_cls`` must be a dataclass; its fields define the parameters a
    :class:`repro.api.MethodSpec` may set.  Registering an already-taken
    name raises ``ValueError`` (replacing a method silently would make
    specs ambiguous).
    """
    if not dataclasses.is_dataclass(config_cls):
        raise TypeError(f"config_cls for {name!r} must be a dataclass")

    def decorator(factory: Callable[[Any], SearchAlgorithm]):
        if name in _REGISTRY:
            raise ValueError(f"method {name!r} is already registered")
        _REGISTRY[name] = MethodEntry(name=name, config_cls=config_cls, factory=factory)
        return factory

    return decorator


def available_methods() -> List[str]:
    """Sorted names of every registered method."""
    return sorted(_REGISTRY)


def get_method(name: str) -> MethodEntry:
    """Look up one registered method; unknown names list the alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {', '.join(available_methods())}"
        ) from None


# ----------------------------------------------------------------------
# Params <-> config dataclasses
# ----------------------------------------------------------------------
def _field_types(config_cls: type) -> Dict[str, Any]:
    """Resolved field annotations (configs use ``from __future__ import
    annotations``, so raw ``field.type`` is a string)."""
    try:
        return typing.get_type_hints(config_cls)
    except (NameError, TypeError) as error:
        # Unresolvable forward refs (e.g. TYPE_CHECKING-only names in a
        # plugin config) degrade nested validation/materialization to
        # pass-through — say so instead of failing silently.
        warnings.warn(
            f"cannot resolve field annotations of {config_cls.__name__} "
            f"({error}); nested parameter validation is degraded",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}


def _concrete_type(tp: Any) -> Any:
    """Strip ``Optional[...]`` so dataclass/graph fields are recognizable."""
    if typing.get_origin(tp) is Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return tp


def validate_params(
    config_cls: type, params: Mapping[str, Any], context: str = ""
) -> None:
    """Reject parameter names that are not fields of ``config_cls``.

    Recurses into nested config dataclasses, so a typo anywhere in a spec
    fails at validation time with its dotted path, not at run time.
    """
    names = {f.name for f in dataclasses.fields(config_cls)}
    types = _field_types(config_cls)
    for key, value in params.items():
        where = f"{context}.{key}" if context else key
        if key not in names:
            raise ValueError(
                f"unknown parameter {where!r} for {config_cls.__name__}; "
                f"known fields: {sorted(names)}"
            )
        nested = _concrete_type(types.get(key))
        if dataclasses.is_dataclass(nested) and isinstance(value, Mapping):
            validate_params(nested, value, context=where)
        elif nested is PrefixGraph and isinstance(value, str):
            # Structure names materialize later (they need the task
            # bitwidth), but a typo must fail here, at validation time.
            if value not in STRUCTURES:
                raise ValueError(
                    f"{where}={value!r} is not a known classical structure; "
                    f"choose from {sorted(STRUCTURES)}"
                )


def _materialize(
    config_cls: type, params: Mapping[str, Any], n: Optional[int], context: str
) -> Any:
    types = _field_types(config_cls)
    kwargs: Dict[str, Any] = {}
    for key, value in params.items():
        where = f"{context}.{key}"
        declared = _concrete_type(types.get(key))
        if dataclasses.is_dataclass(declared) and isinstance(value, Mapping):
            value = _materialize(declared, value, n, where)
        elif declared is PrefixGraph and isinstance(value, str):
            if n is None:
                raise ValueError(
                    f"{where}={value!r} names a classical structure, which "
                    "needs the task bitwidth; pass n="
                )
            value = make_structure(value, n)
        kwargs[key] = value
    return config_cls(**kwargs)


def build_config(method: str, params: Mapping[str, Any], n: Optional[int] = None):
    """Materialize a method's config dataclass from JSON-able ``params``.

    Unlisted fields keep their dataclass defaults.  ``n`` (the task
    bitwidth) is only needed when a graph-typed field names a classical
    structure.
    """
    entry = get_method(method)
    validate_params(entry.config_cls, params, context=method)
    return _materialize(entry.config_cls, params, n, context=method)


def build_algorithm(
    method: str, params: Optional[Mapping[str, Any]] = None, n: Optional[int] = None
) -> SearchAlgorithm:
    """A fresh algorithm instance for one run: config + factory in one step."""
    entry = get_method(method)
    return entry.factory(build_config(method, params or {}, n=n))


# ----------------------------------------------------------------------
# Built-in methods: the paper's contribution and its four baselines.
# ----------------------------------------------------------------------
@register_method("CircuitVAE", CircuitVAEConfig)
def _make_circuitvae(config: CircuitVAEConfig) -> SearchAlgorithm:
    return CircuitVAEOptimizer(config)


@register_method("GA", GAConfig)
def _make_ga(config: GAConfig) -> SearchAlgorithm:
    return GeneticAlgorithm(config)


@register_method("RL", RLConfig)
def _make_rl(config: RLConfig) -> SearchAlgorithm:
    return PrefixRL(config)


@register_method("BO", BOConfig)
def _make_bo(config: BOConfig) -> SearchAlgorithm:
    return LatentBO(config)


@register_method("Random", RandomSearchConfig)
def _make_random(config: RandomSearchConfig) -> SearchAlgorithm:
    return RandomSearch(config)
