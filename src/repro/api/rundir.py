"""Durable run directories: the on-disk form of a submitted experiment.

A run directory makes a long (method x seed) grid crash-safe and
resumable.  Layout::

    <run_dir>/
        spec.json                     the ExperimentSpec (atomic)
        run.json                      {format, run_id, status} (atomic)
        records.json                  final combined records (atomic)
        trace.jsonl                   span stream (appended + flushed per
                                      span; absent with REPRO_TRACE=0)
        cells/<method>--seed<N>/
            meta.json                 {method, seed} (human-readable)
            history.jsonl             evaluation trail, appended + flushed
                                      after every simulator query
            history.resume.jsonl      a previous attempt's trail, kept
                                      until the cell finishes
            record.json               final RunRecord = completion ledger

Design notes
------------
* **Everything single-shot is atomic** (temp + rename via
  :mod:`repro.utils.io`); the only incrementally-written files are the
  history JSONLs, whose readers tolerate a truncated final line.
* **The history is the whole checkpoint.**  No rng or optimizer state is
  serialized: every registered method is deterministic given (seed,
  evaluation history), so resume re-runs the algorithm from its seed
  while the recorded evaluations are served from a warm cache —
  bit-identical, with zero new synthesis for anything already recorded.
  The budget state is likewise implied: evaluations recorded = budget
  consumed.
* **record.json is the completion ledger.**  Its presence marks a cell
  finished; resume serves such cells straight from disk.  An interrupted
  cell has history lines but no record, and is the only kind of cell a
  resume actually re-runs.
* **Resume rotation.**  When a cell restarts, its partial
  ``history.jsonl`` is folded into ``history.resume.jsonl`` and the main
  file starts fresh; the replay rewrites it identically.  If the resume
  itself dies mid-replay, both files survive and the next attempt primes
  from their union (deduplicated by ``sim_index``), so repeated crashes
  never lose recorded synthesis work.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from typing import Dict, List, Optional

from ..opt.records_io import (
    append_evaluations,
    evaluation_to_dict,
    load_evaluations,
    load_records,
    save_records,
)
from ..opt.results import RunRecord
from ..opt.simulator import Evaluation
from ..utils.io import atomic_write_json, atomic_write_text
from ..utils.locks import pid_alive, read_lock_pid, warn_stale_lock
from .spec import ExperimentSpec

__all__ = ["RunDirectory", "RunCellWriter"]

_RUN_FORMAT = 1

#: run.json status values, in lifecycle order.
STATUSES = ("created", "running", "finished", "interrupted", "failed")


def _cell_slug(method: str) -> str:
    """Filesystem-safe cell directory stem for a method display name.

    Sanitized names get a short content hash appended so two labels that
    sanitize identically ("GA 1" / "GA_1") can never share a directory.
    """
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in method)
    if safe != method or not safe:
        digest = hashlib.sha1(method.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe or 'method'}-{digest}"
    return safe


class RunDirectory:
    """One experiment's durable home; see the module docstring for layout."""

    SPEC_FILE = "spec.json"
    RUN_FILE = "run.json"
    RECORDS_FILE = "records.json"
    CELLS_DIR = "cells"
    TRACE_FILE = "trace.jsonl"

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self._spec: Optional[ExperimentSpec] = None

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path: str, spec: ExperimentSpec, run_id: Optional[str] = None
    ) -> "RunDirectory":
        """Initialize a fresh run directory for ``spec``.

        Refuses a directory that already holds a run (resume it
        instead).  ``run.json`` is written last, so a half-created
        directory (crash between the writes) is simply re-created.
        """
        run_dir = cls(path)
        if os.path.exists(run_dir._run_path()):
            raise ValueError(
                f"{run_dir.path} already holds a run; resume it with "
                "Session.resume / --resume instead of starting over"
            )
        os.makedirs(os.path.join(run_dir.path, cls.CELLS_DIR), exist_ok=True)
        atomic_write_text(run_dir._spec_path(), spec.to_json() + "\n")
        atomic_write_json(
            run_dir._run_path(),
            {
                "format": _RUN_FORMAT,
                "run_id": run_id if run_id is not None else f"run-{uuid.uuid4().hex[:12]}",
                "status": "created",
            },
            indent=2,
        )
        run_dir._spec = spec
        return run_dir

    @classmethod
    def open(cls, path: str) -> "RunDirectory":
        """Attach to an existing run directory, validating its metadata."""
        run_dir = cls(path)
        if not os.path.exists(run_dir._run_path()):
            raise ValueError(f"{run_dir.path} is not a run directory (no run.json)")
        meta = run_dir._run_meta()
        if meta.get("format") != _RUN_FORMAT:
            raise ValueError(
                f"unsupported run-directory format {meta.get('format')!r} "
                f"in {run_dir.path}"
            )
        run_dir.spec()  # validates spec.json eagerly
        return run_dir

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _spec_path(self) -> str:
        return os.path.join(self.path, self.SPEC_FILE)

    def _run_path(self) -> str:
        return os.path.join(self.path, self.RUN_FILE)

    def records_path(self) -> str:
        return os.path.join(self.path, self.RECORDS_FILE)

    def trace_path(self) -> str:
        """The run's span stream (``trace.jsonl``; appended + flushed by
        the active :class:`~repro.obs.sink.TraceSink`, may not exist for
        runs executed with ``REPRO_TRACE=0``)."""
        return os.path.join(self.path, self.TRACE_FILE)

    def _lock_path(self) -> str:
        return os.path.join(self.path, "lock.json")

    def acquire_lock(self) -> None:
        """Advisory single-writer guard for the execution lifetime.

        Two live processes appending to the same cell trails would
        silently lose each other's evaluations, so submit/resume refuse
        a directory whose lock names a still-running process.  A stale
        lock (dead pid — e.g. the SIGKILLed run a resume is exactly
        for — or an unreadable file) is stolen with a
        :class:`RuntimeWarning` naming the dead pid, so the operator
        learns that a previous execution died uncleanly.  Advisory only:
        a pathological simultaneous acquire can still race, but the
        realistic double-resume mistake is caught.
        """
        path = self._lock_path()
        if os.path.exists(path):
            pid = read_lock_pid(path)
            if pid is not None and pid_alive(pid):
                raise ValueError(
                    f"{self.path} is already being executed by live process "
                    f"{pid}; interrupt it (or wait) before resuming here"
                )
            warn_stale_lock(path, pid)
        atomic_write_json(path, {"pid": os.getpid()}, indent=2)

    def release_lock(self) -> None:
        try:
            os.unlink(self._lock_path())
        except OSError:
            pass

    def _run_meta(self) -> Dict:
        with open(self._run_path()) as handle:
            return json.load(handle)

    def spec(self) -> ExperimentSpec:
        """The stored experiment spec (parsed once, strict validation)."""
        if self._spec is None:
            with open(self._spec_path()) as handle:
                self._spec = ExperimentSpec.from_json(handle.read())
        return self._spec

    @property
    def run_id(self) -> str:
        return str(self._run_meta()["run_id"])

    @property
    def status(self) -> str:
        return str(self._run_meta()["status"])

    def set_status(self, status: str) -> None:
        """Advance run.json's lifecycle status (atomic rewrite)."""
        if status not in STATUSES:
            raise ValueError(f"unknown run status {status!r}; choose from {STATUSES}")
        meta = self._run_meta()
        meta["status"] = status
        atomic_write_json(self._run_path(), meta, indent=2)

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def cell_dir(self, method: str, seed: int) -> str:
        return os.path.join(
            self.path, self.CELLS_DIR, f"{_cell_slug(method)}--seed{seed}"
        )

    def _history_path(self, method: str, seed: int) -> str:
        return os.path.join(self.cell_dir(method, seed), "history.jsonl")

    def _resume_history_path(self, method: str, seed: int) -> str:
        return os.path.join(self.cell_dir(method, seed), "history.resume.jsonl")

    def _record_path(self, method: str, seed: int) -> str:
        return os.path.join(self.cell_dir(method, seed), "record.json")

    def completed_record(self, method: str, seed: int) -> Optional[RunRecord]:
        """The cell's ledger entry: its final record, or None if unfinished."""
        path = self._record_path(method, seed)
        if not os.path.exists(path):
            return None
        records = load_records(path)
        if len(records) != 1:
            raise ValueError(f"{path} should hold exactly one record")
        return records[0]

    def load_history(self, method: str, seed: int) -> List[Evaluation]:
        """Every recorded evaluation for a cell, across crash generations.

        Merges the current trail with a rotated previous-attempt trail,
        deduplicated by ``sim_index`` (both are prefixes of the same
        deterministic sequence), ordered by ``sim_index``.
        """
        merged: Dict[int, Evaluation] = {}
        for path in (
            self._resume_history_path(method, seed),
            self._history_path(method, seed),
        ):
            if os.path.exists(path):
                for evaluation in load_evaluations(path):
                    merged[evaluation.sim_index] = evaluation
        return [merged[index] for index in sorted(merged)]

    def cell_writer(
        self,
        method: str,
        seed: int,
        history: Optional[List[Evaluation]] = None,
    ) -> "RunCellWriter":
        """Open a cell for (re)execution; rotates any partial history.

        ``history`` lets a caller that already loaded the cell's merged
        trail (resume priming does) hand it over instead of having the
        rotation re-parse the same files.
        """
        return RunCellWriter(self, method, seed, history=history)

    # ------------------------------------------------------------------
    # Final records
    # ------------------------------------------------------------------
    def write_final_records(self, records: List[RunRecord]) -> str:
        path = self.records_path()
        save_records(path, records)
        return path

    def load_final_records(self) -> List[RunRecord]:
        return load_records(self.records_path())

    # ------------------------------------------------------------------
    # Introspection (the CLI `status` subcommand)
    # ------------------------------------------------------------------
    def progress(self) -> List[Dict]:
        """Per-cell state, in spec order.

        Each entry: ``{"method", "seed", "state", "evaluations",
        "best_cost"}`` with state ``done`` (ledgered), ``partial``
        (history but no record — what resume re-runs) or ``pending``.
        """
        spec = self.spec()
        rows: List[Dict] = []
        for method_spec in spec.methods:
            method = method_spec.display_name
            for seed in spec.seed_list():
                record = self.completed_record(method, seed)
                if record is not None:
                    state, count = "done", record.num_simulations
                    best = record.best_cost() if count else None
                else:
                    history = self.load_history(method, seed)
                    count = len(history)
                    best = min((e.cost for e in history), default=None)
                    state = "partial" if count else "pending"
                rows.append(
                    {
                        "method": method,
                        "seed": seed,
                        "state": state,
                        "evaluations": count,
                        "best_cost": best,
                    }
                )
        return rows

    def __repr__(self) -> str:
        return f"RunDirectory({self.path!r})"


class RunCellWriter:
    """Incremental persistence for one (method, seed) cell.

    Created when the cell starts (or restarts) running.  Rotation,
    appending and the final ledger write all live here so the execution
    layer only ever says "this evaluation happened" / "this cell is
    done".
    """

    def __init__(
        self,
        run_dir: RunDirectory,
        method: str,
        seed: int,
        history: Optional[List[Evaluation]] = None,
    ) -> None:
        self.run_dir = run_dir
        self.method = method
        self.seed = seed
        self.history_path = run_dir._history_path(method, seed)
        self._resume_path = run_dir._resume_history_path(method, seed)
        self.evaluations = 0
        cell = run_dir.cell_dir(method, seed)
        os.makedirs(cell, exist_ok=True)
        meta_path = os.path.join(cell, "meta.json")
        if not os.path.exists(meta_path):
            atomic_write_json(meta_path, {"method": method, "seed": seed}, indent=2)
        self._rotate_partial_history(history)

    def _rotate_partial_history(
        self, history: Optional[List[Evaluation]] = None
    ) -> None:
        """Fold a previous attempt's trail aside before replay rewrites it.

        The union of both files (the durable superset of recorded work)
        is written atomically to the resume trail, then the main trail
        starts empty.  Replay regenerates it line-for-line; the resume
        trail is deleted only once the cell's record is ledgered.
        ``history`` is that union when the caller already loaded it.
        """
        if not os.path.exists(self.history_path):
            return
        combined = (
            history
            if history is not None
            else self.run_dir.load_history(self.method, self.seed)
        )
        lines = "".join(
            json.dumps(evaluation_to_dict(e)) + "\n" for e in combined
        )
        atomic_write_text(self._resume_path, lines)
        os.unlink(self.history_path)

    def append(self, evaluation: Evaluation) -> int:
        """Durably record one evaluation; returns the cell's line count."""
        self.evaluations += append_evaluations(self.history_path, [evaluation])
        return self.evaluations

    def finish(self, record: RunRecord) -> None:
        """Ledger the cell as complete and drop the resume trail."""
        save_records(self.run_dir._record_path(self.method, self.seed), [record])
        if os.path.exists(self._resume_path):
            os.unlink(self._resume_path)
