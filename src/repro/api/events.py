"""Typed events streamed by a :class:`~repro.api.handle.RunHandle`.

A submitted experiment is observable while it runs: every event below is
emitted at a well-defined boundary and carries plain data, so any
frontend — the CLI's ``--progress`` printer, a future web dashboard, a
test harness — can fold the stream however it likes.  Events arrive in
causal order per (method, seed) cell; with ``parallel_seeds > 1`` the
cells interleave.

The stream of one run is always shaped::

    ExperimentStarted
      SeedStarted            (per unfinished cell)
        EvaluationDone       (per unique simulation, at the simulator
        Checkpointed          query boundary; Checkpointed only when the
                              run persists to a run directory)
      SeedFinished           (per cell — also for ledger-served cells,
                              with resumed=True and no SeedStarted)
    ExperimentFinished       (status: finished | interrupted | failed)

``EvaluationDone.telemetry_delta`` carries the engine-counter increments
since the cell's previous event (see
:func:`repro.engine.telemetry.snapshot_delta`): whether work was cache
hits or fresh synthesis, and how much wall-clock each stage took.  For
batched submissions the whole batch's counters arrive with its first
evaluation (see the field's doc); event sums are always exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # imports would cycle: spec/session import the runner
    from ..opt.results import RunRecord
    from .spec import ExperimentSpec

__all__ = [
    "RunEvent",
    "ExperimentStarted",
    "SeedStarted",
    "EvaluationDone",
    "Checkpointed",
    "TrainingRoundFinished",
    "SeedFinished",
    "ExperimentFinished",
]


@dataclass(frozen=True)
class RunEvent:
    """Base class of everything a run stream yields."""


@dataclass(frozen=True)
class ExperimentStarted(RunEvent):
    """The run thread is up; the grid is about to execute."""

    run_id: str
    #: the durable run directory, or None for an in-memory run.
    run_dir: Optional[str]
    spec: "ExperimentSpec"
    #: method display names, in execution order.
    methods: Tuple[str, ...]
    seeds: Tuple[int, ...]
    #: True when this run continues a previous run directory.
    resumed: bool = False
    #: the run's ``trace.jsonl`` when tracing is active, else None
    #: (in-memory runs, ``REPRO_TRACE=0``).
    trace_path: Optional[str] = None


@dataclass(frozen=True)
class SeedStarted(RunEvent):
    """One (method, seed) cell is about to run its algorithm."""

    method: str
    seed: int
    #: evaluations primed from the cell's recorded history (resume
    #: replay); 0 on a fresh run.
    replayed: int = 0


@dataclass(frozen=True)
class EvaluationDone(RunEvent):
    """One unique simulation finished (the paper's unit of budget)."""

    method: str
    seed: int
    #: 1-based position in the cell's history (== budget consumed).
    sim_index: int
    cost: float
    area_um2: float
    delay_ns: float
    #: running minimum cost for this cell, this evaluation included.
    best_cost: float
    #: engine-counter increments accrued since the cell's *previous*
    #: event (None when the simulator has no telemetry).  For scalar
    #: queries this is exactly this query's work; batched submissions
    #: (``query_plan``/``query_many``) record their work before any
    #: evaluation is announced, so the whole batch's counters land on
    #: its first ``EvaluationDone`` and the batch's later events carry
    #: empty deltas — sums over events are always exact, per-event
    #: attribution is exact only for scalar queries.
    telemetry_delta: Optional[Dict] = None


@dataclass(frozen=True)
class Checkpointed(RunEvent):
    """The cell's history line for the last evaluation is durable on disk.

    Interrupting (or killing) the run after this event loses nothing up
    to and including that evaluation: resume replays it from the run
    directory without new synthesis.
    """

    method: str
    seed: int
    #: the cell's history JSONL file.
    path: str
    #: total evaluations durable for this cell in the current attempt.
    evaluations: int = 0


@dataclass(frozen=True)
class TrainingRoundFinished(RunEvent):
    """A model-based method (CircuitVAE, latent BO) finished a retrain.

    Emitted between query boundaries, whenever the method's
    ``train_model`` call returns.  ``counters`` carries the compiled
    graph-executor's compile/replay/fusion deltas for the round (empty
    for eager training); ``epochs_skipped`` counts epochs restored from
    a durable training checkpoint instead of re-trained (resume).
    """

    method: str
    seed: int
    #: 0-based acquisition-round index within the seed's run.
    round: int
    #: epochs actually trained this round.
    epochs: int
    #: epochs restored from a checkpoint (only on resumed runs).
    epochs_skipped: int
    #: True when the compiled graph executor ran the steps.
    compiled: bool
    #: last-epoch losses: total / reconstruction / kl / cost.
    losses: Dict[str, float]
    #: compiled-step counter deltas (repro.nn.CompileStats keys).
    counters: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class SeedFinished(RunEvent):
    """One (method, seed) cell completed with a final record."""

    method: str
    seed: int
    record: "RunRecord"
    #: True when the record was served from the run directory's
    #: completion ledger (the cell finished in a previous attempt).
    resumed: bool = False


@dataclass(frozen=True)
class ExperimentFinished(RunEvent):
    """Terminal event: exactly one per stream, always the last."""

    run_id: str
    #: ``finished`` | ``interrupted`` | ``failed``.
    status: str
    run_dir: Optional[str] = None
