"""``repro.api`` — declarative experiment specs, a method registry, sessions.

The single public entrypoint for running experiments.  The paper's
results are a grid of (task x method x seed x budget) runs; this package
makes each grid cell *data* instead of driver code, so any frontend —
the ``python -m repro`` CLI, CI smoke jobs, a future job queue — can
submit the same serializable description and get identical records back:

``spec``
    :class:`TaskSpec` / :class:`MethodSpec` / :class:`EngineSpec` /
    :class:`ExperimentSpec` — frozen dataclasses with strict
    ``to_dict``/``from_dict``/JSON round-trips that reject unknown
    fields, unknown method names and unknown method parameters before
    any synthesis runs.  Defaults mirror the paper's grid.
``registry``
    ``@register_method("name", ConfigClass)`` maps names to (config
    dataclass, factory) pairs.  CircuitVAE and all four baselines are
    registered at import; :func:`available_methods` lists them, and
    :func:`build_config` materializes JSON params into configs (nested
    dataclasses and named classical structures included).
``session``
    :class:`Session` owns one :class:`~repro.engine.EvaluationEngine`
    (persistent cache, worker pool, telemetry) so callers never pass raw
    ``engine=`` handles; :meth:`Session.run` executes a spec and returns
    an :class:`ExperimentResult` (records + aggregated curves +
    telemetry snapshot).  :meth:`Session.submit` is the streaming form:
    it returns a :class:`RunHandle` whose :meth:`~RunHandle.events`
    stream typed :mod:`~repro.api.events` at simulator query boundaries
    and which can be interrupted losslessly;
    :meth:`Session.resume` continues an interrupted run directory
    bit-identically.
``handle`` / ``events`` / ``rundir``
    The job system under the session: :class:`RunHandle` (background
    execution, event stream, interrupt), the typed event dataclasses,
    and :class:`RunDirectory` (durable spec + incremental per-seed
    evaluation history + completion ledger + final records).
``cli``
    ``python -m repro run spec.json`` / ``methods`` / ``bench <name>`` /
    ``status <run_dir>`` with ``--workers/--cache-dir/--out/--out-dir/
    --resume/--progress`` flags.

Guarantees
----------
Running a spec is **bit-identical** to hand-assembling the same grid
with per-method factories and a direct serial simulator: sessions route
through :mod:`repro.engine`, whose accounting is serial-identical by
construction, and specs resolve to exactly the config dataclasses the
optimizers consume.

Quickstart
----------
>>> from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec
>>> spec = ExperimentSpec(
...     name="demo",
...     task=TaskSpec(circuit_type="adder", n=8, delay_weight=0.66),
...     methods=(MethodSpec("GA", params={"population_size": 16}),),
...     budget=50, num_seeds=2,
... )
>>> with Session() as session:          # doctest: +SKIP
...     result = session.run(spec)
...     result.best_costs()
"""

from .events import (
    Checkpointed,
    EvaluationDone,
    ExperimentFinished,
    ExperimentStarted,
    RunEvent,
    SeedFinished,
    SeedStarted,
    TrainingRoundFinished,
)
from .handle import RunHandle
from .registry import (
    MethodEntry,
    available_methods,
    build_algorithm,
    build_config,
    get_method,
    register_method,
    validate_params,
)
from .rundir import RunDirectory
from .session import ExperimentResult, Session
from .spec import (
    EngineSpec,
    ExperimentSpec,
    MethodSpec,
    TaskSpec,
    load_spec,
    save_spec,
)

__all__ = [
    "TaskSpec",
    "MethodSpec",
    "EngineSpec",
    "ExperimentSpec",
    "load_spec",
    "save_spec",
    "MethodEntry",
    "register_method",
    "available_methods",
    "get_method",
    "validate_params",
    "build_config",
    "build_algorithm",
    "Session",
    "ExperimentResult",
    "RunHandle",
    "RunDirectory",
    "RunEvent",
    "ExperimentStarted",
    "SeedStarted",
    "EvaluationDone",
    "Checkpointed",
    "TrainingRoundFinished",
    "SeedFinished",
    "ExperimentFinished",
]
