"""Sessions: engine ownership + job-style spec execution in one object.

A :class:`Session` is the runtime counterpart of a declarative
:class:`~repro.api.spec.ExperimentSpec`: it owns one
:class:`~repro.engine.EvaluationEngine` (persistent cache, synthesis
worker pool, aggregate telemetry) for its whole lifetime, so callers
never thread raw ``engine=`` handles through their code.  Any number of
experiments can run on one session and share cache entries; closing the
session (or using it as a context manager) shuts the worker pool down.

Execution has job lifecycle semantics:

* :meth:`Session.submit` resolves every method through the registry
  (fail-fast, before any synthesis), optionally creates a durable run
  directory (:mod:`repro.api.rundir`), and returns a
  :class:`~repro.api.handle.RunHandle` streaming typed events
  (:mod:`repro.api.events`) while the grid executes in the background.
* :meth:`Session.resume` reopens an interrupted run directory and
  continues only its unfinished (method, seed) cells — finished cells
  are served from the completion ledger, partial cells replay their
  recorded evaluation history through the engine's warm cache (zero new
  synthesis for recorded work) and run on, bit-identically.
* :meth:`Session.run` stays the simple blocking form: a thin wrapper
  that submits and drains the event stream.

Records are bit-identical to serial execution in every mode (see
:mod:`repro.engine`); interruption and resume never change
paper-semantics accounting, only where the wall-clock work happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..engine.service import EvaluationEngine
from ..opt.records_io import save_records
from ..opt.results import RunRecord, aggregate_curves, median_iqr
from .events import RunEvent
from .registry import build_config, get_method
from .rundir import RunDirectory
from .spec import EngineSpec, ExperimentSpec

__all__ = ["Session", "ExperimentResult"]


def _sum_telemetry(snapshots: List[Dict]) -> Dict:
    """Fold per-run telemetry snapshots into one experiment total.

    Summing the runs' own snapshots (not diffing the engine aggregate)
    attributes exactly this experiment's work — including the counters
    only per-run telemetry records (queries, run_hits, budget_refusals)
    — and stays correct on a reused session.  The derived ratios
    (hit_rate, synth_throughput) are recomputed from the totals.
    """
    total: Dict = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, dict):
                bucket = total.setdefault(key, {})
                for name, amount in value.items():
                    bucket[name] = bucket.get(name, 0) + amount
            else:
                total[key] = total.get(key, 0) + value
    charged = total.get("cache_hits", 0) + total.get("synth_calls", 0)
    total["hit_rate"] = total.get("cache_hits", 0) / charged if charged else 0.0
    seconds = total.get("stage_seconds", {}).get("synthesis", 0.0)
    total["synth_throughput"] = (
        total.get("synth_calls", 0) / seconds if seconds > 0 else 0.0
    )
    return total


@dataclass
class ExperimentResult:
    """Everything one :meth:`Session.run` produced."""

    spec: ExperimentSpec
    #: {method display name: [RunRecord per seed]}, seed-paired across
    #: methods (the Table-1 speedup pairing).
    records: Dict[str, List[RunRecord]]
    #: engine telemetry attributable to *this* experiment (the sum of
    #: every run's per-record snapshot, so reused sessions don't
    #: misattribute earlier runs' work).
    telemetry: Optional[Dict] = None
    #: the durable run directory this result was produced in (None for
    #: in-memory runs).
    run_dir: Optional[str] = None
    #: the run's ``trace.jsonl`` when hierarchical tracing was active
    #: (durable runs unless ``REPRO_TRACE=0``); feed it to
    #: ``python -m repro report`` or :mod:`repro.obs.report`.
    trace_path: Optional[str] = None

    def budgets(self) -> List[int]:
        """The curve ladder of the spec (``budget_ladder``)."""
        return self.spec.budget_ladder()

    def curves(self, budgets: Optional[List[int]] = None) -> Dict[str, Dict]:
        """Median/quartile best-cost curves per method (Figs. 3/7)."""
        budgets = budgets if budgets is not None else self.budgets()
        return {
            name: aggregate_curves(records, budgets)
            for name, records in self.records.items()
        }

    def best_costs(self) -> Dict[str, float]:
        """Median best cost per method at the full budget."""
        return {
            name: median_iqr([r.best_cost() for r in records])[0]
            for name, records in self.records.items()
        }

    def all_records(self) -> List[RunRecord]:
        """Every record, flattened in method order (for persistence)."""
        return [r for records in self.records.values() for r in records]

    def save(self, path: str) -> None:
        """Persist all records via :mod:`repro.opt.records_io`."""
        save_records(path, self.all_records())


class Session:
    """Owns one evaluation engine and runs experiment specs on it.

    Parameters
    ----------
    cache_dir / workers:
        Forwarded to :class:`~repro.engine.EvaluationEngine` (``None``
        defers to ``$REPRO_CACHE_DIR`` / ``$REPRO_ENGINE_WORKERS``).
    parallel_seeds:
        Seeds run concurrently on threads per method grid.
    engine:
        Adopt an existing engine instead of building one; the session
        then does **not** close it.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        parallel_seeds: int = 1,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if parallel_seeds < 1:
            raise ValueError("parallel_seeds must be >= 1")
        self._owns_engine = engine is None
        self.engine = (
            engine
            if engine is not None
            else EvaluationEngine(cache_dir=cache_dir, workers=workers)
        )
        self.parallel_seeds = parallel_seeds

    @classmethod
    def from_spec(
        cls,
        engine_spec: Optional[EngineSpec] = None,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        parallel_seeds: Optional[int] = None,
    ) -> "Session":
        """Build a session from an :class:`EngineSpec`, with overrides.

        Explicit keyword arguments (e.g. the CLI's ``--workers``) win
        over the spec's advisory values.
        """
        engine_spec = engine_spec if engine_spec is not None else EngineSpec()
        return cls(
            cache_dir=cache_dir if cache_dir is not None else engine_spec.cache_dir,
            workers=workers if workers is not None else engine_spec.workers,
            parallel_seeds=(
                parallel_seeds
                if parallel_seeds is not None
                else engine_spec.parallel_seeds
            ),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(spec: ExperimentSpec):
        """(task, seeds, resolved methods) — every registry/config error
        surfaces here, before any synthesis runs."""
        task = spec.task.to_task()
        seeds = spec.seed_list()
        resolved = [
            (m, get_method(m.method), build_config(m.method, m.params, n=task.n))
            for m in spec.methods
        ]
        return task, seeds, resolved

    def submit(
        self,
        spec: ExperimentSpec,
        out_dir: Optional[str] = None,
        run_id: Optional[str] = None,
        on_event: Optional[Callable[[RunEvent], None]] = None,
    ) -> "RunHandle":
        """Start one experiment in the background; returns its handle.

        With ``out_dir`` the run is durable: the spec, every seed's
        evaluation history (checkpointed after each simulator query) and
        each finished cell's record land under that directory, so an
        interrupt — :meth:`RunHandle.interrupt`, Ctrl-C, or a kill —
        loses nothing and :meth:`resume` continues the run
        bit-identically.  Without it the run is in-memory only.

        ``on_event`` is the *synchronous* observer, called in the thread
        that produced each event before it is queued (with
        ``parallel_seeds > 1`` that is several seed threads at once, so
        the callback must be thread-safe): raising
        :class:`~repro.opt.runner.RunInterrupted` from it stops the
        raising seed deterministically at that exact boundary (and the
        rest of the run at their next ones) — e.g. an early-stop policy
        after a particular ``Checkpointed`` — which the asynchronous
        :meth:`RunHandle.events` stream cannot guarantee.
        """
        from .handle import RunHandle

        task, seeds, resolved = self._resolve(spec)
        run_dir = (
            RunDirectory.create(out_dir, spec, run_id=run_id)
            if out_dir is not None
            else None
        )
        if run_dir is not None:
            run_dir.acquire_lock()  # released when the run settles
        return RunHandle(
            self,
            spec,
            task,
            resolved,
            seeds,
            run_dir=run_dir,
            resumed=False,
            on_event=on_event,
        )._start()

    def resume(
        self,
        run_dir: Union[str, RunDirectory],
        on_event: Optional[Callable[[RunEvent], None]] = None,
    ) -> "RunHandle":
        """Continue an interrupted run directory where it left off.

        Finished (method, seed) cells are served from their ledgered
        records without re-running; partial cells replay their recorded
        history through the engine cache (cheap, zero new synthesis for
        recorded evaluations — all registered methods are deterministic
        given seed + history, so the replay is bit-identical) and keep
        going.  Resuming an already-finished run is a no-op that returns
        the stored records.
        """
        from .handle import RunHandle

        directory = (
            run_dir
            if isinstance(run_dir, RunDirectory)
            else RunDirectory.open(run_dir)
        )
        spec = directory.spec()
        task, seeds, resolved = self._resolve(spec)
        directory.acquire_lock()  # refuses a directory another live run owns
        return RunHandle(
            self,
            spec,
            task,
            resolved,
            seeds,
            run_dir=directory,
            resumed=True,
            on_event=on_event,
        )._start()

    def run(
        self,
        spec: ExperimentSpec,
        out_dir: Optional[str] = None,
        progress: Optional[Callable[[RunEvent], None]] = None,
    ) -> ExperimentResult:
        """Execute one experiment spec on this session's engine (blocking).

        A thin wrapper over :meth:`submit` that drains the event stream
        (forwarding each event to ``progress`` when given) and returns
        the result.  Records are bit-identical to a direct serial run of
        the same (config, task, budget, seed) grid — the engine changes
        wall-clock only, never paper-semantics accounting.  If draining
        is interrupted (e.g. Ctrl-C), the run is asked to stop at its
        next query boundary and allowed to settle before the exception
        propagates, so a durable ``out_dir`` is always left resumable.
        """
        return self._drain(self.submit(spec, out_dir=out_dir), progress)

    @staticmethod
    def _drain(handle: "RunHandle", progress=None) -> ExperimentResult:
        try:
            for event in handle.events():
                if progress is not None:
                    progress(event)
        except BaseException:
            handle.interrupt()
            handle.wait()
            raise
        return handle.result()

    def telemetry_snapshot(self) -> Dict:
        """The engine's aggregate counters across every run so far."""
        return self.engine.telemetry.as_dict()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (only if this session built it)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(engine={self.engine!r}, parallel_seeds={self.parallel_seeds})"
        )
