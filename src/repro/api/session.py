"""Sessions: engine ownership + spec execution in one object.

A :class:`Session` is the runtime counterpart of a declarative
:class:`~repro.api.spec.ExperimentSpec`: it owns one
:class:`~repro.engine.EvaluationEngine` (persistent cache, synthesis
worker pool, aggregate telemetry) for its whole lifetime, so callers
never thread raw ``engine=`` handles through their code.  Any number of
experiments can run on one session and share cache entries; closing the
session (or using it as a context manager) shuts the worker pool down.

:meth:`Session.run` resolves each method spec through the registry,
executes the (method x seed) grid with per-seed budget accounting that is
bit-identical to serial execution (see :mod:`repro.engine`), and returns
an :class:`ExperimentResult` bundling the raw records, the aggregated
cost-vs-budget curves and an engine telemetry snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..engine.service import EvaluationEngine
from ..opt.records_io import save_records
from ..opt.results import RunRecord, aggregate_curves, median_iqr
from ..opt.runner import _run_seed_grid
from .registry import build_config, get_method
from .spec import EngineSpec, ExperimentSpec

__all__ = ["Session", "ExperimentResult"]


def _sum_telemetry(snapshots: List[Dict]) -> Dict:
    """Fold per-run telemetry snapshots into one experiment total.

    Summing the runs' own snapshots (not diffing the engine aggregate)
    attributes exactly this experiment's work — including the counters
    only per-run telemetry records (queries, run_hits, budget_refusals)
    — and stays correct on a reused session.  The derived ratios
    (hit_rate, synth_throughput) are recomputed from the totals.
    """
    total: Dict = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, dict):
                bucket = total.setdefault(key, {})
                for name, amount in value.items():
                    bucket[name] = bucket.get(name, 0) + amount
            else:
                total[key] = total.get(key, 0) + value
    charged = total.get("cache_hits", 0) + total.get("synth_calls", 0)
    total["hit_rate"] = total.get("cache_hits", 0) / charged if charged else 0.0
    seconds = total.get("stage_seconds", {}).get("synthesis", 0.0)
    total["synth_throughput"] = (
        total.get("synth_calls", 0) / seconds if seconds > 0 else 0.0
    )
    return total


@dataclass
class ExperimentResult:
    """Everything one :meth:`Session.run` produced."""

    spec: ExperimentSpec
    #: {method display name: [RunRecord per seed]}, seed-paired across
    #: methods (the Table-1 speedup pairing).
    records: Dict[str, List[RunRecord]]
    #: engine telemetry attributable to *this* experiment (the sum of
    #: every run's per-record snapshot, so reused sessions don't
    #: misattribute earlier runs' work).
    telemetry: Optional[Dict] = None

    def budgets(self) -> List[int]:
        """The curve ladder of the spec (``budget_ladder``)."""
        return self.spec.budget_ladder()

    def curves(self, budgets: Optional[List[int]] = None) -> Dict[str, Dict]:
        """Median/quartile best-cost curves per method (Figs. 3/7)."""
        budgets = budgets if budgets is not None else self.budgets()
        return {
            name: aggregate_curves(records, budgets)
            for name, records in self.records.items()
        }

    def best_costs(self) -> Dict[str, float]:
        """Median best cost per method at the full budget."""
        return {
            name: median_iqr([r.best_cost() for r in records])[0]
            for name, records in self.records.items()
        }

    def all_records(self) -> List[RunRecord]:
        """Every record, flattened in method order (for persistence)."""
        return [r for records in self.records.values() for r in records]

    def save(self, path: str) -> None:
        """Persist all records via :mod:`repro.opt.records_io`."""
        save_records(path, self.all_records())


class Session:
    """Owns one evaluation engine and runs experiment specs on it.

    Parameters
    ----------
    cache_dir / workers:
        Forwarded to :class:`~repro.engine.EvaluationEngine` (``None``
        defers to ``$REPRO_CACHE_DIR`` / ``$REPRO_ENGINE_WORKERS``).
    parallel_seeds:
        Seeds run concurrently on threads per method grid.
    engine:
        Adopt an existing engine instead of building one; the session
        then does **not** close it.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        parallel_seeds: int = 1,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if parallel_seeds < 1:
            raise ValueError("parallel_seeds must be >= 1")
        self._owns_engine = engine is None
        self.engine = (
            engine
            if engine is not None
            else EvaluationEngine(cache_dir=cache_dir, workers=workers)
        )
        self.parallel_seeds = parallel_seeds

    @classmethod
    def from_spec(
        cls,
        engine_spec: Optional[EngineSpec] = None,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        parallel_seeds: Optional[int] = None,
    ) -> "Session":
        """Build a session from an :class:`EngineSpec`, with overrides.

        Explicit keyword arguments (e.g. the CLI's ``--workers``) win
        over the spec's advisory values.
        """
        engine_spec = engine_spec if engine_spec is not None else EngineSpec()
        return cls(
            cache_dir=cache_dir if cache_dir is not None else engine_spec.cache_dir,
            workers=workers if workers is not None else engine_spec.workers,
            parallel_seeds=(
                parallel_seeds
                if parallel_seeds is not None
                else engine_spec.parallel_seeds
            ),
        )

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute one experiment spec on this session's engine.

        Records are bit-identical to a direct serial run of the same
        (config, task, budget, seed) grid — the engine changes wall-clock
        only, never paper-semantics accounting.
        """
        task = spec.task.to_task()
        seeds = spec.seed_list()
        # Resolve every method before running any: a bad config in the
        # last method must not waste the earlier methods' synthesis.
        resolved = [
            (m, get_method(m.method), build_config(m.method, m.params, n=task.n))
            for m in spec.methods
        ]
        records: Dict[str, List[RunRecord]] = {}
        for method_spec, entry, config in resolved:
            records[method_spec.display_name] = _run_seed_grid(
                lambda seed, _factory=entry.factory, _config=config: _factory(_config),
                task,
                spec.budget,
                seeds,
                method_name=method_spec.display_name,
                engine=self.engine,
                parallel_seeds=self.parallel_seeds,
            )
        return ExperimentResult(
            spec=spec,
            records=records,
            telemetry=_sum_telemetry([
                r.telemetry
                for rs in records.values()
                for r in rs
                if r.telemetry is not None
            ]),
        )

    def telemetry_snapshot(self) -> Dict:
        """The engine's aggregate counters across every run so far."""
        return self.engine.telemetry.as_dict()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (only if this session built it)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(engine={self.engine!r}, parallel_seeds={self.parallel_seeds})"
        )
