"""Declarative experiment specifications with strict JSON round-trips.

An experiment — the paper's (task x method x seed x budget) grid cell —
is described by four frozen dataclasses instead of hand-written driver
code:

:class:`TaskSpec`
    Which circuit to design: circuit type, bitwidth, omega, cell
    library, optional datapath IO-timing profile.  ``to_task()`` builds
    the concrete :class:`~repro.circuits.task.CircuitTask`.
:class:`MethodSpec`
    Which registered method to run (see :mod:`repro.api.registry`) with
    which parameter overrides, under an optional display label.
:class:`EngineSpec`
    How to execute: cache directory, synthesis workers, seed
    parallelism — advisory defaults a :class:`repro.api.Session` (or the
    CLI's flags) may override.
:class:`ExperimentSpec`
    The whole grid: one task, several methods, a budget and a seed
    derivation — everything :meth:`repro.api.Session.run` needs.

Serialization is **strict** both ways: ``to_dict`` emits every field,
``from_dict`` rejects unknown keys, unknown method names and unknown
method parameters, so a typo in a JSON spec fails before any synthesis
runs.  Defaults mirror the paper's grid (32-bit adder, omega = 0.66,
five seeds, 5000-simulation budget).
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..circuits.adder import IO_PROFILES, adder_task, realistic_adder_task
from ..circuits.gray import gray_to_binary_task
from ..circuits.lzd import lzd_task
from ..circuits.task import CircuitTask
from ..synth.library import LIBRARIES, LIBRARY_NAMES
from ..utils.io import atomic_write_text
from ..utils.rng import seed_sequence
from . import registry

__all__ = [
    "TaskSpec",
    "MethodSpec",
    "EngineSpec",
    "ExperimentSpec",
    "load_spec",
    "save_spec",
]

def _reject_unknown_keys(payload: Mapping[str, Any], cls, context: str) -> None:
    unknown = sorted(set(payload) - {f.name for f in fields(cls)})
    if unknown:
        raise ValueError(
            f"{context}: unknown field(s) {unknown}; "
            f"known: {sorted(f.name for f in fields(cls))}"
        )


@dataclass(frozen=True)
class TaskSpec:
    """Serializable description of one :class:`CircuitTask`."""

    circuit_type: str = "adder"
    n: int = 32
    delay_weight: float = 0.66
    library: str = "nangate45"
    #: None = the uniform IO timing of Sec. 5.2; a profile name builds the
    #: Sec. 5.4 datapath IO timings (adders only).  The library is chosen
    #: independently — pair a profile with ``library="8nm"`` to get the
    #: paper's full realistic setting (:func:`realistic_adder_task`).
    io_profile: Optional[str] = None
    io_skew_ns: float = 0.15
    #: overrides the builder's derived task name when set.
    name: Optional[str] = None

    def __post_init__(self):
        if self.circuit_type not in CircuitTask.circuit_types():
            raise ValueError(
                f"unknown circuit_type {self.circuit_type!r}; "
                f"choose from {CircuitTask.circuit_types()}"
            )
        if self.n < 2:
            raise ValueError("tasks need at least 2 bits")
        if not 0.0 <= self.delay_weight <= 1.0:
            raise ValueError("delay_weight must be in [0, 1]")
        if self.library not in LIBRARY_NAMES:
            raise ValueError(
                f"unknown library {self.library!r}; choose from {LIBRARY_NAMES}"
            )
        if self.io_profile is not None:
            if self.io_profile not in IO_PROFILES:
                raise ValueError(
                    f"unknown io_profile {self.io_profile!r}; "
                    f"choose from {IO_PROFILES}"
                )
            if self.circuit_type != "adder":
                raise ValueError("io_profile is only modeled for adder tasks")

    def to_task(self) -> CircuitTask:
        """Build the concrete task this spec describes."""
        library = LIBRARIES()[self.library]
        if self.circuit_type == "gray":
            task = gray_to_binary_task(
                n=self.n, delay_weight=self.delay_weight, library=library
            )
        elif self.circuit_type == "lzd":
            task = lzd_task(n=self.n, delay_weight=self.delay_weight, library=library)
        elif self.io_profile is None:
            task = adder_task(self.n, self.delay_weight, library=library)
        else:
            task = realistic_adder_task(
                self.n,
                self.delay_weight,
                profile=self.io_profile,
                library=library,
                skew_ns=self.io_skew_ns,
            )
        if self.name is not None:
            task = dataclasses.replace(task, name=self.name)
        return task

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TaskSpec":
        _reject_unknown_keys(payload, cls, "task spec")
        return cls(**payload)


@dataclass(frozen=True)
class MethodSpec:
    """One registered method plus its JSON-able parameter overrides."""

    method: str
    #: display/record name; several specs of one method (ablation
    #: variants) distinguish themselves by label.  Defaults to ``method``.
    label: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.params is None:  # a natural hand-edit in JSON specs
            object.__setattr__(self, "params", {})
        if not isinstance(self.params, Mapping):
            raise ValueError(
                f"method {self.method!r}: params must be an object, "
                f"got {type(self.params).__name__}"
            )
        # Snapshot the caller's dict: what was validated here is exactly
        # what runs and serializes later, even if the caller mutates.
        object.__setattr__(self, "params", copy.deepcopy(dict(self.params)))
        entry = registry.get_method(self.method)  # rejects unknown names
        registry.validate_params(entry.config_cls, self.params, context=self.method)

    @property
    def display_name(self) -> str:
        return self.label if self.label is not None else self.method

    def to_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "label": self.label,
            "params": copy.deepcopy(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MethodSpec":
        _reject_unknown_keys(payload, cls, "method spec")
        return cls(**payload)


@dataclass(frozen=True)
class EngineSpec:
    """Execution defaults: how a Session should run this experiment."""

    #: persistent cache directory (None = ``$REPRO_CACHE_DIR``, unset =
    #: memory-only).
    cache_dir: Optional[str] = None
    #: synthesis worker processes (None = ``$REPRO_ENGINE_WORKERS``).
    workers: Optional[int] = None
    #: seeds run concurrently on threads (1 = sequential).
    parallel_seeds: int = 1

    def __post_init__(self):
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        if self.parallel_seeds < 1:
            raise ValueError("parallel_seeds must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineSpec":
        _reject_unknown_keys(payload, cls, "engine spec")
        return cls(**payload)


@dataclass(frozen=True)
class ExperimentSpec:
    """One full experiment: task x methods x seeds at a budget."""

    name: str
    task: TaskSpec = field(default_factory=TaskSpec)
    methods: Tuple[MethodSpec, ...] = field(
        default_factory=lambda: (MethodSpec("CircuitVAE"),)
    )
    budget: int = 5000
    #: seed derivation: ``num_seeds`` well-separated seeds from
    #: ``base_seed`` (the harness convention), unless ``seeds`` pins an
    #: explicit list.
    num_seeds: int = 5
    base_seed: int = 0
    seeds: Optional[Tuple[int, ...]] = None
    #: points on the cost-vs-budget curve ladder (Figs. 3/7 use 8).
    curve_points: int = 8
    engine: EngineSpec = field(default_factory=EngineSpec)

    def __post_init__(self):
        if isinstance(self.methods, list):
            object.__setattr__(self, "methods", tuple(self.methods))
        if isinstance(self.seeds, list):
            object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.name:
            raise ValueError("experiments need a name")
        if not self.methods:
            raise ValueError("experiments need at least one method")
        labels = [m.display_name for m in self.methods]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"method labels must be unique, got {labels}; "
                "set MethodSpec.label on variants of one method"
            )
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.seeds is not None and not self.seeds:
            raise ValueError("explicit seeds must be non-empty")
        if self.seeds is None and self.num_seeds < 1:
            raise ValueError("num_seeds must be >= 1")
        if not 1 <= self.curve_points <= self.budget:
            raise ValueError("curve_points must be in [1, budget]")

    # ------------------------------------------------------------------
    def seed_list(self) -> List[int]:
        """The run seeds: explicit ``seeds``, else the derived sequence."""
        if self.seeds is not None:
            return list(self.seeds)
        return seed_sequence(self.base_seed, self.num_seeds)

    def budget_ladder(self) -> List[int]:
        """Budgets at which aggregated curves are reported.

        Evenly spaced ``curve_points`` steps, always ending at the full
        ``budget`` (an extra point is appended when the budget is not
        divisible, so curves never stop short of the spec's budget).
        """
        step = max(self.budget // self.curve_points, 1)
        ladder = list(range(step, self.budget + 1, step))
        if ladder[-1] != self.budget:
            ladder.append(self.budget)
        return ladder

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "task": self.task.to_dict(),
            "methods": [m.to_dict() for m in self.methods],
            "budget": self.budget,
            "num_seeds": self.num_seeds,
            "base_seed": self.base_seed,
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "curve_points": self.curve_points,
            "engine": self.engine.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        _reject_unknown_keys(payload, cls, "experiment spec")
        parsed = dict(payload)
        if "task" in parsed:
            parsed["task"] = TaskSpec.from_dict(parsed["task"])
        if "methods" in parsed:
            parsed["methods"] = tuple(
                MethodSpec.from_dict(m) for m in parsed["methods"]
            )
        if "engine" in parsed:
            parsed["engine"] = EngineSpec.from_dict(parsed["engine"])
        return cls(**parsed)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


def load_spec(path: str) -> ExperimentSpec:
    """Read and validate an :class:`ExperimentSpec` from a JSON file."""
    with open(path) as handle:
        return ExperimentSpec.from_json(handle.read())


def save_spec(spec: ExperimentSpec, path: str) -> None:
    """Write a spec as indented JSON, atomically (round-trips via
    :func:`load_spec`; parent directories are created)."""
    atomic_write_text(path, spec.to_json() + "\n")
