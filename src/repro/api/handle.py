"""Run handles: submit / observe / interrupt / resume for experiment runs.

:meth:`repro.api.Session.submit` returns a :class:`RunHandle` instead of
blocking: the (method x seed) grid executes on a background thread while
the caller drains :meth:`RunHandle.events` — a stream of the typed
events in :mod:`repro.api.events`, emitted at simulator query
boundaries.  :meth:`Session.run` is a thin wrapper that submits and
drains.

Interruption is cooperative and loss-free: :meth:`RunHandle.interrupt`
raises :class:`~repro.opt.runner.RunInterrupted` inside every in-flight
seed at its next query boundary — *after* that query's evaluation has
been recorded (and, with a run directory, checkpointed to disk) — so an
interrupted run directory always resumes bit-identically.

The bridge between the generic grid runner and this streaming layer is
:class:`_StreamingGridObserver`, a
:class:`~repro.opt.runner.GridObserver` that forwards each hook into the
event queue, the run directory's incremental writers, and the
interrupt flag.  No method implementation knows any of this exists.
"""

from __future__ import annotations

import os
import queue
import threading
import uuid
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.cache import task_fingerprint
from ..engine.telemetry import snapshot_delta
from ..obs.sink import TraceSink
from ..obs.trace import Tracer
from ..opt.results import RunRecord
from ..opt.runner import GridObserver, RunInterrupted, _run_seed_grid
from .events import (
    Checkpointed,
    EvaluationDone,
    ExperimentFinished,
    ExperimentStarted,
    RunEvent,
    SeedFinished,
    SeedStarted,
    TrainingRoundFinished,
)
from .rundir import RunDirectory

__all__ = ["RunHandle"]

#: queue terminator — strictly after the ExperimentFinished event.
_SENTINEL = object()

_ENV_TRACE = "REPRO_TRACE"


def _tracing_enabled() -> bool:
    """Whether durable runs stream spans to ``trace.jsonl``.

    Default on — tracing costs <5% on a tiny spec (see
    ``benchmarks/bench_obs_overhead.py``) and buys full post-hoc
    wall-clock attribution; ``REPRO_TRACE=0`` opts out.  In-memory runs
    (no run directory) never trace: there is nowhere durable to stream.
    """
    return os.environ.get(_ENV_TRACE, "").strip() != "0"


class _StreamingGridObserver(GridObserver):
    """Forwards grid hooks to a handle's event queue and run directory.

    Thread-safe across cells: with ``parallel_seeds > 1`` several seeds
    call in concurrently, but per-cell state (writer, best-so-far,
    previous telemetry snapshot) is only ever touched by the one thread
    driving that cell.
    """

    def __init__(self, handle: "RunHandle") -> None:
        self._handle = handle
        self._lock = threading.Lock()
        self._cells: Dict[Tuple[str, int], Dict] = {}

    def _cell(self, method: str, seed: int) -> Dict:
        with self._lock:
            return self._cells.setdefault((method, seed), {})

    # -- GridObserver hooks -------------------------------------------
    def check_interrupt(self) -> None:
        if self._handle._interrupt.is_set():
            raise RunInterrupted(
                f"run {self._handle.run_id} interrupted at a query boundary"
            )

    def completed_record(self, method: str, seed: int) -> Optional[RunRecord]:
        run_dir = self._handle.run_dir
        if run_dir is None:
            return None
        return run_dir.completed_record(method, seed)

    def before_seed(self, method: str, seed: int, simulator) -> int:
        cell = self._cell(method, seed)
        cell["best"] = float("inf")
        cell["telemetry"] = {}
        run_dir = self._handle.run_dir
        if run_dir is None:
            return 0
        # Model-based methods checkpoint training epochs here, so a
        # resume can restore them instead of re-training (train_model's
        # checkpoint files live next to the cell's evaluation history).
        simulator.train_checkpoint_dir = os.path.join(
            run_dir.cell_dir(method, seed), "train"
        )
        # Warm-cache replay priming: feed the cell's recorded history
        # into the engine's cache *before* the algorithm reruns, so the
        # deterministic replay charges budget through cache hits and
        # performs zero new synthesis for anything already recorded.
        replayed = 0
        history = run_dir.load_history(method, seed)
        engine = getattr(simulator, "engine", None)
        if history and engine is not None:
            fingerprint = task_fingerprint(simulator.task)
            for evaluation in history:
                key = evaluation.graph.key()
                # put() appends to the persistent shard; the original run
                # already stored these, so only fill genuine gaps (e.g. a
                # memory-only cache in a fresh process) to keep repeated
                # resumes from growing the shard with duplicates.
                if engine.cache.get(fingerprint, key) is None:
                    engine.cache.put(
                        fingerprint,
                        key,
                        (evaluation.area_um2, evaluation.delay_ns),
                    )
            replayed = len(history)
        cell["writer"] = run_dir.cell_writer(method, seed, history=history)
        return replayed

    def on_seed_started(self, method: str, seed: int, replayed: int) -> None:
        self._handle._emit(SeedStarted(method=method, seed=seed, replayed=replayed))

    def on_evaluation(self, method, seed, evaluation, simulator) -> None:
        cell = self._cell(method, seed)
        # Persist before announcing: once the Checkpointed event is
        # visible, the evaluation it covers must already be durable.
        writer = cell.get("writer")
        count = writer.append(evaluation) if writer is not None else 0
        best = min(cell.get("best", float("inf")), evaluation.cost)
        cell["best"] = best
        delta = None
        if simulator.telemetry is not None:
            snapshot = simulator.telemetry.as_dict()
            delta = snapshot_delta(cell.get("telemetry") or {}, snapshot)
            cell["telemetry"] = snapshot
        self._handle._emit(
            EvaluationDone(
                method=method,
                seed=seed,
                sim_index=evaluation.sim_index,
                cost=evaluation.cost,
                area_um2=evaluation.area_um2,
                delay_ns=evaluation.delay_ns,
                best_cost=best,
                telemetry_delta=delta,
            )
        )
        if writer is not None:
            self._handle._emit(
                Checkpointed(
                    method=method,
                    seed=seed,
                    path=writer.history_path,
                    evaluations=count,
                )
            )
        self.check_interrupt()

    def on_training(self, method, seed, info) -> None:
        self._handle._emit(
            TrainingRoundFinished(
                method=method,
                seed=seed,
                round=int(info.get("round", 0)),
                epochs=int(info.get("epochs", 0)),
                epochs_skipped=int(info.get("epochs_skipped", 0)),
                compiled=bool(info.get("compiled", False)),
                losses=dict(info.get("losses", {})),
                counters=info.get("counters"),
            )
        )

    def on_seed_finished(self, method, seed, record, resumed) -> None:
        cell = self._cell(method, seed)
        writer = cell.get("writer")
        if writer is not None and not resumed:
            writer.finish(record)
        self._handle._emit(
            SeedFinished(method=method, seed=seed, record=record, resumed=resumed)
        )


class RunHandle:
    """A submitted experiment: observe, interrupt, await, resume.

    Built by :meth:`repro.api.Session.submit` /
    :meth:`~repro.api.Session.resume` — not directly.  The grid runs on
    a daemon thread owned by the handle; all synthesis still flows
    through the session's engine, so cache sharing and telemetry behave
    exactly as in the blocking API.

    The event stream is a single logical sequence: :meth:`events` may be
    called several times (each call continues where the last consumer
    stopped) but from one thread at a time.
    """

    def __init__(
        self,
        session,
        spec,
        task,
        resolved: List[Tuple],
        seeds: List[int],
        run_dir: Optional[RunDirectory] = None,
        resumed: bool = False,
        on_event=None,
    ) -> None:
        self._session = session
        #: synchronous observer: called with each event *in the thread
        #: that produced it, before it is queued* — the run thread, or a
        #: seed thread when ``parallel_seeds > 1`` (several may call in
        #: concurrently; the callback must then be thread-safe).  Raising
        #: RunInterrupted from it stops the raising seed at that exact
        #: boundary and the rest of the run at their next ones (the
        #: async `events()` stream cannot guarantee even that); any
        #: other exception fails the run.
        self._on_event = on_event
        self.spec = spec
        self._task = task
        self._resolved = resolved
        self._seeds = list(seeds)
        self.run_dir = run_dir
        self._resumed = resumed
        self.run_id = (
            run_dir.run_id if run_dir is not None else f"run-{uuid.uuid4().hex[:12]}"
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._interrupt = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None
        self._status = "running"
        self._stream_closed = False
        self._thread = threading.Thread(
            target=self._execute, name=f"repro-{self.run_id}", daemon=True
        )

    def _start(self) -> "RunHandle":
        self._thread.start()
        return self

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """``running`` | ``finished`` | ``interrupted`` | ``failed``."""
        return self._status

    @property
    def run_dir_path(self) -> Optional[str]:
        return self.run_dir.path if self.run_dir is not None else None

    def interrupt(self) -> None:
        """Ask the run to stop at the next simulator query boundary.

        Returns immediately; the run settles asynchronously (drain
        :meth:`events` or call :meth:`wait`).  Already-recorded work is
        never lost: with a run directory the run resumes bit-identically
        via :meth:`repro.api.Session.resume`.
        """
        self._interrupt.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run thread settles; True if it did."""
        self._thread.join(timeout)
        return not self._thread.is_alive()

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def events(self) -> Iterator[RunEvent]:
        """Yield run events until (and including) ``ExperimentFinished``.

        Iterating drives nothing — the run progresses regardless — but
        is how a caller observes progress and reacts (e.g. calling
        :meth:`interrupt` after a particular ``Checkpointed`` event).
        """
        while not self._stream_closed:
            event = self._queue.get()
            if event is _SENTINEL:
                self._stream_closed = True
                break
            yield event

    def result(self, timeout: Optional[float] = None):
        """Drain remaining events and return the ExperimentResult.

        Raises ``TimeoutError`` if the run has not settled within
        ``timeout`` seconds, the run's error if it failed, and
        :class:`~repro.opt.runner.RunInterrupted` if it was interrupted
        (the run directory named in the message resumes it).
        """
        # Join first so the timeout is honored: the terminal sentinel is
        # queued before the run thread exits, so draining afterwards
        # never blocks.
        if not self.wait(timeout):
            raise TimeoutError(f"run {self.run_id} still settling after {timeout}s")
        for _ in self.events():
            pass
        if self._error is not None:
            raise self._error
        if self._status == "interrupted":
            where = (
                f"; resume it with Session.resume({self.run_dir_path!r})"
                if self.run_dir is not None
                else " (no run directory — nothing was persisted)"
            )
            raise RunInterrupted(f"run {self.run_id} was interrupted{where}")
        return self._result

    # ------------------------------------------------------------------
    # Execution (background thread)
    # ------------------------------------------------------------------
    def _emit(self, event: RunEvent, guard: bool = False) -> None:
        error: Optional[BaseException] = None
        if self._on_event is not None:
            try:
                self._on_event(event)
            except BaseException as exc:
                if isinstance(exc, RunInterrupted):
                    # An early-stop policy interrupted from one seed
                    # thread: flag the whole run so sibling parallel
                    # seeds stop at their own next query boundaries too.
                    self._interrupt.set()
                error = exc
        # The event reaches the async stream no matter what the callback
        # did — the evaluation it announces is already recorded, and the
        # terminal event (guard=True) must always close the stream.
        self._queue.put(event)
        if error is not None and not guard:
            raise error

    def _execute(self) -> None:
        from .session import ExperimentResult, _sum_telemetry

        status = "failed"
        # Durable runs trace by default: spans stream to the run
        # directory's trace.jsonl through a process-ambient tracer, and
        # the whole grid lives under one "experiment" root span that
        # doubles as the default parent for parallel-seed threads.
        sink = tracer = activation = root = None
        if self.run_dir is not None and _tracing_enabled():
            try:
                sink = TraceSink(self.run_dir.trace_path())
                tracer = Tracer(sink=sink)
                activation = tracer.activate()
                activation.__enter__()
            except (OSError, RuntimeError):
                # Unwritable directory, or another traced run is already
                # active in this process: run untraced rather than fail.
                if sink is not None:
                    sink.close()
                sink = tracer = activation = None
        try:
            if self.run_dir is not None:
                self.run_dir.set_status("running")
            if tracer is not None:
                root = tracer.span(
                    "experiment",
                    attrs={
                        "run_id": self.run_id,
                        "budget": self.spec.budget,
                        "methods": [m.display_name for m, _, _ in self._resolved],
                        "seeds": list(self._seeds),
                        "resumed": self._resumed,
                    },
                    default=True,
                )
                root.__enter__()
            self._emit(
                ExperimentStarted(
                    run_id=self.run_id,
                    run_dir=self.run_dir_path,
                    spec=self.spec,
                    methods=tuple(m.display_name for m, _, _ in self._resolved),
                    seeds=tuple(self._seeds),
                    resumed=self._resumed,
                    trace_path=(
                        self.run_dir.trace_path() if tracer is not None else None
                    ),
                )
            )
            observer = _StreamingGridObserver(self)
            records: Dict[str, List[RunRecord]] = {}
            for method_spec, entry, config in self._resolved:
                observer.check_interrupt()
                records[method_spec.display_name] = _run_seed_grid(
                    lambda seed, _factory=entry.factory, _config=config: _factory(
                        _config
                    ),
                    self._task,
                    self.spec.budget,
                    self._seeds,
                    method_name=method_spec.display_name,
                    engine=self._session.engine,
                    parallel_seeds=self._session.parallel_seeds,
                    observer=observer,
                )
            result = ExperimentResult(
                spec=self.spec,
                records=records,
                telemetry=_sum_telemetry(
                    [
                        r.telemetry
                        for rs in records.values()
                        for r in rs
                        if r.telemetry is not None
                    ]
                ),
                run_dir=self.run_dir_path,
                trace_path=(
                    self.run_dir.trace_path() if tracer is not None else None
                ),
            )
            if self.run_dir is not None:
                self.run_dir.write_final_records(result.all_records())
            self._result = result
            status = "finished"
        except RunInterrupted:
            status = "interrupted"
        except BaseException as error:  # surfaced by result()
            self._error = error
            status = "failed"
        finally:
            self._status = status
            # Close the trace before announcing the terminal status: a
            # consumer reacting to ExperimentFinished must find the
            # root span already durable in trace.jsonl.
            if root is not None:
                root.set_attr("status", status)
                root.finish()
            if activation is not None:
                activation.__exit__(None, None, None)
            if sink is not None:
                sink.close()
            if self.run_dir is not None:
                # Nothing here may stop the terminal event + sentinel
                # from reaching the queue — a consumer would hang on a
                # stream that never closes.
                try:
                    self.run_dir.set_status(status)
                except Exception:
                    pass  # a corrupted run dir must not mask the outcome
                try:
                    self.run_dir.release_lock()
                except Exception:
                    pass
            self._emit(
                ExperimentFinished(
                    run_id=self.run_id, status=status, run_dir=self.run_dir_path
                ),
                guard=True,
            )
            self._queue.put(_SENTINEL)

    def __repr__(self) -> str:
        return (
            f"RunHandle({self.run_id}, status={self._status!r}, "
            f"run_dir={self.run_dir_path!r})"
        )
