"""``python -m repro`` — the command-line frontend over specs + sessions.

Five subcommands:

``run <spec.json>`` / ``run --resume <run_dir>``
    Load, validate and execute a declarative experiment spec; print the
    per-method summary table and optionally persist the run records.
    ``--out-dir`` makes the run durable (a resumable run directory with
    per-seed evaluation history checkpointed after every simulation);
    Ctrl-C then stops it losslessly and ``--resume <run_dir>`` continues
    it bit-identically.  ``--progress`` streams per-seed best-cost lines
    while the run executes (quiet by default so CI logs stay clean).
``status <run_dir>``
    Inspect a run directory without touching it: overall lifecycle
    state plus a per-(method, seed) table of done/partial/pending cells.
    ``--follow`` then tails the run's live span stream (``trace.jsonl``)
    until the experiment root span lands or Ctrl-C.
``report <run_dir | trace.jsonl>``
    Post-hoc trace analysis: the hierarchical span tree with total/self
    attribution, the top-N hottest span names, the stage-seconds
    breakdown reproduced from the trace alone, and ``--perfetto`` to
    export a ``chrome://tracing`` / Perfetto-loadable JSON.
``methods``
    List every registered method with its config fields and defaults
    (the vocabulary a spec's ``params`` may use).
``bench <name>``
    Run one of the built-in preset experiments (reduced-scale versions
    of the paper's grid) without writing a spec file first; ``--list``
    shows them, ``--dump-spec`` prints a preset as JSON to copy and
    edit.
``serve start|stop|status|compact`` (and the internal ``serve run``)
    Manage a shared evaluation daemon (:mod:`repro.serve`): ``start``
    spawns one in the background and waits until it answers, ``stop``
    asks it to drain gracefully, ``status`` prints scheduler/cache
    stats, ``compact`` dedups and garbage-collects a cache directory's
    JSONL shards.  Runs attach to a daemon transparently whenever
    ``$REPRO_ENGINE_SOCKET`` names its socket.

``--workers``, ``--cache-dir`` and ``--parallel-seeds`` override the
spec's advisory :class:`~repro.api.spec.EngineSpec`; ``--out`` writes
records via :mod:`repro.opt.records_io`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..utils.tables import format_median_iqr, format_table
from . import registry
from .events import (
    EvaluationDone,
    ExperimentStarted,
    RunEvent,
    SeedFinished,
    SeedStarted,
)
from .rundir import RunDirectory
from .session import Session
from .spec import EngineSpec, ExperimentSpec, MethodSpec, TaskSpec, load_spec

__all__ = ["main", "bench_presets"]


# ----------------------------------------------------------------------
# Built-in preset experiments (reduced scale: seconds-to-minutes on CPU).
# ----------------------------------------------------------------------
def _tiny_vae_params() -> Dict[str, Any]:
    return dict(
        latent_dim=8,
        base_channels=4,
        hidden_dim=32,
        initial_samples=16,
        first_round_epochs=6,
        train=dict(epochs=4, batch_size=16),
        search=dict(num_parallel=6, num_steps=12, capture_every=6),
    )


def bench_presets() -> Dict[str, ExperimentSpec]:
    """Named ready-to-run experiments for ``python -m repro bench``."""
    vae = _tiny_vae_params()
    return {
        # The 4-bit design space holds only 7 unique legal graphs, so the
        # budget must stay below that for budget-driven methods to exhaust.
        "tiny": ExperimentSpec(
            name="tiny",
            task=TaskSpec(circuit_type="adder", n=4, delay_weight=0.66),
            methods=(
                MethodSpec("GA", params=dict(population_size=8)),
                MethodSpec("Random"),
            ),
            budget=6,
            num_seeds=2,
            curve_points=3,
        ),
        "fig3-panel": ExperimentSpec(
            name="fig3-panel",
            task=TaskSpec(circuit_type="adder", n=8, delay_weight=0.33),
            methods=(
                MethodSpec("CircuitVAE", params=vae),
                MethodSpec("GA", params=dict(population_size=16)),
                MethodSpec("RL", params=dict(episode_length=12)),
                MethodSpec(
                    "BO",
                    params=dict(
                        vae=vae, batch_per_round=8, candidate_pool=64, gp_max_points=48
                    ),
                ),
            ),
            budget=60,
            num_seeds=2,
        ),
        "fig7-gray": ExperimentSpec(
            name="fig7-gray",
            task=TaskSpec(circuit_type="gray", n=8, delay_weight=0.6),
            methods=(
                MethodSpec("CircuitVAE", params=vae),
                MethodSpec("GA", params=dict(population_size=16)),
            ),
            budget=60,
            num_seeds=2,
        ),
        "lzd": ExperimentSpec(
            name="lzd",
            task=TaskSpec(circuit_type="lzd", n=8, delay_weight=0.6),
            methods=(
                MethodSpec("GA", params=dict(population_size=16)),
                MethodSpec("Random"),
            ),
            budget=40,
            num_seeds=2,
        ),
    }


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------
class _ProgressPrinter:
    """Folds the event stream into per-seed best-cost lines.

    Prints a line when a seed starts/finishes and whenever its running
    best improves — enough to watch a long run converge without echoing
    every checkpoint.
    """

    def __init__(self) -> None:
        self._best: Dict[Tuple[str, int], float] = {}

    def __call__(self, event: RunEvent) -> None:
        if isinstance(event, ExperimentStarted):
            where = f" -> {event.run_dir}" if event.run_dir else ""
            verb = "resuming" if event.resumed else "running"
            print(f"{verb} {event.run_id}{where}")
        elif isinstance(event, SeedStarted):
            note = f" (replaying {event.replayed} recorded evals)" if event.replayed else ""
            print(f"[{event.method} seed {event.seed}] started{note}")
        elif isinstance(event, EvaluationDone):
            key = (event.method, event.seed)
            if event.best_cost < self._best.get(key, float("inf")):
                self._best[key] = event.best_cost
                print(
                    f"[{event.method} seed {event.seed}] "
                    f"sim {event.sim_index}: best {event.best_cost:.4f}"
                )
        elif isinstance(event, SeedFinished):
            record = event.record
            source = "ledger" if event.resumed else f"{record.num_simulations} sims"
            best = record.best_cost() if record.num_simulations else float("nan")
            print(
                f"[{event.method} seed {event.seed}] finished "
                f"({source}), best {best:.4f}"
            )


def _resolve_trace_path(target: str) -> str:
    """``report``'s argument: a run directory or a trace file directly."""
    from ..obs.sink import TRACE_FILENAME

    if os.path.isdir(target):
        return os.path.join(target, TRACE_FILENAME)
    return target


def _print_report(args: argparse.Namespace) -> None:
    from ..obs.report import (
        build_tree,
        coverage,
        render_hot_stages,
        render_tree,
        stage_totals,
    )
    from ..obs.sink import export_perfetto, read_trace

    path = _resolve_trace_path(args.target)
    if not os.path.exists(path):
        raise ValueError(
            f"no trace at {path} (durable runs write one unless REPRO_TRACE=0)"
        )
    spans = read_trace(path)
    if not spans:
        raise ValueError(f"{path} holds no complete spans yet")
    roots = build_tree(spans)
    print(f"trace: {path}  ({len(spans)} spans)")
    for root in roots:
        if root.children:
            print(
                f"coverage: {coverage(root):.1%} of {root.name!r} "
                f"({root.duration:.3f}s) covered by direct children"
            )
    print()
    print(render_tree(roots, max_depth=args.max_depth, min_seconds=args.min_seconds))
    print()
    print(render_hot_stages(roots, top=args.top))
    totals = stage_totals(spans)
    if totals:
        print("\nstage seconds (reproduced from imposed stage spans):")
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<24} {seconds:.3f}")
    if args.perfetto is not None:
        out = export_perfetto(path, args.perfetto or None)
        print(f"\nperfetto trace written to {out}")


def _follow_status(run_dir: RunDirectory, interval: float) -> None:
    """Tail the run's span stream until the experiment root span lands.

    The experiment root is the last span the run writes before closing
    its sink, so seeing it finish means the run is over.  A terminal run
    with no trace file (``REPRO_TRACE=0``) is reported instead of waited
    on forever.
    """
    from ..obs.report import follow_trace

    trace_path = run_dir.trace_path()
    if not os.path.exists(trace_path) and run_dir.status in (
        "finished",
        "interrupted",
        "failed",
    ):
        print(f"(no trace stream: {trace_path} does not exist)")
        return
    print(f"following {trace_path}  (Ctrl-C to stop)")
    try:
        for span in follow_trace(trace_path, poll_interval=interval):
            duration_ms = (span.get("t1", 0.0) - span.get("t0", 0.0)) * 1e3
            attrs = span.get("attrs") or {}
            tags = " ".join(
                f"{key}={attrs[key]}"
                for key in ("method", "seed", "batch", "outcome", "status")
                if key in attrs
            )
            print(f"{span.get('name', '?'):<20} {duration_ms:10.2f} ms  {tags}")
            if span.get("name") == "experiment" and span.get("parent_id") is None:
                return
    except KeyboardInterrupt:
        print("", file=sys.stderr)


def _print_status(run_dir: RunDirectory) -> None:
    spec = run_dir.spec()
    task = spec.task
    print(
        f"run {run_dir.run_id}: {run_dir.status}  ({run_dir.path})\n"
        f"spec {spec.name}: {task.circuit_type}{task.n} @ w{task.delay_weight} "
        f"({task.library}), budget {spec.budget}, seeds {spec.seed_list()}"
    )
    rows = []
    for cell in run_dir.progress():
        best = "-" if cell["best_cost"] is None else f"{cell['best_cost']:.4f}"
        rows.append(
            [
                cell["method"],
                str(cell["seed"]),
                cell["state"],
                f"{cell['evaluations']}/{spec.budget}",
                best,
            ]
        )
    print(format_table(["method", "seed", "state", "evals", "best cost"], rows))


def _print_result(result, out: Optional[str]) -> None:
    from ..opt.results import median_iqr

    spec = result.spec
    task = spec.task
    print(
        f"{spec.name}: {task.circuit_type}{task.n} @ w{task.delay_weight} "
        f"({task.library}), budget {spec.budget}, seeds {spec.seed_list()}"
    )
    rows = []
    for name, records in result.records.items():
        best = median_iqr([r.best_cost() for r in records])
        sims = max(r.num_simulations for r in records)
        rows.append([name, format_median_iqr(*best, digits=3), str(sims)])
    print(format_table(["method", "best cost (median, IQR)", "sims used"], rows))
    if result.telemetry:
        t = result.telemetry
        print(
            f"engine: {t.get('synth_calls', 0)} synthesis calls, "
            f"{t.get('memory_hits', 0)} memory hits, "
            f"{t.get('disk_hits', 0)} disk hits"
        )
    if result.run_dir:
        print(f"run directory: {result.run_dir}")
    if out:
        result.save(out)
        print(f"records written to {out}")


def _default_repr(field: dataclasses.Field) -> str:
    if field.default is not dataclasses.MISSING:
        return repr(field.default)
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f"{field.default_factory().__class__.__name__}(...)"
    return "<required>"


def _print_methods(as_json: bool) -> None:
    if as_json:
        payload = {}
        for name in registry.available_methods():
            entry = registry.get_method(name)
            payload[name] = {
                "config": entry.config_cls.__name__,
                "params": {
                    f.name: _default_repr(f)
                    for f in dataclasses.fields(entry.config_cls)
                },
            }
        print(json.dumps(payload, indent=2))
        return
    for name in registry.available_methods():
        entry = registry.get_method(name)
        print(f"{name}  ({entry.config_cls.__name__})")
        for f in dataclasses.fields(entry.config_cls):
            print(f"    {f.name} = {_default_repr(f)}")


# ----------------------------------------------------------------------
# serve: daemon management
# ----------------------------------------------------------------------
def _serve_socket(args: argparse.Namespace) -> str:
    from ..serve.protocol import default_socket_path

    path = args.socket or default_socket_path()
    if not path:
        raise ValueError(
            "no socket path: pass --socket or set $REPRO_ENGINE_SOCKET"
        )
    return path


def _serve_start(args: argparse.Namespace) -> int:
    import subprocess
    import time as _time

    from ..serve.client import ServeClient, ServeUnavailable

    path = _serve_socket(args)
    try:
        client = ServeClient(path, connect_timeout=1.0)
    except ServeUnavailable:
        pass
    else:
        print(
            f"error: a daemon already serves {path} (pid {client.server_pid})",
            file=sys.stderr,
        )
        client.close()
        return 2
    log_path = args.log or path + ".log"
    cmd = [sys.executable, "-m", "repro", "serve", "run", "--socket", path,
           "--quantum", str(args.quantum)]
    if args.cache_dir:
        cmd += ["--cache-dir", args.cache_dir]
    if args.workers is not None:
        cmd += ["--workers", str(args.workers)]
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            cmd,
            stdin=subprocess.DEVNULL,
            stdout=log,
            stderr=log,
            start_new_session=True,  # survives this shell; SIGTERM to stop
        )
    deadline = _time.time() + 15.0
    while _time.time() < deadline:
        if process.poll() is not None:
            print(
                f"error: daemon exited immediately "
                f"(code {process.returncode}); see {log_path}",
                file=sys.stderr,
            )
            return 1
        try:
            client = ServeClient(path, connect_timeout=0.5)
        except ServeUnavailable:
            _time.sleep(0.1)
            continue
        print(
            f"daemon serving {path} (pid {client.server_pid}, log {log_path})"
        )
        client.close()
        return 0
    print(f"error: daemon did not answer within 15s; see {log_path}",
          file=sys.stderr)
    return 1


def _serve_stop(args: argparse.Namespace) -> int:
    import signal
    import time as _time

    from ..serve.client import ServeClient, ServeUnavailable
    from ..serve.daemon import pid_file_path
    from ..utils.locks import pid_alive, read_lock_pid

    path = _serve_socket(args)
    try:
        client = ServeClient(path, connect_timeout=2.0)
    except ServeUnavailable:
        # No live socket: maybe a daemon that lost it — use the pid file.
        pid = read_lock_pid(pid_file_path(path))
        if pid is None or not pid_alive(pid):
            print(f"no daemon at {path}")
            return 0
        os.kill(pid, signal.SIGTERM)
    else:
        client.shutdown()
        client.close()
    deadline = _time.time() + args.timeout
    while _time.time() < deadline:
        if not os.path.exists(path):
            print("daemon stopped (drained)")
            return 0
        _time.sleep(0.1)
    print(
        f"daemon is still draining after {args.timeout:.0f}s "
        "(queued work finishes first; re-run stop to keep waiting)",
        file=sys.stderr,
    )
    return 1


def _serve_status(args: argparse.Namespace) -> int:
    from ..serve.client import ServeClient, ServeUnavailable

    path = _serve_socket(args)
    try:
        client = ServeClient(path, connect_timeout=2.0)
    except ServeUnavailable as error:
        print(f"no daemon at {path} ({error})", file=sys.stderr)
        return 1
    stats = client.stats()
    client.close()
    if args.json:
        payload = stats.to_dict()
        payload.pop("v", None)
        payload.pop("type", None)
        print(json.dumps(payload, indent=2))
        return 0
    state = "draining" if stats.draining else "serving"
    print(
        f"daemon pid {stats.server_pid}: {state}, "
        f"up {stats.uptime_seconds:.0f}s  ({path})\n"
        f"jobs: {stats.jobs_completed} completed, "
        f"{stats.jobs_failed} failed, {stats.jobs_cancelled} cancelled"
    )
    if stats.queues:
        rows = [[tenant, str(depth)] for tenant, depth in sorted(stats.queues.items())]
        print(format_table(["tenant", "queued graphs"], rows))
    else:
        print("queues: idle")
    if stats.schedule:
        tail = stats.schedule[-8:]
        print(
            "recent schedule: "
            + "  ".join(f"{s['tenant']}x{s['count']}" for s in tail)
        )
    telemetry = stats.telemetry
    print(
        f"engine: {telemetry.get('synth_calls', 0)} synthesis calls, "
        f"{telemetry.get('memory_hits', 0)} memory hits, "
        f"{telemetry.get('disk_hits', 0)} disk hits"
    )
    cache = stats.cache
    print(
        f"cache: {cache.get('entries_in_memory', 0)} entries in memory "
        f"({cache.get('cache_dir') or 'memory-only'})"
    )
    return 0


def _serve_compact(args: argparse.Namespace) -> int:
    from ..serve.compact import compact_cache_dir

    report = compact_cache_dir(
        args.cache_dir,
        max_age_seconds=args.max_age_seconds,
        max_entries=args.max_entries,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    if not report.shards:
        print(f"{args.cache_dir}: no shards to compact")
        return 0
    rows = [
        [
            s["shard"],
            f"{s['lines_before']} -> {s['lines_after']}",
            str(s["duplicates_dropped"]),
            str(s["evicted"]),
            str(s["corrupt_dropped"]),
        ]
        for s in report.shards
    ]
    print(format_table(
        ["shard", "lines", "dups dropped", "evicted", "corrupt"], rows
    ))
    saved = report.bytes_before - report.bytes_after
    print(
        f"total: {report.lines_before} -> {report.lines_after} lines, "
        f"{saved} bytes reclaimed"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "compact":
        return _serve_compact(args)
    if args.serve_command == "run":
        from ..serve.daemon import run_daemon

        run_daemon(
            _serve_socket(args),
            cache_dir=args.cache_dir,
            workers=args.workers,
            quantum=args.quantum,
        )
        return 0
    if args.serve_command == "start":
        return _serve_start(args)
    if args.serve_command == "stop":
        return _serve_stop(args)
    return _serve_status(args)


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="synthesis worker processes (overrides the spec's engine block)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent evaluation-cache directory (overrides the spec)",
    )
    parser.add_argument(
        "--parallel-seeds", type=int, default=None,
        help="seeds run concurrently per method (overrides the spec)",
    )
    parser.add_argument(
        "--out", default=None, help="write run records to this path"
    )
    parser.add_argument(
        "--out-dir", default=None,
        help="create a durable, resumable run directory at this path "
        "(per-seed history checkpointed after every simulation)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="stream per-seed best-cost lines while the run executes",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative CircuitVAE-reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="execute an experiment spec (JSON file) or resume a run dir"
    )
    run_p.add_argument(
        "spec", nargs="?", default=None,
        help="path to an ExperimentSpec JSON file (omit with --resume)",
    )
    run_p.add_argument(
        "--resume", default=None, metavar="RUN_DIR",
        help="continue an interrupted run directory (the spec, finished "
        "cells and recorded evaluations all come from the directory)",
    )
    _add_execution_flags(run_p)

    status_p = sub.add_parser("status", help="inspect a run directory")
    status_p.add_argument("run_dir", help="path to a run directory")
    status_p.add_argument(
        "--follow", action="store_true",
        help="tail the run's live span stream (trace.jsonl) after the "
        "status table, until the run finishes or Ctrl-C",
    )
    status_p.add_argument(
        "--interval", type=float, default=0.5,
        help="poll interval in seconds for --follow (default 0.5)",
    )

    report_p = sub.add_parser(
        "report", help="analyze a run's trace: span tree + time attribution"
    )
    report_p.add_argument(
        "target", help="a run directory (containing trace.jsonl) or a trace file"
    )
    report_p.add_argument(
        "--top", type=int, default=10,
        help="hot-stage table size (default 10)",
    )
    report_p.add_argument(
        "--max-depth", type=int, default=None,
        help="truncate the span tree below this depth",
    )
    report_p.add_argument(
        "--min-seconds", type=float, default=0.0,
        help="hide spans shorter than this from the tree",
    )
    report_p.add_argument(
        "--perfetto", nargs="?", const="", default=None, metavar="OUT",
        help="also export a Perfetto/chrome://tracing JSON "
        "(default: <trace>.perfetto.json next to the trace)",
    )

    methods_p = sub.add_parser("methods", help="list registered methods")
    methods_p.add_argument("--json", action="store_true", help="machine-readable")

    # registered by the subsystem it fronts (repro.check owns the flags)
    from ..check.cli import add_check_parser

    add_check_parser(sub)

    bench_p = sub.add_parser("bench", help="run a built-in preset experiment")
    bench_p.add_argument("name", nargs="?", help="preset name (see --list)")
    bench_p.add_argument("--list", action="store_true", help="list presets")
    bench_p.add_argument(
        "--dump-spec", action="store_true",
        help="print the preset's JSON spec instead of running it",
    )
    _add_execution_flags(bench_p)

    serve_p = sub.add_parser(
        "serve", help="manage a shared evaluation daemon (repro.serve)"
    )
    serve_sub = serve_p.add_subparsers(dest="serve_command", required=True)

    def _socket_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--socket", default=None,
            help="daemon unix-socket path (default: $REPRO_ENGINE_SOCKET)",
        )

    def _daemon_flags(p: argparse.ArgumentParser) -> None:
        _socket_flag(p)
        p.add_argument(
            "--cache-dir", default=None,
            help="persistent evaluation-cache directory for the daemon's "
            "engine (default: $REPRO_CACHE_DIR)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="synthesis worker processes for the daemon's engine",
        )
        p.add_argument(
            "--quantum", type=int, default=8,
            help="fair-share quantum: graphs per tenant per scheduler "
            "turn (default 8)",
        )

    start_p = serve_sub.add_parser(
        "start", help="spawn a daemon in the background and wait for it"
    )
    _daemon_flags(start_p)
    start_p.add_argument(
        "--log", default=None,
        help="daemon log file (default: <socket>.log)",
    )

    serve_run_p = serve_sub.add_parser(
        "run", help="run the daemon in the foreground (what start spawns)"
    )
    _daemon_flags(serve_run_p)

    stop_p = serve_sub.add_parser(
        "stop", help="ask the daemon to drain gracefully and exit"
    )
    _socket_flag(stop_p)
    stop_p.add_argument(
        "--timeout", type=float, default=15.0,
        help="seconds to wait for the drain to finish (default 15)",
    )

    serve_status_p = serve_sub.add_parser(
        "status", help="print daemon scheduler/cache/telemetry stats"
    )
    _socket_flag(serve_status_p)
    serve_status_p.add_argument(
        "--json", action="store_true", help="machine-readable"
    )

    compact_p = serve_sub.add_parser(
        "compact", help="dedup + GC a cache directory's JSONL shards"
    )
    compact_p.add_argument("cache_dir", help="evaluation-cache directory")
    compact_p.add_argument(
        "--max-age-seconds", type=float, default=None,
        help="also evict records older than this (unstamped records "
        "count as infinitely old)",
    )
    compact_p.add_argument(
        "--max-entries", type=int, default=None,
        help="also keep only the newest N records per shard",
    )
    compact_p.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    return parser


def _effective_engine(spec: ExperimentSpec, args: argparse.Namespace) -> EngineSpec:
    """The spec's engine block with CLI flags applied — building an
    EngineSpec runs the same validation a spec-file value gets, so a bad
    ``--workers 0`` fails in the friendly-error zone, not mid-run."""
    return EngineSpec(
        cache_dir=args.cache_dir if args.cache_dir is not None else spec.engine.cache_dir,
        workers=args.workers if args.workers is not None else spec.engine.workers,
        parallel_seeds=(
            args.parallel_seeds
            if args.parallel_seeds is not None
            else spec.engine.parallel_seeds
        ),
    )


def _execute(
    spec: ExperimentSpec,
    engine: EngineSpec,
    out: Optional[str],
    out_dir: Optional[str] = None,
    resume: Optional[RunDirectory] = None,
    progress: bool = False,
) -> int:
    """Run (or resume) one experiment and print the outcome.

    Ctrl-C is first-class: the run is asked to stop at its next query
    boundary, allowed to settle (so the run directory stays consistent),
    and the resume command is printed.  Returns a shell exit code.
    """
    printer = _ProgressPrinter() if progress else None
    with Session.from_spec(engine) as session:
        try:
            handle = (
                session.resume(resume) if resume is not None
                else session.submit(spec, out_dir=out_dir)
            )
        except ValueError as error:
            # e.g. --out-dir pointing at a directory that already holds
            # a run: validation, so it gets the friendly one-liner.
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            for event in handle.events():
                if printer is not None:
                    printer(event)
        except KeyboardInterrupt:
            handle.interrupt()
            handle.wait()
            # The run may have settled (finished or failed) before the
            # interrupt landed; only a genuinely interrupted run gets
            # the resume hint — otherwise report the real outcome below.
            if handle.status == "interrupted":
                if handle.run_dir_path:
                    print(
                        f"\ninterrupted — continue with:\n"
                        f"  python -m repro run --resume {handle.run_dir_path}",
                        file=sys.stderr,
                    )
                else:
                    print(
                        "\ninterrupted (no run directory; nothing kept)",
                        file=sys.stderr,
                    )
                return 130
        result = handle.result()
    _print_result(result, out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "methods":
        _print_methods(args.json)
        return 0
    if args.command == "check":
        from ..check.cli import run_check_command

        return run_check_command(args)

    # Only spec/run-dir loading and validation get the friendly one-line
    # treatment; failures *during* execution are real bugs and keep
    # their traceback.
    resume = getattr(args, "resume", None)
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "status":
            run_dir = RunDirectory.open(args.run_dir)
            _print_status(run_dir)
            if args.follow:
                _follow_status(run_dir, args.interval)
            return 0
        if args.command == "report":
            _print_report(args)
            return 0
        if args.command == "run":
            if resume is not None:
                if args.spec is not None:
                    raise ValueError(
                        "--resume takes its spec from the run directory; "
                        "drop the spec argument"
                    )
                if args.out_dir is not None:
                    raise ValueError(
                        "--resume continues its own run directory; "
                        "--out-dir cannot redirect it"
                    )
                # opened once; _execute resumes this same instance
                resume = RunDirectory.open(resume)
                spec = resume.spec()
            elif args.spec is None:
                raise ValueError("run needs a spec file (or --resume <run_dir>)")
            else:
                spec = load_spec(args.spec)
        else:  # bench
            presets = bench_presets()
            if args.list or args.name is None:
                for name, preset in sorted(presets.items()):
                    task = preset.task
                    print(
                        f"{name}: {task.circuit_type}{task.n} @ w{task.delay_weight}, "
                        f"{len(preset.methods)} methods, budget {preset.budget}"
                    )
                return 0
            if args.name not in presets:
                raise ValueError(
                    f"unknown preset {args.name!r}; "
                    f"available: {', '.join(sorted(presets))}"
                )
            spec = presets[args.name]
            if args.dump_spec:
                print(spec.to_json())
                return 0
        engine = _effective_engine(spec, args)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    return _execute(
        spec,
        engine,
        args.out,
        out_dir=args.out_dir,
        resume=resume,
        progress=args.progress,
    )
