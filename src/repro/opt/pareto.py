"""Pareto-frontier utilities for (area, delay) trade-off analysis.

Backs the Fig. 6 comparison (Pareto dominance against the commercial
tool's offerings) and the multi-objective view of any run history: the
scalar cost of Sec. 3 is a weighted sum, so the best designs across a
sweep of delay weights trace a Pareto frontier in (area, delay).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .simulator import Evaluation

__all__ = ["dominates", "pareto_front", "pareto_evaluations", "hypervolume_2d"]

Point = Tuple[float, float]


def dominates(a: Point, b: Point, strict: bool = True) -> bool:
    """True when ``a`` is at least as good as ``b`` in both objectives
    (minimization) and, if ``strict``, better in at least one."""
    at_least = a[0] <= b[0] + 1e-12 and a[1] <= b[1] + 1e-12
    if not at_least:
        return False
    if not strict:
        return True
    return a[0] < b[0] - 1e-12 or a[1] < b[1] - 1e-12


def pareto_front(points: Iterable[Point]) -> List[Point]:
    """Non-dominated subset, sorted by the first objective.

    Duplicate points are collapsed.  O(n log n) sweep: sort by x then keep
    points with strictly decreasing y.
    """
    unique = sorted(set((float(a), float(b)) for a, b in points))
    front: List[Point] = []
    best_y = float("inf")
    for x, y in unique:
        if y < best_y - 1e-12:
            front.append((x, y))
            best_y = y
    return front


def pareto_evaluations(evaluations: Sequence[Evaluation]) -> List[Evaluation]:
    """Non-dominated evaluations by (area, delay), sorted by area."""
    chosen: List[Evaluation] = []
    for e in evaluations:
        point = (e.area_um2, e.delay_ns)
        if not any(
            dominates((o.area_um2, o.delay_ns), point) for o in evaluations
        ):
            chosen.append(e)
    # Deduplicate identical metric pairs, keep area order.
    seen = set()
    out = []
    for e in sorted(chosen, key=lambda e: (e.area_um2, e.delay_ns)):
        key = (round(e.area_um2, 9), round(e.delay_ns, 9))
        if key not in seen:
            seen.add(key)
            out.append(e)
    return out


def hypervolume_2d(front: Sequence[Point], reference: Point) -> float:
    """Dominated hypervolume (area between the front and a reference point).

    The reference must be worse than every front point in both objectives;
    larger hypervolume = better frontier.  Standard 2-D sweep.
    """
    front = pareto_front(front)
    if not front:
        return 0.0
    rx, ry = reference
    for x, y in front:
        if x > rx + 1e-12 or y > ry + 1e-12:
            raise ValueError("reference point must dominate no front point")
    volume = 0.0
    prev_y = ry
    for x, y in front:
        volume += (rx - x) * (prev_y - y)
        prev_y = y
    return volume
