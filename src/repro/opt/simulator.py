"""The black-box simulation oracle all search methods query.

Wraps a :class:`~repro.circuits.task.CircuitTask` with:

* **budget accounting** — the paper measures sample efficiency in number
  of physical simulations; each *unique* circuit synthesized counts one
  simulation against the budget (re-querying a cached design is free,
  because a real workflow would also memoize synthesis results).
* **legalization** — raw grids/bitvectors are legalized before synthesis,
  so legalization is "part of the objective function" (Sec. 5.1) and two
  encodings of the same legal circuit share a cache entry.
* **history recording** — every new evaluation is appended to a trace used
  to build the cost-vs-simulations curves of Figs. 3 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuits.task import CircuitTask
from ..prefix.graph import PrefixGraph
from ..prefix.legalize import legalize

__all__ = ["Evaluation", "BudgetExhausted", "CircuitSimulator"]


@dataclass(frozen=True)
class Evaluation:
    """One synthesized design and its measured metrics."""

    graph: PrefixGraph
    cost: float
    area_um2: float
    delay_ns: float
    sim_index: int  # how many unique simulations had run *after* this one


class BudgetExhausted(RuntimeError):
    """Raised when a query would exceed the simulation budget."""


class CircuitSimulator:
    """Budgeted, memoizing synthesis oracle for one task."""

    def __init__(self, task: CircuitTask, budget: Optional[int] = None):
        self.task = task
        self.budget = budget
        self._cache: Dict[bytes, Evaluation] = {}
        self.history: List[Evaluation] = []
        #: per-run engine telemetry; None on the plain serial simulator,
        #: an EngineTelemetry on repro.engine's EngineSimulator.  Declared
        #: here so algorithms can time their stages with a plain attribute
        #: access regardless of backend.
        self.telemetry = None
        #: the simulator-boundary hook: called with each *new*
        #: :class:`Evaluation` right after it is appended to ``history``
        #: (cache hits and budget refusals never fire it).  This is how
        #: the streaming run API (:meth:`repro.api.Session.submit`)
        #: observes, checkpoints and interrupts every method without
        #: per-method changes — the hook may raise (e.g.
        #: :class:`repro.opt.runner.RunInterrupted`) to abort the run at
        #: a query boundary; the evaluation it was called with is already
        #: durable in ``history`` at that point.
        self.on_evaluation: Optional[Callable[[Evaluation], None]] = None
        #: abort hook checked at the *start* of every query — cache hits
        #: included, so an interrupt lands at the very next query
        #: boundary even when a method is cycling through already
        #: -evaluated designs and ``on_evaluation`` would never fire.
        #: Raises (e.g. RunInterrupted) to abort; must not mutate state.
        self.check_abort: Optional[Callable[[], None]] = None
        #: training hook: model-based methods (CircuitVAE, latent BO)
        #: call it after each retraining round with a plain info dict
        #: (round index, epochs run/skipped, last losses, compiled-step
        #: counters).  The streaming run API forwards it as a
        #: TrainingRoundFinished event; None means nobody is listening.
        self.on_training: Optional[Callable[[Dict], None]] = None
        #: durable home for training checkpoints: the run-directory
        #: layer points this at the executing (method, seed) cell so
        #: train_model can checkpoint epochs and Session.resume can
        #: skip them.  None for in-memory runs.
        self.train_checkpoint_dir: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def num_simulations(self) -> int:
        """Unique physical simulations performed so far."""
        return len(self.history)

    @property
    def remaining(self) -> Optional[int]:
        if self.budget is None:
            return None
        return max(self.budget - self.num_simulations, 0)

    def exhausted(self) -> bool:
        return self.budget is not None and self.num_simulations >= self.budget

    # ------------------------------------------------------------------
    def canonicalize(self, design: Union[PrefixGraph, np.ndarray]) -> PrefixGraph:
        """Legalize any design representation into a canonical graph."""
        if isinstance(design, PrefixGraph):
            return design
        return legalize(np.asarray(design))

    def _synthesize(self, graph: PrefixGraph) -> Tuple[float, float, float]:
        """Run physical synthesis on one new graph -> (cost, area, delay).

        The single override point for alternative execution backends: the
        batched/parallel/persistent engine
        (:class:`repro.engine.service.EngineSimulator`) replaces only this
        hook (and the batch planner), so budget, cache-identity and
        history semantics live in exactly one place — here.
        """
        result = self.task.synthesize(graph)
        return self.task.cost(result), result.area_um2, result.delay_ns

    def query(self, design: Union[PrefixGraph, np.ndarray]) -> Evaluation:
        """Synthesize a design (or return its cached evaluation).

        Raises :class:`BudgetExhausted` if the design is new and the budget
        is used up.
        """
        if self.check_abort is not None:
            self.check_abort()
        graph = self.canonicalize(design)
        key = graph.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.exhausted():
            raise BudgetExhausted(
                f"simulation budget of {self.budget} exhausted on task {self.task.name}"
            )
        cost, area_um2, delay_ns = self._synthesize(graph)
        evaluation = Evaluation(
            graph=graph,
            cost=cost,
            area_um2=area_um2,
            delay_ns=delay_ns,
            sim_index=self.num_simulations + 1,
        )
        self._cache[key] = evaluation
        self.history.append(evaluation)
        if self.on_evaluation is not None:
            self.on_evaluation(evaluation)
        return evaluation

    def query_plan(
        self, designs, structural_context=()
    ) -> List[Optional[Evaluation]]:
        """Query a batch, one slot per design; None marks a budget refusal.

        Scans the *whole* batch even after the budget runs out: cached
        designs (including duplicates of entries synthesized earlier in
        this very batch) are always served, only genuinely-new designs are
        refused.  ``repro.engine`` overrides this with a batched parallel
        planner that preserves these exact semantics.

        ``structural_context`` is an optional hint — already-evaluated
        designs the batch likely shares structure with (a GA's parents,
        a BO round's incumbents).  The serial simulator ignores it; the
        engine forwards it to the incremental delta planner.  It never
        changes results, only wall-clock.
        """
        plan: List[Optional[Evaluation]] = []
        for design in designs:
            try:
                plan.append(self.query(design))
            except BudgetExhausted:
                plan.append(None)
        return plan

    def query_many(self, designs, structural_context=()) -> List[Evaluation]:
        """Query a batch, silently skipping designs the budget refuses.

        Returns the evaluations obtained, in design order.  Cached hits
        are always served, even for designs that appear *after* the budget
        runs out mid-batch.  ``structural_context`` as in
        :meth:`query_plan`.
        """
        plan = self.query_plan(designs, structural_context=structural_context)
        return [e for e in plan if e is not None]

    # ------------------------------------------------------------------
    def best(self) -> Evaluation:
        """Lowest-cost evaluation so far."""
        if not self.history:
            raise ValueError("no simulations have run yet")
        return min(self.history, key=lambda e: e.cost)

    def best_cost_curve(self) -> np.ndarray:
        """Running minimum cost after each simulation (length = #sims)."""
        costs = np.array([e.cost for e in self.history])
        return np.minimum.accumulate(costs) if len(costs) else costs
