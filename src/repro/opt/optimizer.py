"""Common interface for all search algorithms.

CircuitVAE and every baseline implement :class:`SearchAlgorithm`: given a
budgeted :class:`~repro.opt.simulator.CircuitSimulator`, run until the
budget is exhausted (or the algorithm converges) and leave the evaluation
trace in the simulator.  The harness in :mod:`repro.opt.runner` turns that
trace into :class:`~repro.opt.results.RunRecord` rows.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from .simulator import CircuitSimulator, Evaluation

__all__ = ["SearchAlgorithm"]


class SearchAlgorithm(abc.ABC):
    """Base class for black-box circuit optimizers."""

    #: short name used in tables and figures ("VAE", "GA", "RL", "BO", ...)
    method_name: str = "base"

    @abc.abstractmethod
    def run(self, simulator: CircuitSimulator, rng: np.random.Generator) -> Evaluation:
        """Optimize until the simulator budget is exhausted.

        Implementations must treat :class:`~repro.opt.simulator.BudgetExhausted`
        as the normal termination signal and return the best evaluation
        found (``simulator.best()``).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(method={self.method_name!r})"
