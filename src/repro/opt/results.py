"""Run records, cross-seed aggregation and the paper's summary statistics.

The paper reports, per method and setting:

* cost-vs-simulations curves with the **median and interquartile range**
  over five seeds (Figs. 3 and 7),
* best-design cost/area/delay with IQR (Table 1),
* **VAE speedup** — "the simulation budget for each method to produce its
  best adder divided by the simulation budget for CircuitVAE to obtain an
  equivalent or better circuit" (Table 1).

All of those reductions live here so every bench prints identical
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..prefix.graph import PrefixGraph
from .simulator import CircuitSimulator, Evaluation

__all__ = [
    "RunRecord",
    "best_cost_at",
    "sims_to_reach",
    "aggregate_curves",
    "median_iqr",
    "vae_speedup",
]


@dataclass
class RunRecord:
    """The outcome of one optimization run (one method, one seed)."""

    method: str
    task_name: str
    seed: int
    costs: np.ndarray  # cost of each unique simulation, in query order
    areas: np.ndarray
    delays: np.ndarray
    #: engine telemetry snapshot (cache hit-rate, synthesis throughput,
    #: per-stage seconds) when the run used an engine-backed simulator.
    telemetry: Optional[Dict] = None
    #: the lowest-cost design the run found (first occurrence on ties,
    #: matching :meth:`best_index`); lets record consumers render or
    #: re-synthesize the winner without keeping the full history.
    best_graph: Optional[PrefixGraph] = None

    @classmethod
    def from_simulator(cls, method: str, seed: int, simulator: CircuitSimulator) -> "RunRecord":
        history = simulator.history
        telemetry = simulator.telemetry
        best = min(history, key=lambda e: e.cost) if history else None
        return cls(
            method=method,
            task_name=simulator.task.name,
            seed=seed,
            costs=np.array([e.cost for e in history]),
            areas=np.array([e.area_um2 for e in history]),
            delays=np.array([e.delay_ns for e in history]),
            telemetry=telemetry.as_dict() if telemetry is not None else None,
            best_graph=best.graph if best is not None else None,
        )

    @property
    def num_simulations(self) -> int:
        return len(self.costs)

    def best_curve(self) -> np.ndarray:
        """Running minimum cost after each simulation."""
        return np.minimum.accumulate(self.costs)

    def best_index(self) -> int:
        return int(np.argmin(self.costs))

    def best_cost(self) -> float:
        return float(self.costs.min())

    def best_metrics(self) -> Tuple[float, float, float]:
        """(cost, area, delay) of the best design found."""
        idx = self.best_index()
        return float(self.costs[idx]), float(self.areas[idx]), float(self.delays[idx])


def best_cost_at(record: RunRecord, budget: int) -> float:
    """Best cost achieved within the first ``budget`` simulations."""
    if budget < 1:
        return float("inf")
    usable = record.costs[: min(budget, len(record.costs))]
    return float(usable.min()) if len(usable) else float("inf")


def sims_to_reach(record: RunRecord, threshold: float) -> Optional[int]:
    """First simulation count at which cost <= threshold, or None."""
    hits = np.nonzero(record.costs <= threshold)[0]
    if len(hits) == 0:
        return None
    return int(hits[0]) + 1


def aggregate_curves(
    records: Sequence[RunRecord], budgets: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Median / 25th / 75th percentile of best-cost across seeds at budgets."""
    matrix = np.array(
        [[best_cost_at(record, b) for b in budgets] for record in records]
    )
    return {
        "budgets": np.asarray(budgets),
        "median": np.median(matrix, axis=0),
        "q25": np.percentile(matrix, 25, axis=0),
        "q75": np.percentile(matrix, 75, axis=0),
    }


def median_iqr(values: Sequence[float]) -> Tuple[float, float, float]:
    """(median, q25, q75) of a sequence — the Table 1 cell format."""
    arr = np.asarray(list(values), dtype=np.float64)
    return (
        float(np.median(arr)),
        float(np.percentile(arr, 25)),
        float(np.percentile(arr, 75)),
    )


def vae_speedup(
    vae_records: Sequence[RunRecord], other_records: Sequence[RunRecord]
) -> List[float]:
    """Per-seed VAE speedups, paired by position (Table 1 semantics).

    For each competing run: let ``c*`` be the best cost it ever reaches and
    ``B`` the budget it took to reach it.  The speedup is ``B / B_vae``
    where ``B_vae`` is the simulations CircuitVAE (same-index seed) needs
    to find an equal-or-better circuit.  Runs where the VAE never matches
    the competitor contribute speedup < 1 computed at the VAE's full
    budget (conservative).
    """
    speedups: List[float] = []
    for vae, other in zip(vae_records, other_records):
        other_best = other.best_cost()
        budget_other = sims_to_reach(other, other_best)
        budget_vae = sims_to_reach(vae, other_best)
        if budget_vae is None:
            budget_vae = vae.num_simulations  # lower bound: never matched
        speedups.append(budget_other / budget_vae)
    return speedups
