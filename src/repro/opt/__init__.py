"""``repro.opt`` — simulator facade, budgets, run records, experiment harness."""

from .optimizer import SearchAlgorithm
from .pareto import dominates, hypervolume_2d, pareto_evaluations, pareto_front
from .results import (
    RunRecord,
    aggregate_curves,
    best_cost_at,
    median_iqr,
    sims_to_reach,
    vae_speedup,
)
from .records_io import (
    append_evaluations,
    load_evaluations,
    load_records,
    save_records,
)
from .runner import GridObserver, RunInterrupted, run_comparison, run_method
from .simulator import BudgetExhausted, CircuitSimulator, Evaluation

__all__ = [
    "SearchAlgorithm",
    "dominates",
    "pareto_front",
    "pareto_evaluations",
    "hypervolume_2d",
    "CircuitSimulator",
    "Evaluation",
    "BudgetExhausted",
    "RunRecord",
    "best_cost_at",
    "sims_to_reach",
    "aggregate_curves",
    "median_iqr",
    "vae_speedup",
    "run_method",
    "run_comparison",
    "GridObserver",
    "RunInterrupted",
    "save_records",
    "load_records",
    "append_evaluations",
    "load_evaluations",
]
