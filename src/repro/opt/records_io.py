"""Persistence for run records: save experiment traces, reload for analysis.

Long sweeps (the Fig. 3 grid at paper scale is days of simulation) need
their traces on disk so aggregation, plotting and speedup computation can
re-run without re-simulating.  Records serialize to a compact JSON; costs
and metrics round-trip exactly (binary64 via strings is avoided — JSON
floats are binary64 already).

Two granularities live here:

* **record files** (:func:`save_records` / :func:`load_records`) — whole
  finished runs, written atomically (temp file + rename, parents
  created) so a crash mid-save can never corrupt an existing file;
* **evaluation history JSONL** (:func:`append_evaluations` /
  :func:`load_evaluations`) — one line per unique simulation, appended
  and flushed *incrementally while a run is still going*.  This is the
  durable trail run directories checkpoint after every simulator query;
  a truncated final line (writer killed mid-append) is skipped with a
  ``RuntimeWarning`` on load, exactly like the evaluation cache's
  shards.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..prefix.io import graph_from_dict, graph_to_dict
from ..utils.io import atomic_write_json, ensure_parent_dir
from .results import RunRecord
from .simulator import Evaluation

__all__ = [
    "save_records",
    "load_records",
    "evaluation_to_dict",
    "evaluation_from_dict",
    "append_evaluations",
    "load_evaluations",
]

_FORMAT_VERSION = 1


def _record_to_dict(record: RunRecord) -> Dict:
    payload = {
        "method": record.method,
        "task_name": record.task_name,
        "seed": record.seed,
        "costs": record.costs.tolist(),
        "areas": record.areas.tolist(),
        "delays": record.delays.tolist(),
    }
    if record.telemetry is not None:
        payload["telemetry"] = record.telemetry
    if record.best_graph is not None:
        payload["best_graph"] = graph_to_dict(record.best_graph)
    return payload


def _record_from_dict(payload: Dict) -> RunRecord:
    costs = np.asarray(payload["costs"], dtype=np.float64)
    areas = np.asarray(payload["areas"], dtype=np.float64)
    delays = np.asarray(payload["delays"], dtype=np.float64)
    if not (len(costs) == len(areas) == len(delays)):
        raise ValueError("corrupt record: metric arrays have different lengths")
    return RunRecord(
        method=str(payload["method"]),
        task_name=str(payload["task_name"]),
        seed=int(payload["seed"]),
        costs=costs,
        areas=areas,
        delays=delays,
        telemetry=payload.get("telemetry"),
        best_graph=(
            graph_from_dict(payload["best_graph"])
            if payload.get("best_graph") is not None
            else None
        ),
    )


def save_records(path: str, records: Sequence[RunRecord]) -> None:
    """Write records to a JSON file, atomically (parents created).

    The payload is staged to a temp file in the destination directory
    and renamed into place, so a crash mid-save leaves any previous
    version of the file intact instead of a truncated JSON document.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "records": [_record_to_dict(r) for r in records],
    }
    atomic_write_json(path, payload)


def load_records(path: str) -> List[RunRecord]:
    """Read records back; validates the format version and array shapes."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported records version {payload.get('version')!r}")
    return [_record_from_dict(entry) for entry in payload["records"]]


# ----------------------------------------------------------------------
# Incremental evaluation-history JSONL (the run-directory checkpoint
# trail; see repro.api.rundir).
# ----------------------------------------------------------------------
def evaluation_to_dict(evaluation: Evaluation) -> Dict:
    """One history line: the graph plus every measured field."""
    return {
        "graph": graph_to_dict(evaluation.graph),
        "cost": evaluation.cost,
        "area_um2": evaluation.area_um2,
        "delay_ns": evaluation.delay_ns,
        "sim_index": evaluation.sim_index,
    }


def evaluation_from_dict(payload: Dict) -> Evaluation:
    """Rebuild (and re-validate the graph of) one history line."""
    return Evaluation(
        graph=graph_from_dict(payload["graph"]),
        cost=float(payload["cost"]),
        area_um2=float(payload["area_um2"]),
        delay_ns=float(payload["delay_ns"]),
        sim_index=int(payload["sim_index"]),
    )


def append_evaluations(path: str, evaluations: Iterable[Evaluation]) -> int:
    """Append history lines to ``path`` (created with parents) and flush.

    Returns the number of lines written.  Each call is flushed to the
    OS, so a killed process loses at most the line it was mid-writing —
    which :func:`load_evaluations` then skips.
    """
    ensure_parent_dir(path)
    count = 0
    with open(path, "a") as handle:
        for evaluation in evaluations:
            handle.write(json.dumps(evaluation_to_dict(evaluation)) + "\n")
            count += 1
        handle.flush()
    return count


def load_evaluations(path: str) -> List[Evaluation]:
    """Read an evaluation-history JSONL; corrupt lines are skipped.

    A truncated or otherwise unparseable line (writer killed mid-append,
    manual edits) is dropped with a ``RuntimeWarning`` instead of taking
    resume down — the evaluation it described is simply re-synthesized.
    """
    evaluations: List[Evaluation] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            try:
                evaluations.append(evaluation_from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"skipping corrupt evaluation-history line in {path}: "
                    f"{line[:60]!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return evaluations
