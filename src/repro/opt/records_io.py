"""Persistence for run records: save experiment traces, reload for analysis.

Long sweeps (the Fig. 3 grid at paper scale is days of simulation) need
their traces on disk so aggregation, plotting and speedup computation can
re-run without re-simulating.  Records serialize to a compact JSON; costs
and metrics round-trip exactly (binary64 via strings is avoided — JSON
floats are binary64 already).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

import numpy as np

from ..prefix.io import graph_from_dict, graph_to_dict
from .results import RunRecord

__all__ = ["save_records", "load_records"]

_FORMAT_VERSION = 1


def _record_to_dict(record: RunRecord) -> Dict:
    payload = {
        "method": record.method,
        "task_name": record.task_name,
        "seed": record.seed,
        "costs": record.costs.tolist(),
        "areas": record.areas.tolist(),
        "delays": record.delays.tolist(),
    }
    if record.telemetry is not None:
        payload["telemetry"] = record.telemetry
    if record.best_graph is not None:
        payload["best_graph"] = graph_to_dict(record.best_graph)
    return payload


def _record_from_dict(payload: Dict) -> RunRecord:
    costs = np.asarray(payload["costs"], dtype=np.float64)
    areas = np.asarray(payload["areas"], dtype=np.float64)
    delays = np.asarray(payload["delays"], dtype=np.float64)
    if not (len(costs) == len(areas) == len(delays)):
        raise ValueError("corrupt record: metric arrays have different lengths")
    return RunRecord(
        method=str(payload["method"]),
        task_name=str(payload["task_name"]),
        seed=int(payload["seed"]),
        costs=costs,
        areas=areas,
        delays=delays,
        telemetry=payload.get("telemetry"),
        best_graph=(
            graph_from_dict(payload["best_graph"])
            if payload.get("best_graph") is not None
            else None
        ),
    )


def save_records(path: str, records: Sequence[RunRecord]) -> None:
    """Write records to a JSON file (creates parent directories)."""
    payload = {
        "version": _FORMAT_VERSION,
        "records": [_record_to_dict(r) for r in records],
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_records(path: str) -> List[RunRecord]:
    """Read records back; validates the format version and array shapes."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported records version {payload.get('version')!r}")
    return [_record_from_dict(entry) for entry in payload["records"]]
