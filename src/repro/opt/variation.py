"""Variation operators on circuit encodings.

Shared by the genetic-algorithm baseline, the initial-dataset builder
(the paper seeds CircuitVAE with "the first few generations of GA"), and
the random-search baseline.  All operators work on the free-cell
bitvector encoding and legalize their results, so they always produce
valid circuits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..prefix.encoding import bits_to_graph, graph_to_bits, num_free_cells
from ..prefix.graph import PrefixGraph

__all__ = ["mutate", "crossover", "random_population"]


def mutate(graph: PrefixGraph, rng: np.random.Generator, rate: float = 0.02) -> PrefixGraph:
    """Flip each free cell independently with probability ``rate``.

    At least one flip is forced so mutation never degenerates to identity
    (the legalized *result* may still coincide with the input when the
    flipped cell was structurally implied).
    """
    bits = graph_to_bits(graph)
    flips = rng.random(bits.shape[0]) < rate
    if not flips.any():
        flips[rng.integers(bits.shape[0])] = True
    return bits_to_graph(bits ^ flips, graph.n)


def crossover(
    parent_a: PrefixGraph, parent_b: PrefixGraph, rng: np.random.Generator
) -> PrefixGraph:
    """Uniform crossover of two same-width circuits' bitvectors."""
    if parent_a.n != parent_b.n:
        raise ValueError("parents must share a bitwidth")
    bits_a = graph_to_bits(parent_a)
    bits_b = graph_to_bits(parent_b)
    mask = rng.random(bits_a.shape[0]) < 0.5
    return bits_to_graph(np.where(mask, bits_a, bits_b), parent_a.n)


def random_population(
    n: int, size: int, rng: np.random.Generator, density_range=(0.05, 0.5)
) -> List[PrefixGraph]:
    """Random legal circuits with varied densities (exploration seeds)."""
    lo, hi = density_range
    population = []
    for _ in range(size):
        density = rng.uniform(lo, hi)
        bits = rng.random(num_free_cells(n)) < density
        population.append(bits_to_graph(bits, n))
    return population
