"""Experiment harness: run (method x seed) grids and collect records.

This is the machinery behind every figure/table bench: the paper runs each
experiment "with five different random seeds and independently collected
initial datasets" and reports medians and interquartile ranges.

Both entry points optionally route through a
:class:`repro.engine.EvaluationEngine`: every seed then gets an
engine-backed simulator sharing one persistent cache and worker pool, and
``parallel_seeds > 1`` runs seeds concurrently on threads (the heavy
synthesis work happens in the engine's worker processes; per-seed budget
accounting stays independent, so records are bit-identical to serial
execution in any case).  Parallel waves additionally share a
:class:`repro.core.replicas.ReplicaRoundPool`: same-shaped model-based
cells train their first round as one stacked multi-replica program,
equivalent to per-cell training within floating-point reassociation
(``REPRO_STACKED_REPLICAS=0`` restores strictly bit-identical per-cell
training; checkpointed cells always train per-cell).

.. deprecated::
    :func:`run_method` and :func:`run_comparison` are thin shims kept for
    backward compatibility.  New code should describe the grid as a
    :class:`repro.api.ExperimentSpec` and run it through
    :meth:`repro.api.Session.run`, which owns the engine lifecycle and
    resolves methods by name from the registry.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.task import CircuitTask
from ..obs import trace
from ..utils.rng import seed_sequence
from .optimizer import SearchAlgorithm
from .results import RunRecord
from .simulator import BudgetExhausted, CircuitSimulator

if TYPE_CHECKING:  # runtime import would cycle: repro.engine imports repro.opt
    from ..engine.service import EvaluationEngine

__all__ = ["run_method", "run_comparison", "GridObserver", "RunInterrupted"]

AlgorithmFactory = Callable[[int], SearchAlgorithm]


class RunInterrupted(RuntimeError):
    """A run was asked to stop at a simulator query boundary.

    Raised by a :class:`GridObserver` (e.g. when
    :meth:`repro.api.RunHandle.interrupt` was called); never caught by
    the algorithms themselves — they only handle
    :class:`~repro.opt.simulator.BudgetExhausted` — so it unwinds the
    whole seed cleanly.  Everything evaluated before the interrupt is
    already recorded (history appends happen before the observer runs),
    which is what makes interrupted runs resumable.
    """


class GridObserver:
    """Hook points :func:`_run_seed_grid` offers around each (method, seed).

    The no-op base class; :mod:`repro.api` subclasses it to stream typed
    run events, write run directories incrementally and implement
    interrupt/resume.  With ``parallel_seeds > 1`` the per-seed hooks are
    called concurrently from the seed threads — implementations must be
    thread-safe across *different* (method, seed) cells (one cell is
    always driven by a single thread).
    """

    def check_interrupt(self) -> None:
        """Raise :class:`RunInterrupted` to stop before the next seed."""

    def completed_record(self, method: str, seed: int) -> Optional[RunRecord]:
        """A previously finished record for this cell (skips the run)."""
        return None

    def before_seed(self, method: str, seed: int, simulator: CircuitSimulator) -> int:
        """Prepare a fresh simulator (e.g. warm-cache replay priming).

        Returns how many recorded evaluations were primed for replay.
        """
        return 0

    def on_seed_started(self, method: str, seed: int, replayed: int) -> None:
        """The seed's algorithm is about to run."""

    def on_evaluation(
        self,
        method: str,
        seed: int,
        evaluation,
        simulator: CircuitSimulator,
    ) -> None:
        """One new evaluation was appended to the seed's history.

        Called at the simulator query boundary (see
        :attr:`~repro.opt.simulator.CircuitSimulator.on_evaluation`); may
        raise :class:`RunInterrupted` to abort the run here.
        """

    def on_training(self, method: str, seed: int, info: dict) -> None:
        """A model-based method finished one retraining round.

        ``info`` is the plain dict the method handed to
        :attr:`~repro.opt.simulator.CircuitSimulator.on_training`
        (round index, epochs run/skipped, last losses, compiled-step
        counters).  Purely observational — never raises into the run.
        """

    def on_seed_finished(
        self, method: str, seed: int, record: RunRecord, resumed: bool
    ) -> None:
        """The cell completed (``resumed`` = served from a prior record)."""


def _make_simulator(
    task: CircuitTask, budget: int, engine: Optional["EvaluationEngine"]
) -> CircuitSimulator:
    """One fresh oracle for one run.

    ``engine`` is a :class:`repro.engine.EvaluationEngine` (shared
    persistent cache + synthesis worker pool) or ``None`` for a plain
    serial :class:`CircuitSimulator`.
    """
    if engine is None:
        return CircuitSimulator(task, budget=budget)
    return engine.simulator(task, budget=budget)


def _run_seed_grid(
    factory: AlgorithmFactory,
    task: CircuitTask,
    budget: int,
    seeds: Sequence[int],
    method_name: Optional[str] = None,
    engine: Optional["EvaluationEngine"] = None,
    parallel_seeds: int = 1,
    observer: Optional[GridObserver] = None,
) -> List[RunRecord]:
    """The engine room behind :meth:`repro.api.Session.run` (and the
    deprecated shims below): one algorithm across seeds, one fresh
    simulator per run.

    ``factory(seed)`` builds the algorithm instance (so per-seed
    configuration like initial-dataset sizes can vary, as in the paper's
    grouped-budget curves).  ``engine`` is a shared
    :class:`repro.engine.EvaluationEngine` or ``None`` (plain serial
    simulators); ``parallel_seeds`` runs that many seeds concurrently on
    threads when an engine carries the synthesis work.

    ``observer`` (a :class:`GridObserver`) adds job-lifecycle semantics
    without touching any method: a per-seed completion ledger (finished
    cells are served from their stored record, not re-run), warm-cache
    replay priming, per-evaluation streaming via the simulator-boundary
    hook, and interruption (:class:`RunInterrupted` propagates out of
    this function once in-flight seeds reach a query boundary).
    """
    if observer is not None and method_name is None:
        raise ValueError("an observed grid needs an explicit method_name")

    def _run_one(seed: int, pool_handle=None) -> RunRecord:
        # The span context-manager form guarantees the seed span closes
        # even when RunInterrupted (or anything else) unwinds the seed
        # thread mid-run; fresh threads parent to the tracer's default
        # context (the experiment root span).
        with trace.span("seed") as span:
            if method_name is not None:
                span.set_attr("method", method_name)
            span.set_attr("seed", seed)
            try:
                return _run_seed(seed, pool_handle)
            finally:
                if pool_handle is not None:
                    # Every registered cell must arrive or withdraw, or
                    # the wave's rendezvous never releases; withdrawing
                    # an already-consumed handle is a no-op.
                    pool_handle.withdraw()

    def _run_seed(seed: int, pool_handle=None) -> RunRecord:
        if observer is not None:
            observer.check_interrupt()
            done = observer.completed_record(method_name, seed)
            if done is not None:
                observer.on_seed_finished(method_name, seed, done, resumed=True)
                return done
        algorithm = factory(seed)
        simulator = _make_simulator(task, budget, engine)
        if pool_handle is not None:
            simulator.replica_pool = pool_handle
        if observer is not None:
            replayed = observer.before_seed(method_name, seed, simulator)
            observer.on_seed_started(method_name, seed, replayed)
            simulator.on_evaluation = lambda evaluation: observer.on_evaluation(
                method_name, seed, evaluation, simulator
            )
            simulator.on_training = lambda info: observer.on_training(
                method_name, seed, info
            )
            # Checked at the start of *every* query (cache hits too), so
            # an interrupt cannot stall behind a hit-only stretch.
            simulator.check_abort = observer.check_interrupt
        rng = np.random.default_rng(seed)
        try:
            algorithm.run(simulator, rng)
        except BudgetExhausted:
            pass  # normal termination for budget-driven algorithms
        record = RunRecord.from_simulator(
            method_name or algorithm.method_name, seed, simulator
        )
        if observer is not None:
            observer.on_seed_finished(method_name, seed, record, resumed=False)
        return record

    seeds = list(seeds)
    if parallel_seeds > 1 and len(seeds) > 1:
        # Seeds run in waves of exactly the worker count, one fresh
        # ReplicaRoundPool per wave: every wave member is guaranteed its
        # own live thread, so the pool's rendezvous (first training
        # round trains same-shaped cells as one stacked multi-replica
        # program) can never deadlock on thread reuse.  Results are
        # identical to the plain map — cells are independent.
        from ..core.replicas import ReplicaRoundPool, use_stacked_replicas

        workers = min(parallel_seeds, len(seeds))
        pooling = use_stacked_replicas()
        records: List[RunRecord] = []
        for start in range(0, len(seeds), workers):
            wave = seeds[start:start + workers]
            if pooling and len(wave) > 1:
                wave_pool = ReplicaRoundPool()
                handles = [wave_pool.handle(seed) for seed in wave]
            else:
                handles = [None] * len(wave)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                records.extend(pool.map(_run_one, wave, handles))
        return records
    return [_run_one(seed) for seed in seeds]


def run_method(
    factory: AlgorithmFactory,
    task: CircuitTask,
    budget: int,
    seeds: Sequence[int],
    method_name: Optional[str] = None,
    engine: Optional["EvaluationEngine"] = None,
    parallel_seeds: int = 1,
) -> List[RunRecord]:
    """Run one algorithm across seeds; one fresh simulator per run.

    ``factory(seed)`` builds the algorithm instance.  Pass an ``engine``
    (:class:`repro.engine.EvaluationEngine`) to share a persistent cache
    and synthesis worker pool across seeds; ``parallel_seeds`` runs that
    many seeds concurrently.

    .. deprecated::
        Prefer :meth:`repro.api.Session.run` with an
        :class:`repro.api.ExperimentSpec` — it resolves methods by
        registry name, owns the engine, and returns aggregated results.
    """
    warnings.warn(
        "run_method is deprecated; describe the experiment as a "
        "repro.api.ExperimentSpec and run it with repro.api.Session.run",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_seed_grid(
        factory,
        task,
        budget,
        seeds,
        method_name=method_name,
        engine=engine,
        parallel_seeds=parallel_seeds,
    )


def run_comparison(
    factories: Dict[str, AlgorithmFactory],
    task: CircuitTask,
    budget: int,
    num_seeds: int = 3,
    base_seed: int = 0,
    engine: Optional["EvaluationEngine"] = None,
    parallel_seeds: int = 1,
) -> Dict[str, List[RunRecord]]:
    """Run several methods on one task with paired seeds.

    Returns {method: [RunRecord per seed]} with all methods sharing the
    same seed list, which keeps the Table-1 speedup pairing meaningful.
    ``engine`` (a :class:`repro.engine.EvaluationEngine` or ``None``) and
    ``parallel_seeds`` forward to the per-method grid; with an engine,
    methods additionally share cache entries (e.g. the classical seed
    structures every method evaluates are synthesized exactly once).

    .. deprecated::
        Prefer :meth:`repro.api.Session.run` — an
        :class:`repro.api.ExperimentSpec` with several method specs is
        the declarative form of this call.
    """
    warnings.warn(
        "run_comparison is deprecated; describe the experiment as a "
        "repro.api.ExperimentSpec and run it with repro.api.Session.run",
        DeprecationWarning,
        stacklevel=2,
    )
    seeds = seed_sequence(base_seed, num_seeds)
    return {
        name: _run_seed_grid(
            factory,
            task,
            budget,
            seeds,
            method_name=name,
            engine=engine,
            parallel_seeds=parallel_seeds,
        )
        for name, factory in factories.items()
    }
