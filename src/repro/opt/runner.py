"""Experiment harness: run (method x seed) grids and collect records.

This is the machinery behind every figure/table bench: the paper runs each
experiment "with five different random seeds and independently collected
initial datasets" and reports medians and interquartile ranges.

Both entry points optionally route through a
:class:`repro.engine.EvaluationEngine`: every seed then gets an
engine-backed simulator sharing one persistent cache and worker pool, and
``parallel_seeds > 1`` runs seeds concurrently on threads (the heavy
synthesis work happens in the engine's worker processes; per-seed budget
accounting stays independent, so records are bit-identical to serial
execution in any case).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.task import CircuitTask
from ..utils.rng import seed_sequence
from .optimizer import SearchAlgorithm
from .results import RunRecord
from .simulator import BudgetExhausted, CircuitSimulator

__all__ = ["run_method", "run_comparison"]

AlgorithmFactory = Callable[[int], SearchAlgorithm]


def _make_simulator(task: CircuitTask, budget: int, engine) -> CircuitSimulator:
    if engine is None:
        return CircuitSimulator(task, budget=budget)
    return engine.simulator(task, budget=budget)


def run_method(
    factory: AlgorithmFactory,
    task: CircuitTask,
    budget: int,
    seeds: Sequence[int],
    method_name: Optional[str] = None,
    engine=None,
    parallel_seeds: int = 1,
) -> List[RunRecord]:
    """Run one algorithm across seeds; one fresh simulator per run.

    ``factory(seed)`` builds the algorithm instance (so per-seed
    configuration like initial-dataset sizes can vary, as in the paper's
    grouped-budget curves).  Pass an ``engine``
    (:class:`repro.engine.EvaluationEngine`) to share a persistent cache
    and synthesis worker pool across seeds; ``parallel_seeds`` runs that
    many seeds concurrently.
    """

    def _run_one(seed: int) -> RunRecord:
        algorithm = factory(seed)
        simulator = _make_simulator(task, budget, engine)
        rng = np.random.default_rng(seed)
        try:
            algorithm.run(simulator, rng)
        except BudgetExhausted:
            pass  # normal termination for budget-driven algorithms
        return RunRecord.from_simulator(
            method_name or algorithm.method_name, seed, simulator
        )

    seeds = list(seeds)
    if parallel_seeds > 1 and len(seeds) > 1:
        with ThreadPoolExecutor(max_workers=min(parallel_seeds, len(seeds))) as pool:
            return list(pool.map(_run_one, seeds))
    return [_run_one(seed) for seed in seeds]


def run_comparison(
    factories: Dict[str, AlgorithmFactory],
    task: CircuitTask,
    budget: int,
    num_seeds: int = 3,
    base_seed: int = 0,
    engine=None,
    parallel_seeds: int = 1,
) -> Dict[str, List[RunRecord]]:
    """Run several methods on one task with paired seeds.

    Returns {method: [RunRecord per seed]} with all methods sharing the
    same seed list, which keeps the Table-1 speedup pairing meaningful.
    ``engine``/``parallel_seeds`` forward to :func:`run_method`; with an
    engine, methods additionally share cache entries (e.g. the classical
    seed structures every method evaluates are synthesized exactly once).
    """
    seeds = seed_sequence(base_seed, num_seeds)
    return {
        name: run_method(
            factory,
            task,
            budget,
            seeds,
            method_name=name,
            engine=engine,
            parallel_seeds=parallel_seeds,
        )
        for name, factory in factories.items()
    }
