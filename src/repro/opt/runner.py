"""Experiment harness: run (method x seed) grids and collect records.

This is the machinery behind every figure/table bench: the paper runs each
experiment "with five different random seeds and independently collected
initial datasets" and reports medians and interquartile ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.task import CircuitTask
from ..utils.rng import seed_sequence
from .optimizer import SearchAlgorithm
from .results import RunRecord
from .simulator import BudgetExhausted, CircuitSimulator

__all__ = ["run_method", "run_comparison"]

AlgorithmFactory = Callable[[int], SearchAlgorithm]


def run_method(
    factory: AlgorithmFactory,
    task: CircuitTask,
    budget: int,
    seeds: Sequence[int],
    method_name: Optional[str] = None,
) -> List[RunRecord]:
    """Run one algorithm across seeds; one fresh simulator per run.

    ``factory(seed)`` builds the algorithm instance (so per-seed
    configuration like initial-dataset sizes can vary, as in the paper's
    grouped-budget curves).
    """
    records: List[RunRecord] = []
    for seed in seeds:
        algorithm = factory(seed)
        simulator = CircuitSimulator(task, budget=budget)
        rng = np.random.default_rng(seed)
        try:
            algorithm.run(simulator, rng)
        except BudgetExhausted:
            pass  # normal termination for budget-driven algorithms
        records.append(
            RunRecord.from_simulator(
                method_name or algorithm.method_name, seed, simulator
            )
        )
    return records


def run_comparison(
    factories: Dict[str, AlgorithmFactory],
    task: CircuitTask,
    budget: int,
    num_seeds: int = 3,
    base_seed: int = 0,
) -> Dict[str, List[RunRecord]]:
    """Run several methods on one task with paired seeds.

    Returns {method: [RunRecord per seed]} with all methods sharing the
    same seed list, which keeps the Table-1 speedup pairing meaningful.
    """
    seeds = seed_sequence(base_seed, num_seeds)
    return {
        name: run_method(factory, task, budget, seeds, method_name=name)
        for name, factory in factories.items()
    }
