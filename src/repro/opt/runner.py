"""Experiment harness: run (method x seed) grids and collect records.

This is the machinery behind every figure/table bench: the paper runs each
experiment "with five different random seeds and independently collected
initial datasets" and reports medians and interquartile ranges.

Both entry points optionally route through a
:class:`repro.engine.EvaluationEngine`: every seed then gets an
engine-backed simulator sharing one persistent cache and worker pool, and
``parallel_seeds > 1`` runs seeds concurrently on threads (the heavy
synthesis work happens in the engine's worker processes; per-seed budget
accounting stays independent, so records are bit-identical to serial
execution in any case).

.. deprecated::
    :func:`run_method` and :func:`run_comparison` are thin shims kept for
    backward compatibility.  New code should describe the grid as a
    :class:`repro.api.ExperimentSpec` and run it through
    :meth:`repro.api.Session.run`, which owns the engine lifecycle and
    resolves methods by name from the registry.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.task import CircuitTask
from ..utils.rng import seed_sequence
from .optimizer import SearchAlgorithm
from .results import RunRecord
from .simulator import BudgetExhausted, CircuitSimulator

if TYPE_CHECKING:  # runtime import would cycle: repro.engine imports repro.opt
    from ..engine.service import EvaluationEngine

__all__ = ["run_method", "run_comparison"]

AlgorithmFactory = Callable[[int], SearchAlgorithm]


def _make_simulator(
    task: CircuitTask, budget: int, engine: Optional["EvaluationEngine"]
) -> CircuitSimulator:
    """One fresh oracle for one run.

    ``engine`` is a :class:`repro.engine.EvaluationEngine` (shared
    persistent cache + synthesis worker pool) or ``None`` for a plain
    serial :class:`CircuitSimulator`.
    """
    if engine is None:
        return CircuitSimulator(task, budget=budget)
    return engine.simulator(task, budget=budget)


def _run_seed_grid(
    factory: AlgorithmFactory,
    task: CircuitTask,
    budget: int,
    seeds: Sequence[int],
    method_name: Optional[str] = None,
    engine: Optional["EvaluationEngine"] = None,
    parallel_seeds: int = 1,
) -> List[RunRecord]:
    """The engine room behind :meth:`repro.api.Session.run` (and the
    deprecated shims below): one algorithm across seeds, one fresh
    simulator per run.

    ``factory(seed)`` builds the algorithm instance (so per-seed
    configuration like initial-dataset sizes can vary, as in the paper's
    grouped-budget curves).  ``engine`` is a shared
    :class:`repro.engine.EvaluationEngine` or ``None`` (plain serial
    simulators); ``parallel_seeds`` runs that many seeds concurrently on
    threads when an engine carries the synthesis work.
    """

    def _run_one(seed: int) -> RunRecord:
        algorithm = factory(seed)
        simulator = _make_simulator(task, budget, engine)
        rng = np.random.default_rng(seed)
        try:
            algorithm.run(simulator, rng)
        except BudgetExhausted:
            pass  # normal termination for budget-driven algorithms
        return RunRecord.from_simulator(
            method_name or algorithm.method_name, seed, simulator
        )

    seeds = list(seeds)
    if parallel_seeds > 1 and len(seeds) > 1:
        with ThreadPoolExecutor(max_workers=min(parallel_seeds, len(seeds))) as pool:
            return list(pool.map(_run_one, seeds))
    return [_run_one(seed) for seed in seeds]


def run_method(
    factory: AlgorithmFactory,
    task: CircuitTask,
    budget: int,
    seeds: Sequence[int],
    method_name: Optional[str] = None,
    engine: Optional["EvaluationEngine"] = None,
    parallel_seeds: int = 1,
) -> List[RunRecord]:
    """Run one algorithm across seeds; one fresh simulator per run.

    ``factory(seed)`` builds the algorithm instance.  Pass an ``engine``
    (:class:`repro.engine.EvaluationEngine`) to share a persistent cache
    and synthesis worker pool across seeds; ``parallel_seeds`` runs that
    many seeds concurrently.

    .. deprecated::
        Prefer :meth:`repro.api.Session.run` with an
        :class:`repro.api.ExperimentSpec` — it resolves methods by
        registry name, owns the engine, and returns aggregated results.
    """
    warnings.warn(
        "run_method is deprecated; describe the experiment as a "
        "repro.api.ExperimentSpec and run it with repro.api.Session.run",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_seed_grid(
        factory,
        task,
        budget,
        seeds,
        method_name=method_name,
        engine=engine,
        parallel_seeds=parallel_seeds,
    )


def run_comparison(
    factories: Dict[str, AlgorithmFactory],
    task: CircuitTask,
    budget: int,
    num_seeds: int = 3,
    base_seed: int = 0,
    engine: Optional["EvaluationEngine"] = None,
    parallel_seeds: int = 1,
) -> Dict[str, List[RunRecord]]:
    """Run several methods on one task with paired seeds.

    Returns {method: [RunRecord per seed]} with all methods sharing the
    same seed list, which keeps the Table-1 speedup pairing meaningful.
    ``engine`` (a :class:`repro.engine.EvaluationEngine` or ``None``) and
    ``parallel_seeds`` forward to the per-method grid; with an engine,
    methods additionally share cache entries (e.g. the classical seed
    structures every method evaluates are synthesized exactly once).

    .. deprecated::
        Prefer :meth:`repro.api.Session.run` — an
        :class:`repro.api.ExperimentSpec` with several method specs is
        the declarative form of this call.
    """
    warnings.warn(
        "run_comparison is deprecated; describe the experiment as a "
        "repro.api.ExperimentSpec and run it with repro.api.Session.run",
        DeprecationWarning,
        stacklevel=2,
    )
    seeds = seed_sequence(base_seed, num_seeds)
    return {
        name: _run_seed_grid(
            factory,
            task,
            budget,
            seeds,
            method_name=name,
            engine=engine,
            parallel_seeds=parallel_seeds,
        )
        for name, factory in factories.items()
    }
