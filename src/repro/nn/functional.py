"""Stateless differentiable operations built on :class:`repro.nn.Tensor`.

These mirror ``torch.nn.functional``: convolutions, activations expressed as
free functions, and the composite numerical kernels (softmax families,
stable binary cross-entropy) that the CircuitVAE model needs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, _ensure_tensor, apply

__all__ = [
    "linear",
    "conv2d",
    "conv_transpose2d",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "gaussian_kl",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight shape: (out, in))."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation with autograd support (NCHW)."""
    x_t, w_t = _ensure_tensor(x), _ensure_tensor(weight)
    out = apply("conv2d", (x_t, w_t), {"stride": stride, "padding": padding})
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


def conv_transpose2d(
    x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, stride: int = 1, padding: int = 0
) -> Tensor:
    """Transposed 2-D convolution (weight shape: (in, out, kh, kw))."""
    x_t, w_t = _ensure_tensor(x), _ensure_tensor(weight)
    out = apply(
        "conv_transpose2d", (x_t, w_t), {"stride": stride, "padding": padding}
    )
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


def relu(x: Tensor) -> Tensor:
    return _ensure_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return _ensure_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return _ensure_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: at train time zero activations w.p. ``p`` and rescale."""
    if not training or p <= 0.0:
        return _ensure_tensor(x)
    x = _ensure_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: Tensor, reduction: str = "mean"
) -> Tensor:
    """Numerically-stable BCE: ``max(z,0) - z*y + log(1 + exp(-|z|))``."""
    logits = _ensure_tensor(logits)
    targets = _ensure_tensor(targets)
    relu_part = logits.relu()
    loss = relu_part - logits * targets + (-logits.abs()).softplus()
    return _reduce(loss, reduction)


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    pred, target = _ensure_tensor(pred), _ensure_tensor(target)
    diff = pred - target
    return _reduce(diff * diff, reduction)


def gaussian_kl(mu: Tensor, logvar: Tensor, reduction: str = "mean") -> Tensor:
    """KL(q || N(0, I)) for a diagonal Gaussian, summed over latent dims.

    Returns per-sample KL summed over the latent axis, then reduced over the
    batch axis according to ``reduction``.  This is the VAE regularizer in
    Eq. 1 of the paper.
    """
    mu, logvar = _ensure_tensor(mu), _ensure_tensor(logvar)
    per_dim = 0.5 * (mu * mu + logvar.exp() - logvar - 1.0)
    per_sample = per_dim.sum(axis=-1)
    return _reduce(per_sample, reduction)


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return value.mean()
    if reduction == "sum":
        return value.sum()
    if reduction == "none":
        return value
    raise ValueError(f"unknown reduction {reduction!r}")
