"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of :mod:`repro.nn`, the from-scratch neural
network substrate used by the CircuitVAE reproduction (the paper used
PyTorch, which is unavailable offline; the repo-root ``DESIGN.md``
documents this and the other substrate stand-ins).

The design is a classic define-by-run tape:

* :class:`Tensor` wraps an ``np.ndarray`` plus an optional gradient buffer.
* Every differentiable operation records a backward closure and its parent
  tensors; :meth:`Tensor.backward` topologically sorts the tape and runs the
  closures in reverse.
* Broadcasting is supported everywhere; gradients are un-broadcast (summed)
  back to each parent's shape.

Only float64/float32 tensors participate in autograd.  The engine is
deliberately minimal but complete enough to train CNN/MLP VAEs with Adam:
elementwise math, matmul, reductions, shape manipulation, indexing and
concatenation all propagate gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int]

__all__ = ["Tensor", "tensor", "zeros", "ones", "randn", "no_grad", "is_grad_enabled"]


class _GradMode:
    """Global switch for gradient recording (see :func:`no_grad`)."""

    enabled: bool = True


class no_grad:
    """Context manager disabling graph construction, like ``torch.no_grad``.

    Useful during latent-space *search*, where we differentiate w.r.t. the
    latent input but evaluate helper quantities without growing the tape.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GradMode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array (or nested sequence / scalar) holding the values.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad) and _GradMode.enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GradMode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological sort (iterative DFS to survive deep graphs).
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(self, grad: np.ndarray, grads: dict) -> None:
        parent_grads = self._backward(grad)
        if parent_grads is None:
            return
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pgrad = _unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data + other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data - other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, -g))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return _ensure_tensor(other).__sub__(self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data * other_t.data
        a, b = self.data, other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data / other_t.data
        a, b = self.data, other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g / b, -g * a / (b * b)))

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return _ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        base = self.data
        return Tensor._make(
            data, (self,), lambda g: (g * exponent * base ** (exponent - 1),)
        )

    # Comparison operators return plain boolean arrays (no gradient).
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        base = self.data
        return Tensor._make(np.log(base), (self,), lambda g: (g / base,))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._make(data, (self,), lambda g: (g * 0.5 / data,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data * data),))

    def sigmoid(self) -> "Tensor":
        data = _stable_sigmoid(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)
        return Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))

    def softplus(self) -> "Tensor":
        # log(1 + exp(x)), numerically stable.
        data = np.logaddexp(0.0, self.data)
        sig = _stable_sigmoid(self.data)
        return Tensor._make(data, (self,), lambda g: (g * sig,))

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._make(np.clip(self.data, low, high), (self,), lambda g: (g * mask,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            grad = g
            full = data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                full = np.expand_dims(data, axis=axis)
            mask = (self.data == full).astype(np.float64)
            # Split gradient evenly among ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return ((mask / counts) * grad * np.ones(shape),)

        return Tensor._make(data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        m = self.data.max(axis=axis, keepdims=True)
        shifted = self - Tensor(m)
        return shifted.exp().sum(axis=axis, keepdims=keepdims).log() + Tensor(
            m if keepdims else np.squeeze(m, axis=axis)
        )

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: Arrayish) -> "Tensor":
        other_t = _ensure_tensor(other)
        a, b = self.data, other_t.data
        data = a @ b

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            ga = g @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(g, b)
            gb = np.swapaxes(a, -1, -2) @ g if a.ndim > 1 else np.outer(a, g)
            return (ga, gb)

        return Tensor._make(data, (self, other_t), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.data.shape
        return Tensor._make(
            self.data.reshape(shape), (self,), lambda g: (g.reshape(old_shape),)
        )

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        return Tensor._make(
            self.data.transpose(axes), (self,), lambda g: (g.transpose(inverse),)
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        data = self.data[idx]
        shape = self.data.shape

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``pad``."""
        if pad == 0:
            return self
        widths = [(0, 0)] * (self.data.ndim - 2) + [(pad, pad), (pad, pad)]
        data = np.pad(self.data, widths)
        slicer = tuple(
            [slice(None)] * (self.data.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)]
        )
        return Tensor._make(data, (self,), lambda g: (g[slicer],))


def _ensure_tensor(value: Arrayish) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# ----------------------------------------------------------------------
# Free functions (graph-aware)
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (convenience mirror of ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        out = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(int(start), int(stop))
            out.append(g[tuple(slicer)])
        return tuple(out)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable ``np.where`` (condition is a plain boolean array)."""
    a_t, b_t = _ensure_tensor(a), _ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a_t.data, b_t.data)
    return Tensor._make(
        data, (a_t, b_t), lambda g: (g * cond, g * (~cond))
    )
