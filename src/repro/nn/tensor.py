"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of :mod:`repro.nn`, the from-scratch neural
network substrate used by the CircuitVAE reproduction (the paper used
PyTorch, which is unavailable offline; the repo-root ``DESIGN.md``
documents this and the other substrate stand-ins).

The engine has two modes sharing one op set (:mod:`repro.nn.graph`):

* **Eager define-by-run** (the default, and the numerical reference):
  every differentiable operation dispatches through :func:`apply`, which
  computes immediately and stores ``(op id, parents, attrs)`` on the
  output — VJP rules live in the op registry as data, not in per-call
  closures.  :meth:`Tensor.backward` topologically sorts this tape and
  applies the registry rules in reverse.
* **Traced**: while a :class:`repro.nn.graph.Trace` is active (see
  :mod:`repro.nn.compile`), :func:`apply` additionally records each op
  into an explicit :class:`~repro.nn.graph.Node` IR that the compiler
  schedules into a buffer-reusing, fused replay program.

Broadcasting is supported everywhere; gradients are un-broadcast
(summed) back to each parent's shape.  Tensors are float64 by default;
float32 arrays keep their dtype, and an op mixing float32 and float64
operands normalizes to float64 with a one-time ``RuntimeWarning`` (the
silent-promotion trap this warning guards against doubles training
memory without anyone noticing).
"""

from __future__ import annotations

import threading
import warnings
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .graph import OPS, active_trace, stable_sigmoid

Arrayish = Union["Tensor", np.ndarray, float, int]

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "no_grad",
    "is_grad_enabled",
    "apply",
]


class _GradMode(threading.local):
    """Per-thread switch for gradient recording (see :func:`no_grad`).

    Thread-local so one seed cell's ``no_grad`` section (latent search
    evaluates helpers without growing the tape) can never disable graph
    construction in a concurrently searching or training cell.
    """

    enabled: bool = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager disabling graph construction, like ``torch.no_grad``.

    Useful during latent-space *search*, where we differentiate w.r.t. the
    latent input but evaluate helper quantities without growing the tape.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _grad_mode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


_FLOATS = (np.dtype(np.float32), np.dtype(np.float64))
_promotion_warned = threading.Lock(), [False]


def _warn_promotion_once() -> None:
    lock, flag = _promotion_warned
    with lock:
        if flag[0]:
            return
        flag[0] = True
    warnings.warn(
        "mixed float32/float64 tensor operands promote to float64; cast "
        "your inputs (or parameters) to one dtype to avoid silently "
        "doubling training memory (warned once per process)",
        RuntimeWarning,
        stacklevel=4,
    )


def apply(op_name: str, inputs: Sequence["Tensor"], attrs: Optional[dict] = None) -> "Tensor":
    """Apply a registry op eagerly (and record it into any active trace).

    This is the single dispatch point of the tape: dtype normalization,
    forward execution, grad linking and trace recording all happen here,
    so every ``Tensor`` method and every :mod:`repro.nn.functional` free
    function behaves identically.
    """
    op = OPS[op_name]
    attrs = {} if attrs is None else attrs
    arrays = tuple(t.data for t in inputs)
    if len(arrays) > 1:
        dtypes = {a.dtype for a in arrays}
        if len(dtypes) > 1 and _FLOATS[0] in dtypes:
            _warn_promotion_once()
            arrays = tuple(
                a.astype(np.float64) if a.dtype == _FLOATS[0] else a for a in arrays
            )
    data = op.forward(arrays, attrs)
    out = Tensor(data)
    if _grad_mode.enabled and any(p.requires_grad for p in inputs):
        out.requires_grad = True
        out._parents = tuple(inputs)
        out._op = op_name
        out._attrs = attrs
    trace = active_trace()
    if trace is not None:
        trace.record(op_name, inputs, attrs, out)
    return out


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array (or nested sequence / scalar) holding the values.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on
        :meth:`backward`.
    dtype:
        Optional explicit dtype.  By default float64, except float32
        arrays, which keep their dtype (see the module docstring).
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_op",
        "_attrs",
        "name",
    )

    def __init__(self, data, requires_grad: bool = False, name: str = "", dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is None:
            dtype = np.float32 if arr.dtype == np.float32 else np.float64
        self.data: np.ndarray = np.asarray(arr, dtype=dtype)
        self.requires_grad: bool = bool(requires_grad) and _grad_mode.enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: Optional[str] = None
        self._attrs: dict = {}
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a tensor from a custom backward closure.

        Escape hatch for ops outside the registry: still fully supported
        in eager mode, but invisible to the IR — a closure op under an
        active trace marks the trace unsupported and the compiler falls
        back to eager execution.
        """
        out = Tensor(data)
        if _grad_mode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        trace = active_trace()
        if trace is not None:
            trace.record_unsupported("closure-based op via Tensor._make")
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _vjps(self, grad: np.ndarray):
        """Per-parent gradients of this node (registry rule or closure)."""
        if self._backward is not None:
            return self._backward(grad)
        op = OPS[self._op]
        return op.vjp(
            grad,
            self.data,
            tuple(p.data for p in self._parents),
            self._attrs,
            tuple(p.requires_grad for p in self._parents),
        )

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological sort (iterative DFS to survive deep graphs).
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None and node._op is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            elif node._backward is not None or node._op is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(self, grad: np.ndarray, grads: dict) -> None:
        parent_grads = self._vjps(grad)
        if parent_grads is None:
            return
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pgrad = _unbroadcast(
                np.asarray(pgrad, dtype=parent.data.dtype), parent.data.shape
            )
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        return apply("add", (self, _ensure_tensor(other, self)))

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        return apply("sub", (self, _ensure_tensor(other, self)))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return _ensure_tensor(other, self).__sub__(self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        return apply("mul", (self, _ensure_tensor(other, self)))

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        return apply("div", (self, _ensure_tensor(other, self)))

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return _ensure_tensor(other, self).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return apply("neg", (self,))

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return apply("pow", (self,), {"exponent": exponent})

    # Comparison operators return plain boolean arrays (no gradient).
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return apply("exp", (self,))

    def log(self) -> "Tensor":
        return apply("log", (self,))

    def sqrt(self) -> "Tensor":
        return apply("sqrt", (self,))

    def abs(self) -> "Tensor":
        return apply("abs", (self,))

    def tanh(self) -> "Tensor":
        return apply("tanh", (self,))

    def sigmoid(self) -> "Tensor":
        return apply("sigmoid", (self,))

    def relu(self) -> "Tensor":
        return apply("relu", (self,))

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        return apply("leaky_relu", (self,), {"negative_slope": negative_slope})

    def softplus(self) -> "Tensor":
        return apply("softplus", (self,))

    def clip(self, low: float, high: float) -> "Tensor":
        return apply("clip", (self,), {"low": low, "high": high})

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply("sum", (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply("max", (self,), {"axis": axis, "keepdims": keepdims})

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        m = self.data.max(axis=axis, keepdims=True)
        shifted = self - Tensor(m)
        return shifted.exp().sum(axis=axis, keepdims=keepdims).log() + Tensor(
            m if keepdims else np.squeeze(m, axis=axis)
        )

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: Arrayish) -> "Tensor":
        return apply("matmul", (self, _ensure_tensor(other, self)))

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply("reshape", (self,), {"shape": shape})

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(int(i) for i in np.argsort(axes))
        return apply("transpose", (self,), {"axes": axes, "inverse": inverse})

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        return apply("getitem", (self,), {"idx": idx})

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``pad``."""
        if pad == 0:
            return self
        return apply("pad2d", (self,), {"pad": pad})


def _ensure_tensor(value: Arrayish, like: Optional[Tensor] = None) -> Tensor:
    """Coerce ``value`` into a Tensor.

    Non-tensor operands (python scalars, lists, raw arrays) adopt
    ``like``'s dtype, so ``float32_tensor * 2.0`` stays float32 instead
    of tripping the mixed-dtype promotion warning: dtype is a property
    of *tensors*; only mixing two differently-typed tensors warns.
    """
    if isinstance(value, Tensor):
        return value
    if like is not None:
        return Tensor(np.asarray(value, dtype=like.data.dtype))
    return Tensor(value)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    # Back-compat alias; the kernel lives in repro.nn.graph now.
    return stable_sigmoid(x)


# ----------------------------------------------------------------------
# Free functions (graph-aware)
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a :class:`Tensor` (convenience mirror of ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def _first_tensor(values) -> Optional[Tensor]:
    """The dtype anchor among mixed tensor/raw operands (see
    :func:`_ensure_tensor`): the first actual Tensor, if any."""
    for value in values:
        if isinstance(value, Tensor):
            return value
    return None


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    like = _first_tensor(tensors)
    tensors = [_ensure_tensor(t, like) for t in tensors]
    return apply("concatenate", tuple(tensors), {"axis": axis})


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    like = _first_tensor(tensors)
    tensors = [_ensure_tensor(t, like) for t in tensors]
    return apply("stack", tuple(tensors), {"axis": axis})


def where(condition: np.ndarray, a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable ``np.where`` (condition is a plain boolean array)."""
    like = _first_tensor((a, b))
    a_t = _ensure_tensor(a, like)
    b_t = _ensure_tensor(b, like)
    cond = np.asarray(condition, dtype=bool)
    return apply("where", (a_t, b_t), {"condition": cond})
