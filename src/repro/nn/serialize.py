"""Save/load model parameters as ``.npz`` archives.

Writes are atomic (serialize to memory, then temp-file + ``os.replace``
via :mod:`repro.utils.io`), so a crash mid-save can never leave a
truncated archive behind — a checkpoint either exists in full or not at
all.  Dtype, shape and key order round-trip exactly.
"""

from __future__ import annotations

import io
from typing import Dict

import numpy as np

from ..utils.io import atomic_write_bytes
from .layers import Module

__all__ = ["save_module", "load_module", "save_state", "load_state"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Atomically write a parameter dict to ``path`` (npz).

    Keys may contain dots.  Unlike a bare ``np.savez(path)``, no
    ``.npz`` suffix is appended — the file lands at exactly ``path``
    (parent directories are created), so ``load_state(path)`` always
    finds what ``save_state(path)`` wrote.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **state)
    atomic_write_bytes(path, buffer.getvalue())


def load_state(path: str) -> Dict[str, np.ndarray]:
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters (atomic; see :func:`save_state`)."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module
