"""Save/load model parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "save_state", "load_state"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a parameter dict to ``path`` (npz).  Keys may contain dots."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module
