"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros_", "fan_in_and_out"]


def fan_in_and_out(shape) -> tuple:
    """Compute (fan_in, fan_out) for a Linear or Conv weight shape."""
    if len(shape) == 2:  # Linear: (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # Conv: (out, in, kh, kw) or (in, out, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform init: U(-b, b) with b = gain * sqrt(3 / fan_in)."""
    fan_in, _ = fan_in_and_out(shape)
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform init: U(-b, b) with b = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_and_out(shape)
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def zeros_(shape) -> np.ndarray:
    return np.zeros(shape)
