"""Vectorized 2-D convolution kernels (im2col/col2im) on raw numpy arrays.

These are the compute primitives behind :class:`repro.nn.layers.Conv2d` and
:class:`repro.nn.layers.ConvTranspose2d`.  They are written against plain
``np.ndarray`` so the autograd wrapper in :mod:`repro.nn.functional` can call
the same routines for both forward and backward passes (a transposed
convolution *is* the gradient of a convolution, and vice versa).

Conventions: activations are NCHW, weights are (out_channels, in_channels,
kh, kw).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "conv2d_forward",
    "conv2d_backward",
    "conv_transpose2d_forward",
    "conv_transpose2d_backward",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * padding - kernel) // stride + 1


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``x`` (B,C,H,W) into patches of shape (B, C, kh, kw, oh, ow)."""
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    batch, channels, height, width = x.shape
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (B, C, H-kh+1, W-kw+1, kh, kw) -> subsample by stride.
    windows = windows[:, :, ::stride, ::stride, :, :]
    assert windows.shape[2] == oh and windows.shape[3] == ow
    # Rearrange to (B, C, kh, kw, oh, ow).
    return np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3))


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patches (B, C, kh, kw, oh, ow) back into an array of ``x_shape``.

    Overlapping contributions are summed, which is exactly the adjoint of
    :func:`_im2col`.
    """
    batch, channels, height, width = x_shape
    oh, ow = cols.shape[4], cols.shape[5]
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    for u in range(kh):
        for v in range(kw):
            padded[:, :, u : u + stride * oh : stride, v : v + stride * ow : stride] += cols[
                :, :, u, v, :, :
            ]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Cross-correlate ``x`` (B,Cin,H,W) with ``weight`` (Cout,Cin,kh,kw)."""
    out_channels, in_channels, kh, kw = weight.shape
    cols = _im2col(x, kh, kw, stride, padding)  # (B, Cin, kh, kw, oh, ow)
    batch, _, _, _, oh, ow = cols.shape
    cols_mat = cols.reshape(batch, in_channels * kh * kw, oh * ow)
    w_mat = weight.reshape(out_channels, in_channels * kh * kw)
    out = np.einsum("ok,bkl->bol", w_mat, cols_mat, optimize=True)
    return out.reshape(batch, out_channels, oh, ow)


def conv2d_backward(
    grad_out: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of :func:`conv2d_forward` w.r.t. input and weight."""
    out_channels, in_channels, kh, kw = weight.shape
    batch, _, oh, ow = grad_out.shape
    g_mat = grad_out.reshape(batch, out_channels, oh * ow)
    cols = _im2col(x, kh, kw, stride, padding)
    cols_mat = cols.reshape(batch, in_channels * kh * kw, oh * ow)
    # dW: sum over batch and spatial positions.
    dw = np.einsum("bol,bkl->ok", g_mat, cols_mat, optimize=True)
    dw = dw.reshape(weight.shape)
    # dX: scatter W^T @ g back through col2im.
    w_mat = weight.reshape(out_channels, in_channels * kh * kw)
    dcols = np.einsum("ok,bol->bkl", w_mat, g_mat, optimize=True)
    dcols = dcols.reshape(batch, in_channels, kh, kw, oh, ow)
    dx = _col2im(dcols, x.shape, kh, kw, stride, padding)
    return dx, dw


def conv_transpose2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Transposed convolution (a.k.a. deconvolution), NCHW.

    ``weight`` has shape (in_channels, out_channels, kh, kw), mirroring the
    PyTorch convention.  The output spatial size is
    ``(H - 1) * stride - 2 * padding + kh``.
    """
    in_channels, out_channels, kh, kw = weight.shape
    batch, _, height, width = x.shape
    out_h = (height - 1) * stride - 2 * padding + kh
    out_w = (width - 1) * stride - 2 * padding + kw
    x_mat = x.reshape(batch, in_channels, height * width)
    w_mat = weight.reshape(in_channels, out_channels * kh * kw)
    cols = np.einsum("ik,bil->bkl", w_mat, x_mat, optimize=True)
    cols = cols.reshape(batch, out_channels, kh, kw, height, width)
    return _col2im(cols, (batch, out_channels, out_h, out_w), kh, kw, stride, padding)


def conv_transpose2d_backward(
    grad_out: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of :func:`conv_transpose2d_forward` w.r.t. input and weight."""
    in_channels, out_channels, kh, kw = weight.shape
    batch, _, height, width = x.shape
    # The adjoint of col2im is im2col on the output gradient.
    gcols = _im2col(grad_out, kh, kw, stride, padding)
    gcols = gcols[:, :, :, :, :height, :width]
    gcols_mat = gcols.reshape(batch, out_channels * kh * kw, height * width)
    x_mat = x.reshape(batch, in_channels, height * width)
    w_mat = weight.reshape(in_channels, out_channels * kh * kw)
    dx = np.einsum("ik,bkl->bil", w_mat, gcols_mat, optimize=True).reshape(x.shape)
    dw = np.einsum("bil,bkl->ik", x_mat, gcols_mat, optimize=True).reshape(weight.shape)
    return dx, dw
