"""Vmap-style stacked replay of one compiled train step for K replicas.

:class:`StackedTrainStep` takes the :class:`~repro.nn.compile.GraphProgram`
of ONE traced training step and re-executes its plan with every tensor
carrying a leading replica axis: parameters, activations, gradients and
(through :mod:`repro.core.replicas`) the Adam moments all become
``(K, ...)`` arrays, so K architecturally identical models train through
one batched program instead of K serial program replays.

Lifting rules
-------------
* **Elementwise** ops broadcast unchanged once both stacked operands
  agree on rank; a lower-rank stacked operand is viewed as
  ``(K, 1, ..., shape)`` so the replica axes stay aligned.  Scalar
  trace constants (loss weights and literals) are shared across
  replicas and broadcast naturally.
* **Reductions** shift their axes right by one (``axis=None`` becomes
  "all but the replica axis").
* **2-D matmuls** become batched 3-D matmuls — numpy's operator
  semantics, no new kernel.
* **Convolutions** merge the replica axis into the batch axis and reuse
  the solo fast kernels' im2col/col2im plumbing
  (:class:`~repro.nn.compile._Im2Col` / ``_Col2Im``) on ``(K*B, ...)``
  workspaces; the weight contraction keeps the replica axis through a
  batched matmul + batch-sum, mirroring ``_BatchGemmT``'s long-
  contraction strategy per replica.

Anything outside the lifted op set — or any structural surprise (non-
scalar constants, fancy indexing, reshapes that cannot be views) —
raises :class:`~repro.nn.compile.CompileUnsupported` at build time and
the caller falls back to serial per-replica training, which is always
the reference.  Per-replica results agree with solo replay to floating-
point reassociation (the weight-gradient contraction associates
differently than ``_BatchGemmT``'s short-contraction GEMM); the caller
verifies the first stacked step against solo replay before trusting a
session, and ``benchmarks/bench_loop_compile.py`` gates the loss curves
against the eager reference at 1e-10.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .compile import CompileUnsupported, GraphProgram, _Col2Im, _Im2Col
from .graph import stable_sigmoid

__all__ = ["StackedTrainStep"]


#: Ops the stacked interpreter knows how to lift.  Everything else is a
#: build-time ``CompileUnsupported`` (serial training is the fallback).
_LIFTED_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "abs", "exp", "sqrt",
        "tanh", "sigmoid", "softplus", "relu", "pow",
        "sum", "reshape", "transpose", "getitem", "matmul",
        "conv2d", "conv_transpose2d",
    }
)


def _as_view(array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """``array.reshape(shape)`` guaranteed to alias (never copy)."""
    view = array.reshape(shape)
    if view.base is None and view is not array:
        raise CompileUnsupported("stacked reshape would copy, not view")
    return view


def _stacked_unbroadcast(grad: np.ndarray, pshape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a stacked gradient onto a stacked parent shape.

    The replica axis (axis 0) is never reduced; extra broadcast axes sit
    immediately after it and kept-1 axes align trailing, exactly as in
    the solo ``_unbroadcast`` shifted right by one.
    """
    extra = (grad.ndim - 1) - len(pshape)
    if extra:
        grad = grad.sum(axis=tuple(range(1, 1 + extra)))
    axes = tuple(
        1 + i
        for i, size in enumerate(pshape)
        if size == 1 and grad.shape[1 + i] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class _StackedGemmT:
    """``_BatchGemmT`` with a leading replica axis — per replica,
    ``sum_b A[k,b] @ B[k,b].T``, choosing the SAME strategy by the same
    shape rule as the solo kernel so each replica slice reduces in the
    identical association (bitwise-equal to solo replay).  The short-
    contraction regime transposes all K replicas in two copies and runs
    one K-batched GEMM over the merged ``B*L`` axis instead of K
    round trips."""

    def __init__(self, k: int, a_shape, b_shape) -> None:
        batch, rows, length = a_shape
        _, cols, _ = b_shape
        self.out = np.empty((k, rows, cols))
        self.batched = length >= 32
        if self.batched:
            self.prod = np.empty((k, batch, rows, cols))
        else:
            self.a_t = np.empty((k, rows, batch, length))
            self.a_3d = self.a_t.reshape(k, rows, batch * length)
            self.b_t = np.empty((k, cols, batch, length))
            self.b_3d = self.b_t.reshape(k, cols, batch * length)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a`` is ``(K, B, R, L)``, ``b`` is ``(K, B, C, L)``."""
        if self.batched:
            np.matmul(a, b.transpose(0, 1, 3, 2), out=self.prod)
            np.sum(self.prod, axis=1, out=self.out)
            return self.out
        np.copyto(self.a_t, a.transpose(0, 2, 1, 3))
        np.copyto(self.b_t, b.transpose(0, 2, 1, 3))
        np.matmul(self.a_3d, self.b_3d.transpose(0, 2, 1), out=self.out)
        return self.out


class _StackedConv2d:
    """conv2d lifted to ``(K, B, ...)``: merged-batch im2col + one
    broadcast matmul; the backward mirrors the solo ``_Conv2dBackward``
    strategy choices (``_BatchGemmT`` regime, dx-as-correlation vs
    col2im) so each replica slice stays bitwise-equal to solo replay."""

    def __init__(self, attrs, x_shape, w_shape, k: int, need_dx: bool) -> None:
        stride, padding = attrs["stride"], attrs["padding"]
        batch, channels, height, width = x_shape
        out_ch, _, kh, kw = w_shape
        self.k, self.batch = k, batch
        self.x_merged = (k * batch, channels, height, width)
        self.unfold = _Im2Col(self.x_merged, kh, kw, stride, padding)
        oh, ow = self.unfold.oh, self.unfold.ow
        length, ckk = oh * ow, channels * kh * kw
        self.cols4 = self.unfold.cols_mat.reshape(k, batch, ckk, length)
        self.w_lift = (k, 1, out_ch, ckk)
        self.out = np.empty((k, batch, out_ch, oh, ow))
        self.out_mat = self.out.reshape(k, batch, out_ch, length)
        self.g_shape = (k, batch, out_ch, length)
        self.gemm_dw = _StackedGemmT(
            k, (batch, out_ch, length), (batch, ckk, length)
        )
        self.dw_shape = (k,) + w_shape
        self.need_dx = need_dx
        self.dx_as_conv = need_dx and stride == 1 and kh - 1 - padding >= 0
        if self.dx_as_conv:
            g_merged4 = (k * batch, out_ch, oh, ow)
            self.g_merged4 = g_merged4
            self.dx_unfold = _Im2Col(g_merged4, kh, kw, 1, kh - 1 - padding)
            okk = out_ch * kh * kw
            self.gcols4 = self.dx_unfold.cols_mat.reshape(
                k, batch, okk, height * width
            )
            self.w_flip = np.empty((k, channels, okk))
            self.w_flip_5d = self.w_flip.reshape(k, channels, out_ch, kh, kw)
            self.dx_buf = np.empty((k, batch, channels, height * width))
            self.dx_shape = (k, batch, channels, height, width)
        elif need_dx:
            hp, wp = height + 2 * padding, width + 2 * padding
            self.dcols6 = np.empty((k * batch, channels, kh, kw, oh, ow))
            self.dcols_mat = _as_view(self.dcols6, (k, batch, ckk, length))
            self.fold = _Col2Im(self.dcols6, (k * batch, channels, hp, wp), stride)
            self.pad = padding

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        self.unfold(_as_view(x, self.x_merged))
        np.matmul(_as_view(w, self.w_lift), self.cols4, out=self.out_mat)
        return self.out

    def backward(self, g: np.ndarray, w: np.ndarray):
        g_mat = _as_view(g, self.g_shape)
        dw = self.gemm_dw(g_mat, self.cols4).reshape(self.dw_shape)
        dx_merged = None
        if self.dx_as_conv:
            self.dx_unfold(_as_view(g, self.g_merged4))
            np.copyto(
                self.w_flip_5d, w[:, :, :, ::-1, ::-1].transpose(0, 2, 1, 3, 4)
            )
            np.matmul(self.w_flip[:, None], self.gcols4, out=self.dx_buf)
            dx_merged = _as_view(
                self.dx_buf.reshape(self.dx_shape),
                (self.k * self.batch,) + self.dx_shape[2:],
            )
        elif self.need_dx:
            w_t = _as_view(w, self.w_lift).transpose(0, 1, 3, 2)
            np.matmul(w_t, g_mat, out=self.dcols_mat)
            folded = self.fold()
            pad = self.pad
            dx_merged = folded[:, :, pad:-pad, pad:-pad] if pad else folded
        return dx_merged, dw


class _StackedConvT2d:
    """conv_transpose2d lifted to ``(K, B, ...)``, mirroring the solo
    ``_ConvT2dForward`` / ``_ConvT2dBackward`` pair on merged batches."""

    def __init__(self, attrs, x_shape, w_shape, out_shape, k: int, need_dx: bool):
        stride, padding = attrs["stride"], attrs["padding"]
        batch, in_ch, height, width = x_shape
        _, out_ch, kh, kw = w_shape
        out_h, out_w = out_shape[2], out_shape[3]
        okk, hw = out_ch * kh * kw, height * width
        self.k, self.batch = k, batch
        self.x_mat4 = (k, batch, in_ch, hw)
        self.w_flat = (k, in_ch, okk)
        self.cols6 = np.empty((k * batch, out_ch, kh, kw, height, width))
        self.cols_mat = _as_view(self.cols6, (k, batch, okk, hw))
        pad_shape = (k * batch, out_ch, out_h + 2 * padding, out_w + 2 * padding)
        self.fold = _Col2Im(self.cols6, pad_shape, stride)
        self.padding = padding
        self.out = np.empty((k, batch, out_ch, out_h, out_w))
        self.out_merged = self.out.reshape(k * batch, out_ch, out_h, out_w)
        # backward workspaces
        self.g_merged = (k * batch, out_ch, out_h, out_w)
        self.unfold = _Im2Col(self.g_merged, kh, kw, stride, padding)
        self.gcols = np.empty((k * batch, out_ch, kh, kw, height, width))
        self.gcols_src = self.unfold.cols[:, :, :, :, :height, :width]
        self.gcols_mat = _as_view(self.gcols, (k, batch, okk, hw))
        self.gemm_dw = _StackedGemmT(k, (batch, in_ch, hw), (batch, okk, hw))
        self.dw_shape = (k,) + w_shape
        self.need_dx = need_dx
        if need_dx:
            self.dx = np.empty((k, batch, in_ch, hw))
            self.dx_shape = (k,) + x_shape

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        x_mat = _as_view(x, self.x_mat4)
        w_t = _as_view(w, self.w_flat).transpose(0, 2, 1)[:, None]
        np.matmul(w_t, x_mat, out=self.cols_mat)
        folded = self.fold()
        pad = self.padding
        interior = folded[:, :, pad:-pad, pad:-pad] if pad else folded
        np.copyto(self.out_merged, interior)
        return self.out

    def backward(self, g: np.ndarray, x: np.ndarray, w: np.ndarray):
        self.unfold(_as_view(g, self.g_merged))
        np.copyto(self.gcols, self.gcols_src)
        x_mat = _as_view(x, self.x_mat4)
        dw = self.gemm_dw(x_mat, self.gcols_mat).reshape(self.dw_shape)
        dx = None
        if self.need_dx:
            w_m = _as_view(w, self.w_flat)[:, None]
            np.matmul(w_m, self.gcols_mat, out=self.dx)
            dx = self.dx.reshape(self.dx_shape)
        return dx, dw


class StackedTrainStep:
    """One solo program's plan, executing K replicas per replay.

    Built from a verified :class:`~repro.nn.compile.GraphProgram`.  The
    instance owns stacked storage for every node: parameters live in
    :attr:`param_storage` (filled by the caller, updated in place by the
    caller's stacked optimizer), inputs in :attr:`input_storage`
    (position-indexed, filled per step), and :meth:`run` executes the
    forward and backward schedules, leaving stacked parameter gradients
    in :attr:`param_grads` and returning the stacked named outputs.
    """

    def __init__(
        self,
        program: GraphProgram,
        k: int,
        param_storage: Optional[Dict[int, np.ndarray]] = None,
        grad_storage: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        """Lift ``program`` onto a leading replica axis of size ``k``.

        ``param_storage`` / ``grad_storage`` optionally supply the
        stacked parameter (and parameter-gradient) buffers per trace
        node id — e.g. views into a flat optimizer state — so the
        caller's update step needs no per-step copies in or out.
        """
        if k < 1:
            raise CompileUnsupported("stacked replay needs k >= 1")
        self.k = k
        plan = program.plan
        nodes = program._trace.nodes
        for nid in plan.sched:
            if plan.ops[nid] not in _LIFTED_OPS:
                raise CompileUnsupported(
                    f"op {plan.ops[nid]!r} has no stacked lifting"
                )
        for nid, value in program._trace.constants.items():
            if nid in plan.kinds and np.ndim(value) != 0:
                raise CompileUnsupported(
                    "stacked replay requires scalar trace constants"
                )

        storage: Dict[int, np.ndarray] = {}
        self._storage = storage
        # Leaves: constants shared as-is (scalars broadcast over the
        # replica axis); params and inputs get owned stacked buffers.
        for nid, value in program._trace.constants.items():
            if nid in plan.kinds:
                storage[nid] = value
        self._constants = set(program._trace.constants)
        self.param_entries = [
            (nid, tensor)
            for nid, tensor in program._trace.param_nodes.items()
            if nid in plan.kinds
        ]
        self.param_storage: Dict[int, np.ndarray] = {}
        for nid, tensor in self.param_entries:
            shape = (k,) + tuple(tensor.data.shape)
            if param_storage is not None and nid in param_storage:
                buf = param_storage[nid]
                if buf.shape != shape:
                    raise CompileUnsupported("bound param storage shape mismatch")
            else:
                buf = np.empty(shape)
            self.param_storage[nid] = buf
            storage[nid] = buf
        self.input_storage: Dict[int, np.ndarray] = {}
        self.input_positions: Dict[int, int] = {}
        for nid, position in program._trace.input_nodes.items():
            if nid not in plan.kinds:
                continue
            buf = np.empty((k,) + plan.shapes[nid])
            self.input_storage[position] = buf
            storage[nid] = buf

        # Dedicated stacked buffer per non-view op node (no arena: the
        # backward pass may read any value, and K is small).
        for nid in plan.sched:
            if not plan.view[nid]:
                storage[nid] = np.empty((k,) + plan.shapes[nid])

        # Reconstruct the backward receive/first-write structure from
        # the plan, exactly as GraphProgram derived it.
        received = {plan.loss_id}
        for nid in plan.grad_sched:
            for parent in plan.parents[nid]:
                if plan.requires_grad[parent]:
                    received.add(parent)
        self._grads: Dict[int, np.ndarray] = {}
        for nid in received:
            if nid == plan.loss_id:
                self._grads[nid] = np.ones((k,) + plan.shapes[nid])
            elif grad_storage is not None and nid in grad_storage:
                buf = grad_storage[nid]
                if buf.shape != (k,) + plan.shapes[nid]:
                    raise CompileUnsupported("bound grad storage shape mismatch")
                self._grads[nid] = buf
            else:
                self._grads[nid] = np.empty((k,) + plan.shapes[nid])
        self.param_grads: Dict[int, Optional[np.ndarray]] = {
            nid: self._grads.get(nid) for nid, _ in self.param_entries
        }
        self._outputs = dict(plan.outputs)

        # Build closures (forward order, then backward with sites).
        self._conv: Dict[int, object] = {}
        self._relu_mask: Dict[int, np.ndarray] = {}
        self._forward: List[Callable] = []
        for nid in plan.sched:
            self._forward.append(self._build_forward(program, nid))
        first_write = set(received) - {plan.loss_id}
        self._backward: List[Callable] = []
        for nid in plan.grad_sched:
            sites = []
            for slot, parent in enumerate(plan.parents[nid]):
                if parent not in self._grads:
                    continue
                sites.append((slot, parent, parent in first_write))
                first_write.discard(parent)
            self._backward.append(self._build_backward(program, nid, sites))

    # -- forward -------------------------------------------------------
    def _lifted_operand(self, plan, nid: int, out_ndim: int) -> np.ndarray:
        """The stacked (or shared-scalar) array for one parent node."""
        array = self._storage[nid]
        if nid in self._constants:
            return array  # scalar, broadcasts over every axis
        ndim = len(plan.shapes[nid])
        if ndim < out_ndim:
            shape = (self.k,) + (1,) * (out_ndim - ndim) + plan.shapes[nid]
            return _as_view(array, shape)
        return array

    def _build_forward(self, program: GraphProgram, nid: int) -> Callable:
        plan = program.plan
        storage = self._storage
        node = program._trace.nodes[nid]
        name, parents, attrs = plan.ops[nid], plan.parents[nid], node.attrs
        out_shape = plan.shapes[nid]
        k = self.k

        if name == "reshape":
            src = storage[parents[0]]
            storage[nid] = _as_view(src, (k,) + out_shape)
            return lambda: None
        if name == "transpose":
            axes = (0,) + tuple(a + 1 for a in attrs["axes"])
            storage[nid] = storage[parents[0]].transpose(axes)
            return lambda: None
        if name == "getitem":
            idx = attrs["idx"]
            if not GraphProgram._is_basic_index(idx):
                raise CompileUnsupported("stacked getitem requires basic indexing")
            if not isinstance(idx, tuple):
                idx = (idx,)
            storage[nid] = storage[parents[0]][(slice(None),) + idx]
            return lambda: None

        buf = storage[nid]
        if name == "matmul":
            a_shape = plan.shapes[parents[0]]
            b_shape = plan.shapes[parents[1]]
            if len(a_shape) != 2 or len(b_shape) != 2:
                raise CompileUnsupported("stacked matmul requires 2-D operands")
            a, b = storage[parents[0]], storage[parents[1]]
            return lambda: np.matmul(a, b, out=buf)
        if name == "conv2d":
            need_dx = plan.requires_grad[parents[0]]
            kernel = _StackedConv2d(
                attrs, plan.shapes[parents[0]], plan.shapes[parents[1]], k, need_dx
            )
            self._conv[nid] = kernel
            storage[nid] = kernel.out
            x, w = storage[parents[0]], storage[parents[1]]
            return lambda: kernel.forward(x, w)
        if name == "conv_transpose2d":
            need_dx = plan.requires_grad[parents[0]]
            kernel = _StackedConvT2d(
                attrs,
                plan.shapes[parents[0]],
                plan.shapes[parents[1]],
                out_shape,
                k,
                need_dx,
            )
            self._conv[nid] = kernel
            storage[nid] = kernel.out
            x, w = storage[parents[0]], storage[parents[1]]
            return lambda: kernel.forward(x, w)
        if name == "sum":
            axis, keepdims = attrs["axis"], attrs["keepdims"]
            src_nd = len(plan.shapes[parents[0]])
            if axis is None:
                axis = tuple(range(1, src_nd + 1))
            elif isinstance(axis, tuple):
                axis = tuple(a + 1 if a >= 0 else a for a in axis)
            else:
                axis = axis + 1 if axis >= 0 else axis
            src = storage[parents[0]]
            return lambda: np.sum(src, axis=axis, keepdims=keepdims, out=buf)

        # Elementwise (rank-aligned stacked broadcasting).
        out_nd = len(out_shape) + 1
        ops = [self._lifted_operand(plan, p, out_nd - 1) for p in parents]
        if name == "add":
            a, b = ops
            return lambda: np.add(a, b, out=buf)
        if name == "sub":
            a, b = ops
            return lambda: np.subtract(a, b, out=buf)
        if name == "mul":
            a, b = ops
            return lambda: np.multiply(a, b, out=buf)
        if name == "div":
            a, b = ops
            return lambda: np.divide(a, b, out=buf)
        if name == "neg":
            (a,) = ops
            return lambda: np.negative(a, out=buf)
        if name == "abs":
            (a,) = ops
            return lambda: np.abs(a, out=buf)
        if name == "exp":
            (a,) = ops
            return lambda: np.exp(a, out=buf)
        if name == "sqrt":
            (a,) = ops
            return lambda: np.sqrt(a, out=buf)
        if name == "tanh":
            (a,) = ops
            return lambda: np.tanh(a, out=buf)
        if name == "sigmoid":
            (a,) = ops
            return lambda: stable_sigmoid(a, out=buf)
        if name == "softplus":
            (a,) = ops
            return lambda: np.logaddexp(0.0, a, out=buf)
        if name == "relu":
            (a,) = ops
            mask = np.empty(buf.shape, dtype=bool)
            self._relu_mask[nid] = mask

            def run_relu():
                np.greater(a, 0, out=mask)
                np.multiply(a, mask, out=buf)

            return run_relu
        if name == "pow":
            (a,) = ops
            exponent = attrs["exponent"]
            return lambda: np.power(a, exponent, out=buf)
        raise CompileUnsupported(f"op {name!r} has no stacked lifting")

    # -- backward ------------------------------------------------------
    def _apply_site(self, parent: int, first: bool, value: np.ndarray) -> None:
        target = self._grads[parent]
        if value.shape != target.shape:
            value = _stacked_unbroadcast(value, target.shape[1:])
        if first:
            np.copyto(target, value)
        else:
            target += value

    def _build_backward(self, program: GraphProgram, nid: int, sites) -> Callable:
        plan = program.plan
        storage = self._storage
        node = program._trace.nodes[nid]
        name, parents, attrs = plan.ops[nid], plan.parents[nid], node.attrs
        grads = self._grads
        apply_site = self._apply_site
        k = self.k

        conv = self._conv.get(nid)
        if conv is not None and name == "conv2d":
            w_nid = parents[1]

            def conv_bwd():
                dx_merged, dw = conv.backward(grads[nid], storage[w_nid])
                for slot, parent, first in sites:
                    if slot == 1:
                        apply_site(parent, first, dw)
                    else:
                        target = grads[parent]
                        merged = target.reshape(
                            (target.shape[0] * target.shape[1],) + target.shape[2:]
                        )
                        if first:
                            np.copyto(merged, dx_merged)
                        else:
                            merged += dx_merged

            return conv_bwd
        if conv is not None and name == "conv_transpose2d":
            x_nid, w_nid = parents

            def convt_bwd():
                dx, dw = conv.backward(grads[nid], storage[x_nid], storage[w_nid])
                for slot, parent, first in sites:
                    apply_site(parent, first, dw if slot == 1 else dx)

            return convt_bwd

        out_nd = len(plan.shapes[nid])
        # Operand views and scratch are resolved at build time: forward
        # storage is fully bound before any backward closure is built,
        # the buffers update in place, and a dedicated ``val`` scratch
        # per node keeps the steady-state backward allocation-free
        # (unbroadcast reductions onto bias-shaped parents still
        # allocate; they are small).
        def scratch() -> np.ndarray:
            return np.empty((k,) + plan.shapes[nid])

        if name in ("add", "sub"):
            neg = scratch() if name == "sub" and any(s[0] == 1 for s in sites) else None

            def addsub_bwd():
                g = grads[nid]
                for slot, parent, first in sites:
                    if name == "sub" and slot == 1:
                        np.negative(g, out=neg)
                        apply_site(parent, first, neg)
                    else:
                        apply_site(parent, first, g)

            return addsub_bwd
        if name == "mul":
            others = [self._lifted_operand(plan, p, out_nd) for p in parents]
            val = scratch()

            def mul_bwd():
                g = grads[nid]
                for slot, parent, first in sites:
                    np.multiply(g, others[1 - slot], out=val)
                    apply_site(parent, first, val)

            return mul_bwd
        if name == "div":
            a_op = self._lifted_operand(plan, parents[0], out_nd)
            b_op = self._lifted_operand(plan, parents[1], out_nd)
            val = scratch()

            def div_bwd():
                g = grads[nid]
                for slot, parent, first in sites:
                    if slot == 0:
                        np.divide(g, b_op, out=val)
                        apply_site(parent, first, val)
                    else:
                        apply_site(parent, first, -g * a_op / (b_op * b_op))

            return div_bwd
        if name == "neg":
            val = scratch()

            def neg_bwd():
                np.negative(grads[nid], out=val)
                for slot, parent, first in sites:
                    apply_site(parent, first, val)

            return neg_bwd
        if name == "abs":
            src = self._lifted_operand(plan, parents[0], out_nd)
            val, sign = scratch(), scratch()

            def abs_bwd():
                np.sign(src, out=sign)
                np.multiply(grads[nid], sign, out=val)
                for slot, parent, first in sites:
                    apply_site(parent, first, val)

            return abs_bwd
        if name in ("exp", "sqrt", "tanh", "sigmoid"):
            out_buf = storage[nid]
            val = scratch()

            def unary_bwd():
                g = grads[nid]
                if name == "exp":
                    np.multiply(g, out_buf, out=val)
                elif name == "sqrt":
                    np.multiply(g, 0.5, out=val)
                    np.divide(val, out_buf, out=val)
                elif name == "tanh":
                    np.multiply(out_buf, out_buf, out=val)
                    np.subtract(1.0, val, out=val)
                    np.multiply(g, val, out=val)
                else:  # sigmoid
                    np.subtract(1.0, out_buf, out=val)
                    np.multiply(out_buf, val, out=val)
                    np.multiply(g, val, out=val)
                for slot, parent, first in sites:
                    apply_site(parent, first, val)

            return unary_bwd
        if name == "softplus":
            src = self._lifted_operand(plan, parents[0], out_nd)
            val, sig = scratch(), scratch()

            def softplus_bwd():
                stable_sigmoid(src, out=sig)
                np.multiply(grads[nid], sig, out=val)
                for slot, parent, first in sites:
                    apply_site(parent, first, val)

            return softplus_bwd
        if name == "relu":
            mask = self._relu_mask[nid]
            val = scratch()

            def relu_bwd():
                np.multiply(grads[nid], mask, out=val)
                for slot, parent, first in sites:
                    apply_site(parent, first, val)

            return relu_bwd
        if name == "pow":
            exponent = attrs["exponent"]
            base = self._lifted_operand(plan, parents[0], out_nd)
            val = scratch()

            def pow_bwd():
                np.power(base, exponent - 1, out=val)
                np.multiply(val, exponent, out=val)
                np.multiply(grads[nid], val, out=val)
                for slot, parent, first in sites:
                    apply_site(parent, first, val)

            return pow_bwd
        if name == "sum":
            axis, keepdims = attrs["axis"], attrs["keepdims"]
            pshape = plan.shapes[parents[0]]
            expand_axis = None
            if axis is not None and not keepdims:
                expand_axis = axis + 1 if axis >= 0 else axis

            def sum_bwd():
                g = grads[nid]
                if axis is None:
                    g = g.reshape((k,) + (1,) * len(pshape))
                elif expand_axis is not None:
                    g = np.expand_dims(g, axis=expand_axis)
                value = np.broadcast_to(g, (k,) + pshape)
                for slot, parent, first in sites:
                    apply_site(parent, first, value)

            return sum_bwd
        if name == "reshape":
            pshape = plan.shapes[parents[0]]

            def reshape_bwd():
                value = grads[nid].reshape((k,) + pshape)
                for slot, parent, first in sites:
                    apply_site(parent, first, value)

            return reshape_bwd
        if name == "transpose":
            inverse = (0,) + tuple(a + 1 for a in attrs["inverse"])

            def transpose_bwd():
                value = grads[nid].transpose(inverse)
                for slot, parent, first in sites:
                    apply_site(parent, first, value)

            return transpose_bwd
        if name == "getitem":
            idx = attrs["idx"]
            if not isinstance(idx, tuple):
                idx = (idx,)
            full_idx = (slice(None),) + idx
            pshape = plan.shapes[parents[0]]
            full = np.zeros((k,) + pshape)

            def getitem_bwd():
                # Basic slicing has no duplicate indices: assignment
                # equals the reference np.add.at over zeros.
                full.fill(0.0)
                full[full_idx] = grads[nid]
                for slot, parent, first in sites:
                    apply_site(parent, first, full)

            return getitem_bwd
        if name == "matmul":
            a_nid, b_nid = parents
            a_t = storage[a_nid].transpose(0, 2, 1)
            b_t = storage[b_nid].transpose(0, 2, 1)
            vals = {
                slot: np.empty((k,) + plan.shapes[parents[slot]])
                for slot, _, _ in sites
            }

            def matmul_bwd():
                g = grads[nid]
                for slot, parent, first in sites:
                    val = vals[slot]
                    if slot == 0:
                        np.matmul(g, b_t, out=val)
                    else:
                        np.matmul(a_t, g, out=val)
                    apply_site(parent, first, val)

            return matmul_bwd
        raise CompileUnsupported(f"op {name!r} has no stacked VJP")

    # -- execution -----------------------------------------------------
    def run(
        self, inputs: Optional[Sequence[np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        """One stacked forward+backward; ``inputs[i]`` is ``(K, ...)``.

        With ``inputs=None`` the caller has already written this step's
        batch directly into :attr:`input_storage` (the zero-copy path).
        Parameter gradients land in :attr:`param_grads`; the caller owns
        clipping and the stacked optimizer update (and must refresh
        :attr:`param_storage` before the next call).
        """
        if inputs is not None:
            for position, buf in self.input_storage.items():
                np.copyto(buf, inputs[position])
        for instr in self._forward:
            instr()
        for instr in self._backward:
            instr()
        return {name: self._storage[nid] for name, nid in self._outputs.items()}
