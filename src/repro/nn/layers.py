"""Neural-network layers: the ``Module`` hierarchy of :mod:`repro.nn`.

A :class:`Module` owns named parameters (leaf :class:`~repro.nn.Tensor`
objects with ``requires_grad=True``) and optional sub-modules, mirroring the
familiar ``torch.nn`` API surface closely enough that the CircuitVAE model
code reads like its PyTorch original.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "ConvTranspose2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "MLP",
]


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Tensor` parameters and child ``Module`` objects
    as attributes; :meth:`parameters` and :meth:`state_dict` discover them by
    introspection, so no explicit registration calls are needed.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # -- discovery -----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, value in sorted(vars(self).items()):
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- train / eval ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradient bookkeeping --------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- serialization ----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            value = np.asarray(state[name])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {p.data.shape}, got {value.shape}"
                )
            p.data[...] = value

    # -- call protocol ------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully-connected layer: ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.kaiming_uniform((out_features, in_features), rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW activations."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Tensor(init.kaiming_uniform(shape, rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class ConvTranspose2d(Module):
    """Transposed 2-D convolution (decoder upsampling)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Tensor(init.kaiming_uniform(shape, rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Tensor(np.ones(normalized_shape), requires_grad=True)
        self.bias = Tensor(np.zeros(normalized_shape), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class Sequential(Module):
    """Run modules in order, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    This is the shape of the paper's cost predictor (a 2-layer MLP on the
    latent vector) and of the dense heads inside the encoder/decoder.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        output_activation: Optional[Module] = None,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        layers: List[Module] = []
        for i, (a, b) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(a, b, rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        if output_activation is not None:
            layers.append(output_activation)
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
