"""Trace-then-replay compiler for :mod:`repro.nn` training steps.

The eager tape re-dispatches every op through Python on every training
step even though the step's graph never changes shape.  This module
traces ONE step into the explicit :class:`~repro.nn.graph.Node` IR and
compiles it into a :class:`GraphProgram`:

* **Topological schedule** — the op list in recorded order, pruned to
  the ancestors of the requested outputs; the backward schedule
  replicates the eager engine's DFS order exactly, so gradient
  accumulation associates identically and results stay bit-for-bit
  equal to eager.
* **Liveness-analyzed buffer arena** — every intermediate gets a
  preallocated numpy buffer written with ``out=`` kernels; values not
  needed by any VJP are placed in a shared arena where buffers are
  reused across liveness-disjoint intermediates, and *all* buffers are
  reused across steps (zero allocations in the steady-state forward
  pass).
* **Fused elementwise chains** — single-consumer runs of same-shape
  elementwise ops whose intermediates are dead in backward (e.g. the
  VAE reparameterization's ``mul -> exp -> mul -> add``) collapse onto
  one scratch buffer and execute as a single in-place pass.
* **Fast kernels** — convolutions replay through matmul-based kernels
  with persistent im2col workspaces (the batched GEMM numpy's einsum
  performs internally, called directly), and the backward pass reuses
  the forward's unfolded patches instead of re-unfolding.
* **Shape-guarded replay** — programs are cached per input-shape
  signature; a new shape triggers a fresh trace, never a wrong replay.

**Equivalence contract**: a compiled step must be *numerically
equivalent* to the eager step.  The compiler enforces this mechanically:
at compile time the program runs once on the traced arrays and its
outputs and parameter gradients are compared against the eager engine's
(`verify`); any mismatch raises :class:`CompileUnsupported` and the
caller falls back to eager.  Traces that use closure-based ops
(``Tensor._make``) or mixed dtypes are likewise rejected up front.

The traced function must route **all per-step data through its declared
inputs** — any tensor it creates internally is captured as a trace-time
constant (that is what makes replay cheap, and the verify pass will not
catch a violation that only manifests on later batches).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .graph import OPS, Node, Trace
from .optim import Optimizer, clip_grad_norm
from .tensor import Tensor, _unbroadcast

__all__ = [
    "CompileUnsupported",
    "CompileStats",
    "GraphProgram",
    "ProgramPlan",
    "CompiledTrainStep",
    "compile_train_step",
    "ir_verify_enabled",
    "profile_enabled",
]


def ir_verify_enabled() -> bool:
    """``REPRO_IR_VERIFY=1``: run the IR verifier on every compile.

    Like :func:`profile_enabled`, this is consulted at *compile* time
    only — steady-state replay never pays for verification.  Findings
    reject the program (``CompileUnsupported``), so training falls back
    to the always-correct eager tape instead of replaying a program the
    verifier could not prove safe.
    """
    return os.environ.get("REPRO_IR_VERIFY", "0").strip() not in ("", "0")


def profile_enabled() -> bool:
    """``REPRO_PROFILE=1``: per-kernel replay timings (see GraphProgram).

    Checked once per program *build*, not per replay, so flipping the
    variable mid-run only affects programs compiled afterwards.
    """
    return os.environ.get("REPRO_PROFILE", "0").strip() not in ("", "0")


def _profiled(instr: Callable, label: str, totals: Dict[str, float]) -> Callable:
    """Wrap one replay instruction with a cumulative perf_counter timer."""

    def run_profiled() -> None:
        start = time.perf_counter()
        instr()
        totals[label] = totals.get(label, 0.0) + (time.perf_counter() - start)

    return run_profiled


class CompileUnsupported(RuntimeError):
    """The traced step cannot be compiled (caller should run eager)."""


@dataclass
class CompileStats:
    """Counters one :class:`CompiledTrainStep` accumulates.

    ``traces`` counts compilations (one per new input-shape signature),
    ``replays`` counts steps served by a cached program, ``fallbacks``
    counts steps that ran eager because compilation was rejected.  The
    rest describe the most recently built program.
    """

    traces: int = 0
    replays: int = 0
    fallbacks: int = 0
    fused_chains: int = 0
    fused_ops: int = 0
    buffers: int = 0
    arena_slots: int = 0
    arena_reused: int = 0
    fast_kernels: int = 0
    nodes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class ProgramPlan:
    """The structured scheduling/storage decisions of one program.

    :class:`GraphProgram` retains this alongside the closed-over replay
    instructions so the IR verifier (:mod:`repro.check.ir`) can prove
    the plan sound — def-before-use, no live-slot overwrite, backward
    topological order, fused-chain legality — without re-deriving it
    from the closures.  Everything here is plain data (ints, tuples,
    dicts keyed by node id); ``buffer_token`` maps each materialized
    alias root to the identity of its backing array, so two roots
    sharing storage share a token.  Tests mutate copies of this to
    inject IR bugs and assert the verifier catches them.
    """

    sched: List[int] = field(default_factory=list)
    grad_sched: List[int] = field(default_factory=list)
    kinds: Dict[int, str] = field(default_factory=dict)
    ops: Dict[int, str] = field(default_factory=dict)
    parents: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    shapes: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    requires_grad: Dict[int, bool] = field(default_factory=dict)
    view: Dict[int, bool] = field(default_factory=dict)
    elementwise: Dict[int, bool] = field(default_factory=dict)
    has_kernel: Dict[int, bool] = field(default_factory=dict)
    root: Dict[int, int] = field(default_factory=dict)
    buffer_token: Dict[int, int] = field(default_factory=dict)
    pinned_roots: set = field(default_factory=set)
    needed_val: set = field(default_factory=set)
    fused_links: List[Tuple[int, int]] = field(default_factory=list)
    outputs: Dict[str, int] = field(default_factory=dict)
    loss_id: int = -1

    def copy(self) -> "ProgramPlan":
        """A deep-enough copy for corruption-injection tests."""
        return ProgramPlan(
            sched=list(self.sched),
            grad_sched=list(self.grad_sched),
            kinds=dict(self.kinds),
            ops=dict(self.ops),
            parents=dict(self.parents),
            shapes=dict(self.shapes),
            requires_grad=dict(self.requires_grad),
            view=dict(self.view),
            elementwise=dict(self.elementwise),
            has_kernel=dict(self.has_kernel),
            root=dict(self.root),
            buffer_token=dict(self.buffer_token),
            pinned_roots=set(self.pinned_roots),
            needed_val=set(self.needed_val),
            fused_links=list(self.fused_links),
            outputs=dict(self.outputs),
            loss_id=self.loss_id,
        )


# ----------------------------------------------------------------------
# Fast convolution kernels (persistent workspaces, matmul-based)
# ----------------------------------------------------------------------
class _Col2Im:
    """Adjoint of im2col as one flat ``bincount`` scatter-add.

    The destination index of every patch element is static, so it is
    precomputed once; each call is a single vectorized scatter-sum —
    2-5x faster than the reference loop of strided adds (whose
    per-``(u, v)`` numpy dispatch dominates at CNN-VAE sizes) and equal
    to it up to summation order.
    """

    def __init__(self, cols6: np.ndarray, padded_shape, stride: int) -> None:
        batch, channels, kh, kw, oh, ow = cols6.shape
        hp, wp = padded_shape[2], padded_shape[3]
        self.shape = (batch, channels, hp, wp)
        self.size = batch * channels * hp * wp
        plane = hp * wp
        per_patch = np.empty((kh, kw, oh, ow), dtype=np.intp)
        for u in range(kh):
            for v in range(kw):
                rows = u + stride * np.arange(oh)
                cols_ = v + stride * np.arange(ow)
                per_patch[u, v] = rows[:, None] * wp + cols_[None, :]
        offsets = (np.arange(batch * channels) * plane)[:, None]
        self.index = (per_patch.reshape(1, -1) + offsets).ravel()
        self.weights = cols6.reshape(-1)  # view of the persistent workspace

    def __call__(self) -> np.ndarray:
        folded = np.bincount(self.index, weights=self.weights, minlength=self.size)
        return folded.reshape(self.shape)


class _Im2Col:
    """Persistent unfold workspace: x (B,C,H,W) -> cols (B, C*kh*kw, L).

    The strided window view into the (persistent) padded buffer is built
    once; each call is one interior copy plus one gather copy.
    """

    def __init__(self, x_shape, kh, kw, stride, padding):
        batch, channels, height, width = x_shape
        self.stride, self.padding = stride, padding
        hp, wp = height + 2 * padding, width + 2 * padding
        self.oh = (hp - kh) // stride + 1
        self.ow = (wp - kw) // stride + 1
        self.pad_buf = np.zeros((batch, channels, hp, wp)) if padding else None
        self.cols = np.empty((batch, channels, kh, kw, self.oh, self.ow))
        self.cols_mat = self.cols.reshape(batch, channels * kh * kw, self.oh * self.ow)
        self.kh, self.kw = kh, kw
        self._window_src = None
        self._windows = None
        self._interior = None
        if padding:
            self._interior = self.pad_buf[:, :, padding:-padding, padding:-padding]
            self._bind_windows(self.pad_buf)

    def _bind_windows(self, xp: np.ndarray) -> None:
        windows = sliding_window_view(xp, (self.kh, self.kw), axis=(2, 3))
        windows = windows[:, :, :: self.stride, :: self.stride, :, :]
        self._windows = windows.transpose(0, 1, 4, 5, 2, 3)
        self._window_src = xp

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.padding:
            np.copyto(self._interior, x)
        elif x is not self._window_src:
            # Unpadded inputs are caller-owned arrays; rebind lazily (the
            # compiled executor feeds the same buffer every step).
            self._bind_windows(x)
        np.copyto(self.cols, self._windows)
        return self.cols_mat


class _BatchGemmT:
    """``sum_b A[b] @ B[b].T`` — the weight-gradient contraction
    (``bol,bkl->ok`` / ``bil,bkl->ik``).

    Two static strategies, chosen by shape at build time (deterministic,
    so replays across processes stay identical):

    * long contraction (L >= 32): batched matmul into a small (B, R, C)
      workspace, then a batch sum — avoids transposing the large cols
      operand entirely;
    * short contraction: transpose both operands into contiguous
      workspaces and issue one 2-D GEMM (what einsum does internally).

    Both differ from einsum only in summation association (~1 ulp),
    which the program-level verify pass bounds.
    """

    def __init__(self, a_shape, b_shape):
        batch, rows, length = a_shape
        _, cols, _ = b_shape
        self.out = np.empty((rows, cols))
        self.batched = length >= 32
        if self.batched:
            self.prod = np.empty((batch, rows, cols))
        else:
            self.a_t = np.empty((rows, batch, length))
            self.a_2d = self.a_t.reshape(rows, batch * length)
            self.b_t = np.empty((cols, batch, length))
            self.b_2d = self.b_t.reshape(cols, batch * length)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.batched:
            np.matmul(a, b.transpose(0, 2, 1), out=self.prod)
            np.sum(self.prod, axis=0, out=self.out)
            return self.out
        np.copyto(self.a_t, a.transpose(1, 0, 2))
        np.copyto(self.b_t, b.transpose(1, 0, 2))
        return np.matmul(self.a_2d, self.b_2d.T, out=self.out)


class _Conv2dForward:
    """conv2d replay kernel: im2col once + broadcast matmul into ``out``."""

    def __init__(self, node: Node, x_shape, w_shape, out_buf):
        stride, padding = node.attrs["stride"], node.attrs["padding"]
        self.unfold = _Im2Col(x_shape, w_shape[2], w_shape[3], stride, padding)
        batch = x_shape[0]
        self.out_buf = out_buf
        self.out_mat = out_buf.reshape(batch, w_shape[0], -1)
        self.w_rows = w_shape[0]

    def __call__(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        cols = self.unfold(x)
        np.matmul(w.reshape(self.w_rows, -1), cols, out=self.out_mat)
        return self.out_buf


class _Conv2dBackward:
    """conv2d VJP reusing the forward's unfolded patches."""

    def __init__(self, forward: _Conv2dForward, node: Node, x_shape, w_shape, need_dx):
        stride, padding = node.attrs["stride"], node.attrs["padding"]
        self.forward = forward
        self.w_shape = w_shape
        self.x_shape = x_shape
        self.need_dx = need_dx
        batch = x_shape[0]
        length = forward.unfold.oh * forward.unfold.ow
        g_shape = (batch, w_shape[0], length)
        self.g_shape = g_shape
        self.gemm_dw = _BatchGemmT(g_shape, forward.unfold.cols_mat.shape)
        # The flip-kernel correlation needs a non-negative flipped
        # padding (kh - 1 - padding); otherwise fall back to col2im.
        self.dx_as_conv = need_dx and stride == 1 and w_shape[2] - 1 - padding >= 0
        if self.dx_as_conv:
            # Stride-1 dx is a correlation of g with the spatially
            # flipped, channel-swapped kernel: unfold the (small) output
            # gradient once and issue one matmul — no scatter-add at
            # all.  (Verified ~1 ulp from the reference col2im path.)
            kh, kw = w_shape[2], w_shape[3]
            g_shape4 = (batch, w_shape[0], forward.unfold.oh, forward.unfold.ow)
            self.dx_unfold = _Im2Col(g_shape4, kh, kw, 1, kh - 1 - padding)
            self.w_flip = np.empty((x_shape[1], w_shape[0] * kh * kw))
            self.w_flip_4d = self.w_flip.reshape(
                x_shape[1], w_shape[0], kh, kw
            )
            self.dx_buf = np.empty((batch, x_shape[1], x_shape[2] * x_shape[3]))
        elif need_dx:
            self.pad = padding
            self.dcols = np.empty_like(forward.unfold.cols)
            self.dcols_mat = self.dcols.reshape(forward.unfold.cols_mat.shape)
            pad_shape = (
                batch,
                x_shape[1],
                x_shape[2] + 2 * padding,
                x_shape[3] + 2 * padding,
            )
            self.fold = _Col2Im(self.dcols, pad_shape, stride)

    def __call__(self, g, x, w):
        g_mat = g.reshape(self.g_shape)
        dw = self.gemm_dw(g_mat, self.forward.unfold.cols_mat).reshape(self.w_shape)
        dx = None
        if self.dx_as_conv:
            gcols = self.dx_unfold(g)
            np.copyto(self.w_flip_4d, w[:, :, ::-1, ::-1].transpose(1, 0, 2, 3))
            np.matmul(self.w_flip, gcols, out=self.dx_buf)
            dx = self.dx_buf.reshape(self.x_shape)
        elif self.need_dx:
            np.matmul(w.reshape(self.w_shape[0], -1).T, g_mat, out=self.dcols_mat)
            folded = self.fold()
            pad = self.pad
            dx = folded[:, :, pad:-pad, pad:-pad] if pad else folded
        return dx, dw


class _ConvT2dForward:
    """conv_transpose2d replay kernel: matmul + persistent col2im."""

    def __init__(self, node: Node, x_shape, w_shape, out_buf):
        stride, padding = node.attrs["stride"], node.attrs["padding"]
        batch, in_ch, height, width = x_shape
        _, out_ch, kh, kw = w_shape
        self.stride, self.padding = stride, padding
        self.x_mat_shape = (batch, in_ch, height * width)
        self.cols = np.empty((batch, out_ch, kh, kw, height, width))
        self.cols_mat = self.cols.reshape(batch, out_ch * kh * kw, height * width)
        out_h, out_w = out_buf.shape[2], out_buf.shape[3]
        pad_shape = (batch, out_ch, out_h + 2 * padding, out_w + 2 * padding)
        self.fold = _Col2Im(self.cols, pad_shape, stride)
        self.out_buf = out_buf
        self.in_ch = in_ch

    def __call__(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        x_mat = x.reshape(self.x_mat_shape)
        np.matmul(w.reshape(self.in_ch, -1).T, x_mat, out=self.cols_mat)
        folded = self.fold()
        pad = self.padding
        interior = folded[:, :, pad:-pad, pad:-pad] if pad else folded
        np.copyto(self.out_buf, interior)
        return self.out_buf


class _ConvT2dBackward:
    """conv_transpose2d VJP: unfold the output gradient, two matmuls."""

    def __init__(self, node: Node, x_shape, w_shape, g_shape, need_dx):
        stride, padding = node.attrs["stride"], node.attrs["padding"]
        batch, in_ch, height, width = x_shape
        _, out_ch, kh, kw = w_shape
        self.unfold = _Im2Col(g_shape, kh, kw, stride, padding)
        self.x_shape, self.w_shape = x_shape, w_shape
        self.gcols = np.empty((batch, out_ch, kh, kw, height, width))
        self.gcols_mat = self.gcols.reshape(batch, out_ch * kh * kw, height * width)
        self.gcols_src = self.unfold.cols[:, :, :, :, :height, :width]
        self.in_ch = in_ch
        self.x_mat_shape = (batch, in_ch, height * width)
        self.gemm_dw = _BatchGemmT(self.x_mat_shape, self.gcols_mat.shape)
        self.need_dx = need_dx
        if need_dx:
            self.dx = np.empty(self.x_mat_shape)

    def __call__(self, g, x, w):
        self.unfold(g)
        np.copyto(self.gcols, self.gcols_src)
        x_mat = x.reshape(self.x_mat_shape)
        dw = self.gemm_dw(x_mat, self.gcols_mat).reshape(self.w_shape)
        dx = None
        if self.need_dx:
            np.matmul(w.reshape(self.in_ch, -1), self.gcols_mat, out=self.dx)
            dx = self.dx.reshape(self.x_shape)
        return dx, dw


# ----------------------------------------------------------------------
# The compiled program
# ----------------------------------------------------------------------
class GraphProgram:
    """One traced step, scheduled onto preallocated storage.

    Built from a :class:`~repro.nn.graph.Trace` plus the ids of the loss
    node and the named output nodes.  ``run(inputs)`` executes the
    forward schedule, then the backward schedule (accumulating into the
    bound parameters' ``.grad`` buffers), and returns the output arrays.
    The caller owns gradient clipping and the optimizer step.
    """

    def __init__(
        self,
        trace: Trace,
        outputs: Dict[str, int],
        loss_id: int,
        params: Sequence[Tensor],
        stats: Optional[CompileStats] = None,
    ) -> None:
        self.stats = stats if stats is not None else CompileStats()
        self._trace = trace
        self._outputs = dict(outputs)
        self._loss_id = loss_id
        self._params = list(params)
        nodes = trace.nodes
        if any(n.dtype != np.float64 for n in nodes):
            raise CompileUnsupported("compiled training supports float64 graphs only")

        # -- 1. prune to ancestors of the outputs ----------------------
        keep = set()
        stack = list(self._outputs.values())
        while stack:
            nid = stack.pop()
            if nid in keep:
                continue
            keep.add(nid)
            stack.extend(nodes[nid].parents)
        self._keep = keep
        sched = [n.id for n in nodes if n.id in keep and n.kind == "op"]
        pos = {nid: i for i, nid in enumerate(sched)}

        # -- 2. backward schedule: replicate the eager DFS exactly -----
        order: List[int] = []
        visited = set()
        dfs: List[Tuple[int, bool]] = [(loss_id, False)]
        while dfs:
            nid, processed = dfs.pop()
            if processed:
                order.append(nid)
                continue
            if nid in visited:
                continue
            visited.add(nid)
            dfs.append((nid, True))
            node = nodes[nid]
            if node.kind == "op" and node.requires_grad:
                for parent in node.parents:
                    if parent not in visited:
                        dfs.append((parent, False))
        received = {loss_id}
        grad_sched: List[int] = []
        for nid in reversed(order):
            if nid not in received:
                continue
            node = nodes[nid]
            if node.kind == "op" and node.requires_grad:
                grad_sched.append(nid)
                for parent in node.parents:
                    if nodes[parent].requires_grad:
                        received.add(parent)
        self._grad_sched = grad_sched

        # -- 3. which values does the backward pass read? --------------
        # Two compiled-executor refinements over the registry metadata:
        # relu backward multiplies by a boolean mask cached at forward
        # time (so its input need not survive), and the conv2d VJP
        # reuses the forward's unfolded patches (so only the weight — a
        # param leaf — is read).  Both keep large activations out of the
        # pinned set, which is what lets whole conv->bias->relu blocks
        # fuse onto scratch buffers.
        self._relu_masks: Dict[int, np.ndarray] = {}
        needed_val = set(self._outputs.values())
        for nid in grad_sched:
            node = nodes[nid]
            op = OPS[node.op]
            if node.op == "relu":
                self._relu_masks[nid] = np.empty(node.shape, dtype=bool)
                continue
            if node.op == "conv2d":
                needed_val.add(node.parents[1])
                continue
            if op.needs_out:
                needed_val.add(nid)
            if op.needs_inputs:
                needed_val.update(node.parents)

        # -- 4. alias roots (views share their base's storage) ---------
        root: Dict[int, int] = {}
        for nid in sorted(keep):
            node = nodes[nid]
            if node.kind == "op" and OPS[node.op].view:
                root[nid] = root[node.parents[0]]
            else:
                root[nid] = nid
        consumers: Dict[int, List[int]] = {nid: [] for nid in keep}
        for nid in sched:
            for parent in nodes[nid].parents:
                consumers[parent].append(nid)
        last_use: Dict[int, int] = {}
        for nid in sched:
            last_use[root[nid]] = max(last_use.get(root[nid], -1), pos[nid])
            for parent in nodes[nid].parents:
                last_use[root[parent]] = max(last_use.get(root[parent], -1), pos[nid])
        pinned_roots = {root[nid] for nid in needed_val}

        # -- 5. fused elementwise chains -------------------------------
        # j -> k fuses when j is elementwise with an out= kernel, k is
        # its only consumer, shapes match, and j's value is dead in
        # backward: then j writes into a chain scratch that k reads and
        # overwrites in place — the chain runs as one buffer-resident
        # pass with no intermediate materialization.
        fuse_next: Dict[int, int] = {}
        fused_parent_of: Dict[int, int] = {}
        for nid in sched:
            node = nodes[nid]
            op = OPS[node.op]
            # A chain *start* only needs an out=-writing kernel (convs
            # and matmuls start chains into their bias adds); members
            # after the start must be elementwise for in-place safety.
            startable = op.kernel is not None or node.op in (
                "conv2d",
                "conv_transpose2d",
            )
            if not startable or op.view:
                continue
            if root[nid] in pinned_roots or nid in self._outputs.values():
                continue
            cons = consumers[nid]
            if len(cons) != 1:
                continue
            consumer = cons[0]
            cop = OPS[nodes[consumer].op]
            if not (cop.elementwise and cop.kernel is not None):
                continue
            if nodes[consumer].shape != node.shape:
                continue
            if consumer in fused_parent_of:
                continue  # one in-place operand per consumer
            fuse_next[nid] = consumer
            fused_parent_of[consumer] = nid
        # Group the links into chains sharing one scratch each.
        scratch_of: Dict[int, np.ndarray] = {}
        for nid in sched:
            if nid in fuse_next and nid not in fused_parent_of:
                scratch = np.empty(nodes[nid].shape)
                chain = [nid]
                walk = nid
                while walk in fuse_next and fuse_next[walk] in fuse_next:
                    walk = fuse_next[walk]
                    chain.append(walk)
                for member in chain:
                    scratch_of[member] = scratch
                self.stats.fused_chains += 1
                self.stats.fused_ops += len(chain) + 1  # + the chain head
        fused_intermediates = set(scratch_of)

        # -- 6. storage: dedicated / arena / scratch -------------------
        buffers: Dict[int, np.ndarray] = {}
        free_slots: Dict[Tuple[Tuple[int, ...], str], List[Tuple[int, np.ndarray]]] = {}
        for nid in sched:
            node = nodes[nid]
            if OPS[node.op].view or root[nid] != nid:
                continue
            if nid in fused_intermediates:
                buffers[nid] = scratch_of[nid]
                continue
            if nid in pinned_roots:
                buffers[nid] = np.empty(node.shape)
                self.stats.buffers += 1
                continue
            key = (node.shape, node.dtype.str)
            pool = free_slots.setdefault(key, [])
            taken = None
            for i, (free_at, buf) in enumerate(pool):
                if free_at <= pos[nid]:
                    taken = pool.pop(i)[1]
                    self.stats.arena_reused += 1
                    break
            if taken is None:
                taken = np.empty(node.shape)
                self.stats.arena_slots += 1
            buffers[nid] = taken
            pool.append((last_use[root[nid]] + 1, taken))
        self.stats.nodes = len(sched)

        # Retain the scheduling/storage decisions as plain data so the
        # IR verifier (repro.check.ir) can prove them sound without
        # reverse-engineering the replay closures.
        self.plan = ProgramPlan(
            sched=list(sched),
            grad_sched=list(grad_sched),
            kinds={nid: nodes[nid].kind for nid in keep},
            ops={
                nid: nodes[nid].op
                for nid in keep
                if nodes[nid].kind == "op"
            },
            parents={nid: tuple(nodes[nid].parents) for nid in keep},
            shapes={nid: nodes[nid].shape for nid in keep},
            requires_grad={nid: nodes[nid].requires_grad for nid in keep},
            view={
                nid: bool(OPS[nodes[nid].op].view)
                for nid in keep
                if nodes[nid].kind == "op"
            },
            elementwise={
                nid: bool(OPS[nodes[nid].op].elementwise)
                for nid in keep
                if nodes[nid].kind == "op"
            },
            has_kernel={
                nid: OPS[nodes[nid].op].kernel is not None
                for nid in keep
                if nodes[nid].kind == "op"
            },
            root=dict(root),
            buffer_token={nid: id(buf) for nid, buf in buffers.items()},
            pinned_roots=set(pinned_roots),
            needed_val=set(needed_val),
            fused_links=sorted(fuse_next.items()),
            outputs=dict(self._outputs),
            loss_id=loss_id,
        )

        # -- 7. forward instructions -----------------------------------
        self._storage: List[Optional[np.ndarray]] = [None] * len(nodes)
        self._input_binds: List[Tuple[int, int]] = []  # (node id, input position)
        self._param_binds: List[Tuple[int, Tensor]] = []
        for nid, position in trace.input_nodes.items():
            if nid in keep:
                self._input_binds.append((nid, position))
        for nid, tensor in trace.param_nodes.items():
            if nid in keep:
                self._param_binds.append((nid, tensor))
        for nid, value in trace.constants.items():
            if nid in keep:
                self._storage[nid] = value

        self._forward: List[Callable] = []
        self._fwd_kernels: Dict[int, Callable] = {}
        self._bwd_kernels: Dict[int, Callable] = {}
        for nid in sched:
            node = nodes[nid]
            op = OPS[node.op]
            instr = self._build_forward_instr(node, op, buffers.get(nid))
            self._forward.append(instr)

        # -- 8. backward instructions ----------------------------------
        grads: Dict[int, np.ndarray] = {}
        for nid in received:
            if nid == loss_id:
                grads[nid] = np.ones(nodes[nid].shape)
            else:
                grads[nid] = np.empty(nodes[nid].shape)
        self._grads = grads
        self._param_grad_binds = [
            (tensor, grads[nid])
            for nid, tensor in trace.param_nodes.items()
            if nid in received
        ]
        first_write = set(received) - {loss_id}
        self._backward: List[Callable] = []
        for nid in grad_sched:
            node = nodes[nid]
            sites = []
            for slot, parent in enumerate(node.parents):
                if parent not in received:
                    continue
                sites.append(
                    (slot, parent, parent in first_write, nodes[parent].shape)
                )
                first_write.discard(parent)
            self._backward.append(self._build_backward_instr(node, sites))

        # -- 9. optional per-kernel profiling (REPRO_PROFILE=1) --------
        # Cumulative replay seconds per op label; fused-chain members
        # still run one instruction each (writing into shared scratch),
        # so per-node labels attribute fused work to its actual kernels.
        self.kernel_seconds: Dict[str, float] = {}
        if profile_enabled():
            totals = self.kernel_seconds
            self._forward = [
                _profiled(instr, "fwd:" + nodes[nid].op, totals)
                for instr, nid in zip(self._forward, sched)
            ]
            self._backward = [
                _profiled(instr, "bwd:" + nodes[nid].op, totals)
                for instr, nid in zip(self._backward, grad_sched)
            ]

    # ------------------------------------------------------------------
    def _build_forward_instr(
        self, node: Node, op, buf: Optional[np.ndarray]
    ) -> Callable:
        storage = self._storage
        parents = node.parents
        attrs = node.attrs
        nid = node.id
        if op.view or buf is None:
            forward = op.forward

            def run_view() -> None:
                storage[nid] = forward(
                    tuple(storage[p] for p in parents), attrs
                )

            return run_view
        storage[nid] = buf
        fast = self._build_fast_kernel(node, buf)
        if fast is not None:
            self.stats.fast_kernels += 1
            self._fwd_kernels[nid] = fast
            px, pw = parents

            def run_fast() -> None:
                fast(storage[px], storage[pw])

            return run_fast
        mask = self._relu_masks.get(nid)
        if mask is not None:
            # Cache the sign mask for the backward pass while computing
            # x * (x > 0) — identical values, and the input no longer
            # needs to outlive the forward pass.
            src = parents[0]

            def run_relu() -> None:
                np.greater(storage[src], 0, out=mask)
                np.multiply(storage[src], mask, out=buf)

            return run_relu
        if op.kernel is not None:
            kernel = op.kernel

            def run_kernel() -> None:
                kernel(tuple(storage[p] for p in parents), attrs, buf)

            return run_kernel
        forward = op.forward

        def run_copy() -> None:
            np.copyto(buf, forward(tuple(storage[p] for p in parents), attrs))

        return run_copy

    def _build_fast_kernel(self, node: Node, buf: np.ndarray) -> Optional[Callable]:
        """Specialized conv kernels (and their VJPs) with workspaces."""
        if node.op not in ("conv2d", "conv_transpose2d"):
            return None
        nodes = self._trace.nodes
        x_shape = nodes[node.parents[0]].shape
        w_shape = nodes[node.parents[1]].shape
        need_dx = nodes[node.parents[0]].requires_grad
        if node.op == "conv2d":
            forward = _Conv2dForward(node, x_shape, w_shape, buf)
            if node.id in set(self._grad_sched):
                self._bwd_kernels[node.id] = _Conv2dBackward(
                    forward, node, x_shape, w_shape, need_dx
                )
        else:
            forward = _ConvT2dForward(node, x_shape, w_shape, buf)
            if node.id in set(self._grad_sched):
                self._bwd_kernels[node.id] = _ConvT2dBackward(
                    node, x_shape, w_shape, node.shape, need_dx
                )
        return forward

    # -- specialized backward sites ------------------------------------
    # For the hot ops, the per-parent gradient is computed by ufuncs
    # writing straight into the parent's grad buffer (first write) or a
    # persistent scratch (accumulation) — zero allocations per step.
    # Each maker returns ``compute_into(out_buffer)`` or None; the
    # formulas match the registry VJPs operation-for-operation so the
    # values stay identical to eager.
    @staticmethod
    def _reduce_maker(g, pshape, negate: bool) -> Optional[Callable]:
        """A single-``np.sum`` form of ``_unbroadcast`` into ``out``.

        Only the single-stage cases are handled (leading broadcast axes
        *or* kept-1 axes, not both); they cover every bias gradient in
        practice.  ``sum`` then ``negate`` is bit-identical to negating
        first — float negation is exact.
        """
        gshape = g.shape
        extra = len(gshape) - len(pshape)
        lead = tuple(range(extra))
        axes = tuple(
            i for i, s in enumerate(pshape) if s == 1 and gshape[extra + i] != 1
        )
        if extra and not axes:
            def reduce_lead(o):
                np.add.reduce(g, axis=lead, out=o)
                if negate:
                    np.negative(o, out=o)

            return reduce_lead
        if axes and not extra:
            def reduce_keep(o):
                np.add.reduce(g, axis=axes, keepdims=True, out=o)
                if negate:
                    np.negative(o, out=o)

            return reduce_keep
        return None

    @staticmethod
    def _is_basic_index(idx) -> bool:
        if isinstance(idx, tuple):
            return all(GraphProgram._is_basic_index(i) for i in idx)
        return isinstance(idx, (int, np.integer, slice, type(None), type(Ellipsis)))

    def _bwd_site_maker(self, node: Node, slot: int, pshape) -> Optional[Callable]:
        S = self._storage
        g = self._grads[node.id]
        parents = node.parents
        name = node.op
        reduced = pshape != node.shape
        if name == "add":
            if reduced:
                return self._reduce_maker(g, pshape, negate=False)
            return lambda o: np.copyto(o, g)
        if name == "sub":
            if reduced:
                return self._reduce_maker(g, pshape, negate=slot == 1)
            if slot == 0:
                return lambda o: np.copyto(o, g)
            return lambda o: np.negative(g, out=o)
        # Shape-changing ops produce parent-shaped gradients directly.
        if name == "sum":
            axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
            expanded = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(g, axis=axis)
            return lambda o: np.copyto(o, expanded)
        if name == "reshape":
            view = g.reshape(pshape)
            return lambda o: np.copyto(o, view)
        if name == "transpose":
            view = g.transpose(node.attrs["inverse"])
            return lambda o: np.copyto(o, view)
        if name == "getitem":
            idx = node.attrs["idx"]
            if not self._is_basic_index(idx):
                return None

            def getitem_bwd(o):
                # Basic slicing has no duplicate indices, so the
                # reference np.add.at over zeros is a plain assignment.
                o.fill(0.0)
                o[idx] = g

            return getitem_bwd
        if name == "matmul":
            a_nd = len(self._trace.nodes[parents[0]].shape)
            b_nd = len(self._trace.nodes[parents[1]].shape)
            if a_nd < 2 or b_nd < 2:
                return None
            if slot == 0:
                return lambda o, b=parents[1]: np.matmul(
                    g, np.swapaxes(S[b], -1, -2), out=o
                )
            return lambda o, a=parents[0]: np.matmul(
                np.swapaxes(S[a], -1, -2), g, out=o
            )
        # Elementwise makers below require an unreduced (same-shape) site.
        if reduced:
            return None
        if name == "abs":
            tmp = np.empty(node.shape)

            def abs_bwd(o, p=parents[0]):
                np.sign(S[p], out=tmp)
                np.multiply(g, tmp, out=o)

            return abs_bwd
        if name == "neg":
            return lambda o: np.negative(g, out=o)
        if name == "mul":
            other = parents[1 - slot]
            return lambda o: np.multiply(g, S[other], out=o)
        if name == "div":
            if slot == 0:
                return lambda o: np.divide(g, S[parents[1]], out=o)
            tmp = np.empty(node.shape)
            tmp2 = np.empty(self._trace.nodes[parents[1]].shape)

            def div_b(o, a=parents[0], b=parents[1]):
                np.negative(g, out=tmp)
                np.multiply(tmp, S[a], out=tmp)
                np.multiply(S[b], S[b], out=tmp2)
                np.divide(tmp, tmp2, out=o)

            return div_b
        if name == "exp":
            nid = node.id
            return lambda o: np.multiply(g, S[nid], out=o)
        if name == "relu":
            mask = self._relu_masks.get(node.id)
            if mask is None:
                return None
            return lambda o: np.multiply(g, mask, out=o)
        if name == "sigmoid":
            tmp = np.empty(node.shape)
            tmp2 = np.empty(node.shape)
            nid = node.id

            def sigmoid_bwd(o):
                np.multiply(g, S[nid], out=tmp)
                np.subtract(1.0, S[nid], out=tmp2)
                np.multiply(tmp, tmp2, out=o)

            return sigmoid_bwd
        if name == "tanh":
            tmp = np.empty(node.shape)
            nid = node.id

            def tanh_bwd(o):
                np.multiply(S[nid], S[nid], out=tmp)
                np.subtract(1.0, tmp, out=tmp)
                np.multiply(g, tmp, out=o)

            return tanh_bwd
        if name == "softplus":
            from .graph import stable_sigmoid

            tmp = np.empty(node.shape)

            def softplus_bwd(o, p=parents[0]):
                stable_sigmoid(S[p], out=tmp)
                np.multiply(g, tmp, out=o)

            return softplus_bwd
        if name == "sqrt":
            tmp = np.empty(node.shape)
            nid = node.id

            def sqrt_bwd(o):
                np.multiply(g, 0.5, out=tmp)
                np.divide(tmp, S[nid], out=o)

            return sqrt_bwd
        if name == "pow":
            exponent = node.attrs["exponent"]
            tmp = np.empty(node.shape)
            tmp2 = np.empty(node.shape)

            def pow_bwd(o, p=parents[0]):
                np.power(S[p], exponent - 1, out=tmp)
                np.multiply(g, exponent, out=tmp2)
                np.multiply(tmp2, tmp, out=o)

            return pow_bwd
        return None

    def _build_specialized_bwd(self, node: Node, sites) -> Optional[Callable]:
        op = OPS[node.op]
        # One reference VJP evaluation on the traced example values gates
        # specialization: shapes must match the parents exactly (no
        # unbroadcast reduction) for the direct-write forms to apply.
        values = self._trace.values
        try:
            example = op.vjp(
                np.ones(node.shape),
                values[node.id],
                tuple(values[p] for p in node.parents),
                node.attrs,
                tuple(True for _ in node.parents),
            )
        except Exception:
            return None
        runners = []
        grads = self._grads
        for slot, parent, first, pshape in sites:
            if example[slot] is None:
                return None
            # add/sub handle the unbroadcast reduction themselves; every
            # other maker requires the raw VJP shape to match the parent.
            if node.op not in ("add", "sub") and np.shape(example[slot]) != pshape:
                return None
            compute = self._bwd_site_maker(node, slot, pshape)
            if compute is None:
                return None
            target = grads[parent]
            if first:
                runners.append(lambda compute=compute, target=target: compute(target))
            else:
                tmp = np.empty(pshape)

                def accumulate(compute=compute, target=target, tmp=tmp):
                    compute(tmp)
                    target += tmp

                runners.append(accumulate)
        if not runners:
            return None

        def run_specialized() -> None:
            for runner in runners:
                runner()

        return run_specialized

    def _build_backward_instr(self, node: Node, sites) -> Callable:
        storage = self._storage
        grads = self._grads
        nid = node.id
        parents = node.parents
        attrs = node.attrs
        fast = self._bwd_kernels.get(nid)
        if fast is not None:
            px, pw = parents

            def run_fast_bwd() -> None:
                dx, dw = fast(grads[nid], storage[px], storage[pw])
                for slot, parent, first, pshape in sites:
                    pg = dx if slot == 0 else dw
                    if first:
                        np.copyto(grads[parent], pg)
                    else:
                        grads[parent] += pg

            return run_fast_bwd
        specialized = self._build_specialized_bwd(node, sites)
        if specialized is not None:
            return specialized
        op = OPS[node.op]
        vjp = op.vjp
        needed = tuple(
            self._trace.nodes[p].requires_grad for p in parents
        )

        def run_bwd() -> None:
            vjps = vjp(
                grads[nid],
                storage[nid],
                tuple(storage[p] for p in parents),
                attrs,
                needed,
            )
            for slot, parent, first, pshape in sites:
                pg = vjps[slot]
                if pg.shape != pshape:
                    pg = _unbroadcast(np.asarray(pg), pshape)
                if first:
                    np.copyto(grads[parent], pg)
                else:
                    grads[parent] += pg

        return run_bwd

    # ------------------------------------------------------------------
    def run(self, inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        """One forward+backward replay; parameter grads land in ``.grad``."""
        storage = self._storage
        for nid, position in self._input_binds:
            storage[nid] = inputs[position]
        for nid, tensor in self._param_binds:
            storage[nid] = tensor.data
        for instr in self._forward:
            instr()
        for tensor, grad_buf in self._param_grad_binds:
            tensor.grad = grad_buf
        for instr in self._backward:
            instr()
        return {name: storage[nid] for name, nid in self._outputs.items()}

    def verify(self, inputs: Sequence[np.ndarray], traced: Dict[str, Tensor]) -> None:
        """Enforce the equivalence contract against the eager engine.

        Runs the program on the traced arrays and compares every output
        and every parameter gradient against an eager forward/backward
        of the same step.  Bitwise equality is expected; anything beyond
        1e-12 relative is a compiler bug and rejects the program.
        """
        got = self.run(inputs)
        for name, tensor in traced.items():
            if not np.allclose(got[name], tensor.data, rtol=1e-12, atol=1e-14):
                raise CompileUnsupported(
                    f"compiled output {name!r} diverges from eager"
                )
        for p in self._params:
            p.grad = None
        traced["loss"].backward()
        for tensor, grad_buf in self._param_grad_binds:
            eager = tensor.grad
            if eager is None or not np.allclose(
                eager, grad_buf, rtol=1e-12, atol=1e-14
            ):
                raise CompileUnsupported(
                    "compiled parameter gradient diverges from eager"
                )
        for p in self._params:
            p.grad = None


# ----------------------------------------------------------------------
# The compiled train step
# ----------------------------------------------------------------------
class CompiledTrainStep:
    """Trace-once, replay-many wrapper around one training step.

    ``step_fn(*input_tensors)`` must return a dict of scalar tensors
    including ``"loss"`` (the objective to differentiate) and must route
    all per-step data through its inputs.  Calling the instance with the
    step's numpy arrays runs forward + backward through the compiled
    program, clips gradients, steps the optimizer, and returns the
    outputs as floats — numerically equivalent to running the same
    ``step_fn`` eagerly followed by ``loss.backward()`` / clip / step.

    Programs are cached per input-shape signature (shape-guarded
    replay); if a trace cannot be compiled, :class:`CompileUnsupported`
    propagates and the caller is expected to fall back to eager (and may
    keep calling — the failure is cached so the trace is not retried).
    """

    def __init__(
        self,
        step_fn: Callable[..., Dict[str, Tensor]],
        params: Sequence[Tensor],
        optimizer: Optional[Optimizer] = None,
        grad_clip: Optional[float] = None,
    ) -> None:
        self.step_fn = step_fn
        self.params = list(params)
        self.optimizer = optimizer
        self.grad_clip = grad_clip
        self.stats = CompileStats()
        self._programs: Dict[Tuple, Optional[GraphProgram]] = {}

    def signature(self, arrays: Sequence[np.ndarray]) -> Tuple:
        return tuple((a.shape, a.dtype.str) for a in arrays)

    def kernel_seconds(self) -> Dict[str, float]:
        """Cumulative per-kernel replay seconds across all programs.

        Empty unless the programs were built with ``REPRO_PROFILE=1``
        (see :func:`profile_enabled`); labels are ``fwd:<op>`` /
        ``bwd:<op>`` summed over every shape-specialized program.
        """
        totals: Dict[str, float] = {}
        for program in self._programs.values():
            if program is None:
                continue
            for label, seconds in program.kernel_seconds.items():
                totals[label] = totals.get(label, 0.0) + seconds
        return totals

    def program_for(self, arrays: Sequence[np.ndarray]) -> GraphProgram:
        """The cached :class:`GraphProgram` for these input shapes.

        Compiles (and verifies) on first use, exactly as :meth:`__call__`
        would; raises :class:`CompileUnsupported` when the trace was (or
        is now) rejected.  This is the hook the recorded-loop layer
        (:mod:`repro.nn.loop`) uses to share one program — and therefore
        bitwise-identical replay values — with the per-step path.
        """
        arrays = tuple(np.asarray(a, dtype=np.float64) for a in arrays)
        key = self.signature(arrays)
        if key not in self._programs:
            try:
                self._programs[key] = self._compile(arrays)
            except CompileUnsupported:
                self._programs[key] = None
                self.stats.fallbacks += 1
                raise
            except Exception as error:
                # Anything unexpected during trace/build/verify must not
                # take training down — the eager tape is always correct.
                self._programs[key] = None
                self.stats.fallbacks += 1
                raise CompileUnsupported(
                    f"compiler error ({type(error).__name__}: {error}); "
                    "falling back to eager"
                ) from error
        program = self._programs[key]
        if program is None:
            self.stats.fallbacks += 1
            raise CompileUnsupported("trace previously rejected for this signature")
        return program

    def __call__(self, *arrays: np.ndarray) -> Dict[str, float]:
        arrays = tuple(np.asarray(a, dtype=np.float64) for a in arrays)
        program = self.program_for(arrays)
        self.stats.replays += 1
        outputs = program.run(arrays)
        if self.grad_clip is not None:
            clip_grad_norm(self.params, self.grad_clip)
        if self.optimizer is not None:
            self.optimizer.step()
        return {name: float(value) for name, value in outputs.items()}

    def _compile(self, arrays: Tuple[np.ndarray, ...]) -> GraphProgram:
        input_tensors = [Tensor(a) for a in arrays]
        with Trace(params=self.params, inputs=input_tensors) as trace:
            outputs = self.step_fn(*input_tensors)
        if not isinstance(outputs, dict) or "loss" not in outputs:
            raise CompileUnsupported("step_fn must return a dict with a 'loss' key")
        if trace.unsupported:
            raise CompileUnsupported(
                f"trace used non-IR ops: {trace.unsupported[:3]}"
            )
        for name, tensor in outputs.items():
            if not isinstance(tensor, Tensor) or tensor.data.size != 1:
                raise CompileUnsupported(f"output {name!r} is not a scalar tensor")
        loss = outputs["loss"]
        if not loss.requires_grad:
            raise CompileUnsupported("loss does not require grad")
        node_ids = {
            name: trace.tensor_nodes[id(tensor)] for name, tensor in outputs.items()
        }
        program = GraphProgram(
            trace,
            node_ids,
            trace.tensor_nodes[id(loss)],
            self.params,
            stats=self.stats,
        )
        program.verify(arrays, outputs)
        if ir_verify_enabled():
            # Optional static pass (REPRO_IR_VERIFY=1): prove the plan
            # sound before caching it for replay.  Imported lazily —
            # repro.check sits above nn in the layering and must not
            # load on the replay path.
            from ..check.ir import verify_program

            ir_findings = verify_program(program)
            if ir_findings:
                first = ir_findings[0]
                raise CompileUnsupported(
                    f"IR verifier rejected the program: {len(ir_findings)} "
                    f"finding(s), first [{first.rule}] {first.message}"
                )
        trace.release()  # drop example values/pins; run() needs only the tables
        self.stats.traces += 1
        return program


def compile_train_step(
    step_fn: Callable[..., Dict[str, Tensor]],
    params: Sequence[Tensor],
    optimizer: Optional[Optimizer] = None,
    grad_clip: Optional[float] = None,
) -> CompiledTrainStep:
    """Build a :class:`CompiledTrainStep` (convenience constructor)."""
    return CompiledTrainStep(step_fn, params, optimizer=optimizer, grad_clip=grad_clip)
