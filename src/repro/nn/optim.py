"""First-order optimizers and learning-rate schedules.

The paper trains CircuitVAE with Adam (Sec. 4.1); :class:`Adam` here is a
faithful numpy implementation, and :class:`SGD` is kept for tests and
ablations.  Both operate in-place on the ``.data`` buffers of parameter
tensors, reading gradients from ``.grad``.

Updates are **arena-aware**: each optimizer keeps per-parameter scratch
buffers and performs its whole update through ``out=`` ufuncs, so a
steady-state training step allocates nothing.  The scratch forms compute
the exact same floating-point expressions (same association, only
commuted multiplications) as the naive formulas, so results are
bit-identical to the textbook implementation — this is load-bearing for
the compiled-vs-eager training equivalence contract.

Both optimizers expose ``state_dict()`` / ``load_state_dict()`` so
training checkpoints can persist moments across process restarts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "CosineSchedule", "StepSchedule"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- serialization --------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Optimizer state as a flat ``{name: array}`` dict."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict` (shape-checked)."""
        raise NotImplementedError

    def _load_arrays(self, buffers: List[np.ndarray], state: Dict, prefix: str) -> None:
        for i, buf in enumerate(buffers):
            value = np.asarray(state[f"{prefix}{i}"])
            if value.shape != buf.shape:
                raise ValueError(
                    f"optimizer state {prefix}{i} shape {value.shape} != "
                    f"parameter shape {buf.shape}"
                )
            buf[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel, scratch in zip(self.params, self._velocity, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                # grad + wd * p  (wd * p commuted: bit-identical)
                np.multiply(p.data, self.weight_decay, out=scratch)
                np.add(grad, scratch, out=scratch)
                grad = scratch
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            np.multiply(grad, self.lr, out=scratch)
            p.data -= scratch

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for i, vel in enumerate(self._velocity):
            state[f"velocity{i}"] = vel.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._load_arrays(self._velocity, state, "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s1)
                np.add(grad, s1, out=s1)
                grad = s1
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            m *= self.beta1
            m += s2
            # v = beta2 * v + ((1 - beta2) * grad) * grad
            np.multiply(grad, 1.0 - self.beta2, out=s2)
            np.multiply(s2, grad, out=s2)
            v *= self.beta2
            v += s2
            # p -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
            np.divide(m, bias1, out=s1)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            np.multiply(s1, self.lr, out=s1)
            np.divide(s1, s2, out=s1)
            p.data -= s1

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {
            "step_count": np.asarray(self._step_count, dtype=np.int64)
        }
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m{i}"] = m.copy()
            state[f"v{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._load_arrays(self._m, state, "m")
        self._load_arrays(self._v, state, "v")
        self._step_count = int(np.asarray(state["step_count"]))


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which callers often log to detect
    training instability.
    """
    params = [p for p in params if p.grad is not None]
    # Keep the exact pre-IR expression: a BLAS dot would shift the norm
    # by ulps and break bit-identity with run directories recorded
    # before the graph executor existed.
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class CosineSchedule:
    """Cosine-annealed learning rate from ``lr_max`` down to ``lr_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0):
        self.optimizer = optimizer
        self.lr_max = optimizer.lr
        self.lr_min = lr_min
        self.total_steps = max(total_steps, 1)
        self._t = 0

    def step(self) -> float:
        self._t = min(self._t + 1, self.total_steps)
        frac = self._t / self.total_steps
        lr = self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1 + np.cos(np.pi * frac))
        self.optimizer.lr = lr
        return lr


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._t = 0

    def step(self) -> float:
        self._t += 1
        if self._t % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
