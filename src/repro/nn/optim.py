"""First-order optimizers and learning-rate schedules.

The paper trains CircuitVAE with Adam (Sec. 4.1); :class:`Adam` here is a
faithful numpy implementation, and :class:`SGD` is kept for tests and
ablations.  Both operate in-place on the ``.data`` buffers of parameter
tensors, reading gradients from ``.grad``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "CosineSchedule", "StepSchedule"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which callers often log to detect
    training instability.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class CosineSchedule:
    """Cosine-annealed learning rate from ``lr_max`` down to ``lr_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0):
        self.optimizer = optimizer
        self.lr_max = optimizer.lr
        self.lr_min = lr_min
        self.total_steps = max(total_steps, 1)
        self._t = 0

    def step(self) -> float:
        self._t = min(self._t + 1, self.total_steps)
        frac = self._t / self.total_steps
        lr = self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1 + np.cos(np.pi * frac))
        self.optimizer.lr = lr
        return lr


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._t = 0

    def step(self) -> float:
        self._t += 1
        if self._t % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
