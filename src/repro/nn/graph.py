"""The graph layer of :mod:`repro.nn`: an explicit op IR for autograd.

Historically every :class:`~repro.nn.tensor.Tensor` operation recorded a
*backward closure* — a fresh Python lambda capturing the operands — which
made the tape opaque: it could be walked, but not analyzed, scheduled,
or replayed.  This module replaces that with data:

* :class:`OpDef` — one entry per differentiable operation, holding the
  forward kernel and the **VJP rule as a plain function over arrays**
  (``vjp(g, out, inputs, attrs, needed) -> per-parent grads``), plus the
  metadata the compiler needs (elementwise? does the VJP read the saved
  output / input values? is the output a view?).
* :data:`OPS` — the registry.  ``Tensor`` methods dispatch through
  :func:`repro.nn.tensor.apply`, which looks ops up here; eager mode
  computes immediately and stores only ``(op id, parents, attrs)`` on
  the output tensor, so :meth:`Tensor.backward` re-derives gradients
  from the registry instead of calling captured closures.
* :class:`Node` / :class:`Trace` — the IR.  While a trace is active
  (always thread-local: parallel seeds train concurrently), every
  ``apply`` also records a :class:`Node` with integer parent ids, which
  is what :mod:`repro.nn.compile` turns into a scheduled, buffer-reusing
  :class:`~repro.nn.compile.GraphProgram`.

Eager semantics are unchanged: the same kernels run in the same order
with the same operand aliasing the old closures captured, so eager
results are bit-identical to the pre-IR tape.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .conv import (
    conv2d_backward,
    conv2d_forward,
    conv_transpose2d_backward,
    conv_transpose2d_forward,
)

__all__ = [
    "OpDef",
    "OPS",
    "register_op",
    "Node",
    "Trace",
    "active_trace",
    "stable_sigmoid",
]


def stable_sigmoid(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Numerically-stable logistic function (optionally into ``out``)."""
    out = np.empty_like(x, dtype=x.dtype) if out is None else out
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# ----------------------------------------------------------------------
# Op definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpDef:
    """One differentiable operation: forward kernel + VJP rule as data.

    ``forward(inputs, attrs)`` returns a fresh array (or a view for
    ``view=True`` ops).  ``kernel(inputs, attrs, out)``, when present,
    writes the same values into a preallocated ``out`` buffer — the
    compiler uses it for buffer reuse; it must be bit-identical to
    ``forward``.  ``vjp(g, out, inputs, attrs, needed)`` returns one
    gradient per parent (entries for parents with ``needed[i]`` False
    may be anything; eager ignores them, like the old closures did).

    ``needs_out`` / ``needs_inputs`` declare whether the VJP reads the
    saved output / input *values* (not just shapes) — this is the
    liveness information behind the compiler's buffer arena and its
    elementwise fusion rule.
    """

    name: str
    forward: Callable[[Tuple[np.ndarray, ...], Dict], np.ndarray]
    vjp: Callable
    kernel: Optional[Callable] = None
    elementwise: bool = False
    needs_out: bool = False
    needs_inputs: bool = False
    view: bool = False


OPS: Dict[str, OpDef] = {}


def register_op(op: OpDef) -> OpDef:
    """Add an op to the registry (name collisions are a programming error)."""
    if op.name in OPS:
        raise ValueError(f"op {op.name!r} already registered")
    OPS[op.name] = op
    return op


def _op(name, forward, vjp, **meta) -> OpDef:
    return register_op(OpDef(name, forward, vjp, **meta))


# -- elementwise arithmetic --------------------------------------------
_op(
    "add",
    lambda x, a: x[0] + x[1],
    lambda g, out, x, a, need: (g, g),
    kernel=lambda x, a, out: np.add(x[0], x[1], out=out),
    elementwise=True,
)
_op(
    "sub",
    lambda x, a: x[0] - x[1],
    lambda g, out, x, a, need: (g, -g),
    kernel=lambda x, a, out: np.subtract(x[0], x[1], out=out),
    elementwise=True,
)
_op(
    "mul",
    lambda x, a: x[0] * x[1],
    lambda g, out, x, a, need: (g * x[1], g * x[0]),
    kernel=lambda x, a, out: np.multiply(x[0], x[1], out=out),
    elementwise=True,
    needs_inputs=True,
)
_op(
    "div",
    lambda x, a: x[0] / x[1],
    lambda g, out, x, a, need: (g / x[1], -g * x[0] / (x[1] * x[1])),
    kernel=lambda x, a, out: np.divide(x[0], x[1], out=out),
    elementwise=True,
    needs_inputs=True,
)
_op(
    "neg",
    lambda x, a: -x[0],
    lambda g, out, x, a, need: (-g,),
    kernel=lambda x, a, out: np.negative(x[0], out=out),
    elementwise=True,
)
_op(
    "pow",
    lambda x, a: x[0] ** a["exponent"],
    lambda g, out, x, a, need: (
        g * a["exponent"] * x[0] ** (a["exponent"] - 1),
    ),
    kernel=lambda x, a, out: np.power(x[0], a["exponent"], out=out),
    elementwise=True,
    needs_inputs=True,
)

# -- elementwise functions ---------------------------------------------
_op(
    "exp",
    lambda x, a: np.exp(x[0]),
    lambda g, out, x, a, need: (g * out,),
    kernel=lambda x, a, out: np.exp(x[0], out=out),
    elementwise=True,
    needs_out=True,
)
_op(
    "log",
    lambda x, a: np.log(x[0]),
    lambda g, out, x, a, need: (g / x[0],),
    kernel=lambda x, a, out: np.log(x[0], out=out),
    elementwise=True,
    needs_inputs=True,
)
_op(
    "sqrt",
    lambda x, a: np.sqrt(x[0]),
    lambda g, out, x, a, need: (g * 0.5 / out,),
    kernel=lambda x, a, out: np.sqrt(x[0], out=out),
    elementwise=True,
    needs_out=True,
)
_op(
    "abs",
    lambda x, a: np.abs(x[0]),
    lambda g, out, x, a, need: (g * np.sign(x[0]),),
    kernel=lambda x, a, out: np.abs(x[0], out=out),
    elementwise=True,
    needs_inputs=True,
)
_op(
    "tanh",
    lambda x, a: np.tanh(x[0]),
    lambda g, out, x, a, need: (g * (1.0 - out * out),),
    kernel=lambda x, a, out: np.tanh(x[0], out=out),
    elementwise=True,
    needs_out=True,
)
_op(
    "sigmoid",
    lambda x, a: stable_sigmoid(x[0]),
    lambda g, out, x, a, need: (g * out * (1.0 - out),),
    kernel=lambda x, a, out: stable_sigmoid(x[0], out=out),
    elementwise=True,
    needs_out=True,
)
_op(
    "relu",
    lambda x, a: x[0] * (x[0] > 0),
    lambda g, out, x, a, need: (g * (x[0] > 0),),
    kernel=lambda x, a, out: np.multiply(x[0], x[0] > 0, out=out),
    elementwise=True,
    needs_inputs=True,
)


def _leaky_mask(x: np.ndarray, slope: float) -> np.ndarray:
    return np.where(x > 0, 1.0, slope)


_op(
    "leaky_relu",
    lambda x, a: x[0] * _leaky_mask(x[0], a["negative_slope"]),
    lambda g, out, x, a, need: (g * _leaky_mask(x[0], a["negative_slope"]),),
    kernel=lambda x, a, out: np.multiply(
        x[0], _leaky_mask(x[0], a["negative_slope"]), out=out
    ),
    elementwise=True,
    needs_inputs=True,
)
_op(
    "softplus",
    lambda x, a: np.logaddexp(0.0, x[0]),
    lambda g, out, x, a, need: (g * stable_sigmoid(x[0]),),
    kernel=lambda x, a, out: np.logaddexp(0.0, x[0], out=out),
    elementwise=True,
    needs_inputs=True,
)
_op(
    "clip",
    lambda x, a: np.clip(x[0], a["low"], a["high"]),
    lambda g, out, x, a, need: (
        g * ((x[0] >= a["low"]) & (x[0] <= a["high"])),
    ),
    kernel=lambda x, a, out: np.clip(x[0], a["low"], a["high"], out=out),
    elementwise=True,
    needs_inputs=True,
)


def _where_fw(x, a):
    return np.where(a["condition"], x[0], x[1])


def _where_vjp(g, out, x, a, need):
    cond = a["condition"]
    return (g * cond, g * (~cond))


_op("where", _where_fw, _where_vjp, elementwise=True)


# -- reductions --------------------------------------------------------
def _sum_fw(x, a):
    return x[0].sum(axis=a["axis"], keepdims=a["keepdims"])


def _sum_kernel(x, a, out):
    return np.sum(x[0], axis=a["axis"], keepdims=a["keepdims"], out=out)


def _sum_vjp(g, out, x, a, need):
    axis, keepdims = a["axis"], a["keepdims"]
    grad = g
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis=axis)
    return (np.broadcast_to(grad, x[0].shape).copy(),)


_op("sum", _sum_fw, _sum_vjp, kernel=_sum_kernel)


def _max_fw(x, a):
    return x[0].max(axis=a["axis"], keepdims=a["keepdims"])


def _max_vjp(g, out, x, a, need):
    axis, keepdims = a["axis"], a["keepdims"]
    data = x[0]
    grad, full = g, out
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis=axis)
        full = np.expand_dims(out, axis=axis)
    mask = (data == full).astype(np.float64)
    counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return ((mask / counts) * grad * np.ones(data.shape),)


_op("max", _max_fw, _max_vjp, needs_out=True, needs_inputs=True)


# -- linear algebra ----------------------------------------------------
def _matmul_vjp(g, out, x, a, need):
    ma, mb = x
    if ma.ndim == 1 and mb.ndim == 1:
        return (g * mb, g * ma)
    ga = g @ np.swapaxes(mb, -1, -2) if mb.ndim > 1 else np.outer(g, mb)
    gb = np.swapaxes(ma, -1, -2) @ g if ma.ndim > 1 else np.outer(ma, g)
    return (ga, gb)


_op(
    "matmul",
    lambda x, a: x[0] @ x[1],
    _matmul_vjp,
    kernel=lambda x, a, out: np.matmul(x[0], x[1], out=out),
    needs_inputs=True,
)


# -- shape manipulation ------------------------------------------------
_op(
    "reshape",
    lambda x, a: x[0].reshape(a["shape"]),
    lambda g, out, x, a, need: (g.reshape(x[0].shape),),
    view=True,
)
_op(
    "transpose",
    lambda x, a: x[0].transpose(a["axes"]),
    lambda g, out, x, a, need: (g.transpose(a["inverse"]),),
    view=True,
)


def _getitem_vjp(g, out, x, a, need):
    full = np.zeros(x[0].shape, dtype=np.float64)
    np.add.at(full, a["idx"], g)
    return (full,)


_op("getitem", lambda x, a: x[0][a["idx"]], _getitem_vjp, view=True)


def _pad2d_fw(x, a):
    pad = a["pad"]
    widths = [(0, 0)] * (x[0].ndim - 2) + [(pad, pad), (pad, pad)]
    return np.pad(x[0], widths)


def _pad2d_vjp(g, out, x, a, need):
    pad = a["pad"]
    slicer = tuple(
        [slice(None)] * (x[0].ndim - 2) + [slice(pad, -pad), slice(pad, -pad)]
    )
    return (g[slicer],)


_op("pad2d", _pad2d_fw, _pad2d_vjp)


def _concat_vjp(g, out, x, a, need):
    axis = a["axis"]
    offsets = np.cumsum([0] + [arr.shape[axis] for arr in x])
    grads = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        slicer = [slice(None)] * g.ndim
        slicer[axis] = slice(int(start), int(stop))
        grads.append(g[tuple(slicer)])
    return tuple(grads)


_op(
    "concatenate",
    lambda x, a: np.concatenate(x, axis=a["axis"]),
    _concat_vjp,
    kernel=lambda x, a, out: np.concatenate(x, axis=a["axis"], out=out),
)
_op(
    "stack",
    lambda x, a: np.stack(x, axis=a["axis"]),
    lambda g, out, x, a, need: tuple(
        np.take(g, i, axis=a["axis"]) for i in range(len(x))
    ),
    kernel=lambda x, a, out: np.stack(x, axis=a["axis"], out=out),
)


# -- convolutions ------------------------------------------------------
def _conv2d_vjp(g, out, x, a, need):
    return conv2d_backward(g, x[0], x[1], a["stride"], a["padding"])


_op(
    "conv2d",
    lambda x, a: conv2d_forward(x[0], x[1], a["stride"], a["padding"]),
    _conv2d_vjp,
    needs_inputs=True,
)


def _conv_transpose2d_vjp(g, out, x, a, need):
    return conv_transpose2d_backward(g, x[0], x[1], a["stride"], a["padding"])


_op(
    "conv_transpose2d",
    lambda x, a: conv_transpose2d_forward(x[0], x[1], a["stride"], a["padding"]),
    _conv_transpose2d_vjp,
    needs_inputs=True,
)


# ----------------------------------------------------------------------
# The IR: nodes and traces
# ----------------------------------------------------------------------
@dataclass
class Node:
    """One vertex of a traced computation.

    ``kind`` is ``"op"`` for registry applications and ``"input"`` /
    ``"param"`` / ``"constant"`` for leaves.  Parents are node ids, so a
    trace is a plain array-of-structs DAG the compiler can schedule and
    analyze without touching any Tensor object.
    """

    id: int
    kind: str
    op: Optional[str]
    parents: Tuple[int, ...]
    attrs: Dict
    shape: Tuple[int, ...]
    dtype: np.dtype
    requires_grad: bool


_ACTIVE = threading.local()


def active_trace() -> Optional["Trace"]:
    """The trace currently recording on this thread, if any."""
    return getattr(_ACTIVE, "trace", None)


class Trace:
    """Records every registry op applied while active (as a context
    manager) into a list of :class:`Node`.

    Leaves are classified on first encounter: tensors listed in
    ``params`` become ``param`` nodes (their storage is read live at
    every replay, so in-place optimizer updates are seen), tensors in
    ``inputs`` become ``input`` nodes (rebound to fresh arrays on every
    replay), and anything else — scalars and arrays created *inside*
    the traced function — is captured as a ``constant`` by reference.
    A traced function must therefore route all per-step data through
    declared inputs; that contract is what makes replay valid.

    Ops that bypass the registry (legacy closure tape via
    ``Tensor._make``) cannot be represented; they land in
    :attr:`unsupported` and the compiler falls back to eager.
    """

    def __init__(self, params: Sequence = (), inputs: Sequence = ()):
        self.nodes: List[Node] = []
        self.unsupported: List[str] = []
        self._ids: Dict[int, int] = {}
        self._pins: List[object] = []  # keep tensors alive: id() stays unique
        self._param_tensors = {id(p): p for p in params}
        self._input_tensors = {id(t): t for t in inputs}
        self.param_nodes: Dict[int, object] = {}  # node id -> param Tensor
        self.input_nodes: Dict[int, int] = {}  # node id -> position in `inputs`
        self._input_order = [id(t) for t in inputs]
        self.constants: Dict[int, np.ndarray] = {}  # node id -> array
        self.tensor_nodes: Dict[int, int] = {}  # id(tensor) -> node id
        #: example value per node (the arrays the traced call computed);
        #: the compiler verifies its program against these bit-for-bit.
        self.values: Dict[int, np.ndarray] = {}

    # -- context management -------------------------------------------
    def __enter__(self) -> "Trace":
        if active_trace() is not None:
            raise RuntimeError("a trace is already active on this thread")
        _ACTIVE.trace = self
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE.trace = None

    # -- recording -----------------------------------------------------
    def _new_node(self, **kwargs) -> Node:
        node = Node(id=len(self.nodes), **kwargs)
        self.nodes.append(node)
        return node

    def node_of(self, tensor) -> int:
        """The node id of ``tensor``, creating a leaf on first sight."""
        key = id(tensor)
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        self._pins.append(tensor)
        if key in self._param_tensors:
            kind = "param"
        elif key in self._input_tensors:
            kind = "input"
        else:
            kind = "constant"
        node = self._new_node(
            kind=kind,
            op=None,
            parents=(),
            attrs={},
            shape=tensor.data.shape,
            dtype=tensor.data.dtype,
            requires_grad=bool(tensor.requires_grad),
        )
        if kind == "param":
            self.param_nodes[node.id] = tensor
        elif kind == "input":
            self.input_nodes[node.id] = self._input_order.index(key)
        else:
            self.constants[node.id] = tensor.data
        self._ids[key] = node.id
        self.tensor_nodes[key] = node.id
        self.values[node.id] = tensor.data
        return node.id

    def record(self, op_name: str, inputs: Sequence, attrs: Dict, out) -> int:
        """Record one registry application; returns the new node id."""
        parents = tuple(self.node_of(p) for p in inputs)
        node = self._new_node(
            kind="op",
            op=op_name,
            parents=parents,
            attrs=attrs,
            shape=out.data.shape,
            dtype=out.data.dtype,
            requires_grad=bool(out.requires_grad),
        )
        self._pins.append(out)
        self._ids[id(out)] = node.id
        self.tensor_nodes[id(out)] = node.id
        self.values[node.id] = out.data
        return node.id

    def record_unsupported(self, reason: str) -> None:
        """A closure-based (non-registry) op ran under this trace."""
        self.unsupported.append(reason)

    def release(self) -> None:
        """Drop the example values and tensor pins after compilation.

        They are only needed while a program is built and verified; a
        cached program holds the trace for its node/leaf tables, and
        without this the full set of traced intermediate arrays would
        stay resident for the program's whole lifetime.
        """
        self.values.clear()
        self._pins.clear()
        self._ids.clear()
        self.tensor_nodes.clear()

    def __len__(self) -> int:
        return len(self.nodes)
