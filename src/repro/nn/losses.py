"""Loss functions for CircuitVAE training.

The model's training objective (paper Eq. 3) combines three terms, all
implemented here on top of :mod:`repro.nn.functional`:

* Bernoulli reconstruction likelihood of the prefix-graph grid
  (:func:`reconstruction_loss`),
* the beta-weighted KL to the unit-Gaussian prior (:func:`kl_loss`),
* squared error of the cost predictor (:func:`cost_prediction_loss`).

Each supports per-sample weights so the weighted-retraining scheme of
Tripp et al. (Eq. 2) plugs in directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["reconstruction_loss", "kl_loss", "cost_prediction_loss", "weighted_mean"]


def weighted_mean(per_sample: Tensor, weights: Optional[np.ndarray]) -> Tensor:
    """Average per-sample losses under normalized ``weights``.

    With ``weights=None`` this is a plain mean.  Weights are normalized to
    sum to 1, so the loss scale is independent of batch size — important
    because the rank weights of Eq. 2 vary over retraining rounds.
    """
    if weights is None:
        return per_sample.mean()
    w = np.asarray(weights, dtype=np.float64)
    if w.shape[0] != per_sample.shape[0]:
        raise ValueError(f"weights length {w.shape[0]} != batch {per_sample.shape[0]}")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    return (per_sample * Tensor(w / total)).sum()


def reconstruction_loss(
    logits: Tensor, target_grid: Tensor, weights: Optional[np.ndarray] = None
) -> Tensor:
    """Negative Bernoulli log-likelihood of the decoded grid, per sample.

    ``logits`` and ``target_grid`` have shape (B, N, N) (or (B, ...)); the
    log-likelihood is summed over grid cells, matching the ELBO's
    ``log p(x|z)`` term, then weighted-averaged over the batch.
    """
    per_cell = F.binary_cross_entropy_with_logits(logits, target_grid, reduction="none")
    per_sample = per_cell.reshape(per_cell.shape[0], -1).sum(axis=1)
    return weighted_mean(per_sample, weights)


def kl_loss(mu: Tensor, logvar: Tensor, weights: Optional[np.ndarray] = None) -> Tensor:
    """KL(q(z|x) || N(0,I)) summed over latent dims, weighted over batch."""
    per_sample = F.gaussian_kl(mu, logvar, reduction="none")
    return weighted_mean(per_sample, weights)


def cost_prediction_loss(
    predicted: Tensor, actual, weights: Optional[np.ndarray] = None
) -> Tensor:
    """Squared-error loss of the cost head, L_pi = (f_pi(z) - c)^2.

    ``actual`` may be a numpy array or a :class:`Tensor` — the compiled
    training step passes targets as tensors so they trace as inputs.
    """
    if isinstance(actual, Tensor):
        target = actual.reshape(-1)
    else:
        target = Tensor(np.asarray(actual, dtype=np.float64).reshape(-1))
    diff = predicted.reshape(-1) - target
    return weighted_mean(diff * diff, weights)
