"""Recorded training loops: replay a whole checkpoint segment per entry.

:mod:`repro.nn.compile` removed the per-op Python dispatch from one
training step; this module removes the per-step Python glue from the
epoch loop.  :func:`compile_train_loop` wraps a
:class:`~repro.nn.compile.CompiledTrainStep` and replays ``S`` steps (one
checkpoint segment) per Python entry:

* **Pre-drawn randomness** — the per-step ``rng.choice`` (minibatch
  indices by Eq.-2 weight) and ``rng.standard_normal`` (reparameterization
  noise) calls are replayed draw-for-draw against a hoisted weight CDF,
  two generator calls per step in the original order, so the stream
  position after a segment is bit-identical to the per-step path and
  checkpoints taken at segment boundaries restore exactly.
* **Flat parameter/moment state** — parameters, Adam moments and
  gradients are rebased onto contiguous flat buffers (``p.data`` and the
  optimizer's ``_m``/``_v`` entries become views), so gradient clipping
  and the Adam update run as one short ufunc sequence instead of one per
  parameter.  The flat forms compute the exact same floating-point
  expressions (contiguous-slice sums, elementwise ufuncs over
  concatenated buffers), so updates stay bit-identical to
  :meth:`repro.nn.optim.Adam.step` / :func:`repro.nn.optim.clip_grad_norm`.
* **Dataset-level im2col** — the first convolution consumes the padded
  grid batch; its unfolded patches are precomputed once for the whole
  dataset and gathered per step straight into the kernel's persistent
  ``im2col`` workspace (a pure element copy, bitwise equal to unfolding
  the batch), skipping the pad-and-window copies entirely.
* **Per-step loss rows** — each step's four losses land in a
  preallocated ``(S, 4)`` array; the caller folds them into
  ``TrainStats`` in the original Python order, keeping loss traces
  bit-identical.

**Equivalence contract**: the recorded loop must be *bitwise identical*
to calling the compiled step once per step (the same
:class:`~repro.nn.compile.GraphProgram` replays, fed identical inputs,
followed by value-identical flat updates).  Every session begins with a
mechanical self-check — one probe step through the loop's substituted
instructions and flat gather, compared bitwise against
``GraphProgram.run`` — and any mismatch (or any structure the loop does
not understand) raises :class:`~repro.nn.compile.CompileUnsupported`, in
which case the caller falls back wholesale to the per-step engine.  Set
``REPRO_COMPILED_LOOP=0`` to force per-step execution; the per-step
compiled path (built by :func:`~repro.nn.compile.compile_train_step`) is
this fast path's reference.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .compile import CompiledTrainStep, CompileUnsupported, _Im2Col, compile_train_step
from .optim import Adam

__all__ = [
    "CompiledTrainLoop",
    "compile_train_loop",
    "use_compiled_loop",
    "FAST_PATH_CONTRACT",
]

#: The recorded-loop fast path's contract, machine-checked by
#: ``python -m repro check``: :func:`use_compiled_loop` reads the kill
#: switch, the reference engine is the per-step compiled step built by
#: :func:`~repro.nn.compile.compile_train_step` (replaying the *same*
#: program once per step — the opt-out path is bit-identical), and
#: ``benchmarks/bench_loop_compile.py`` gates the speedup while
#: asserting that bit-identity.
FAST_PATH_CONTRACT = {
    "kill_switch": "REPRO_COMPILED_LOOP",
    "reference": "compile_train_step",
    "bench": "bench_loop_compile.py",
}

#: Upper bound on steps pre-drawn per replay chunk (bounds the segment's
#: eps/index staging memory; chunking never changes the rng stream —
#: the two draws per step happen in the original order either way).
_MAX_CHUNK_STEPS = 4096

#: Skip the dataset-level im2col when the unfolded dataset would exceed
#: this many bytes; the loop then pads per step into a persistent buffer
#: (still bit-identical, slightly slower).
_MAX_COLS_BYTES = 64 * 1024 * 1024


def use_compiled_loop() -> bool:
    """``REPRO_COMPILED_LOOP=0`` forces per-step execution (kill switch)."""
    return os.environ.get("REPRO_COMPILED_LOOP", "1") != "0"


def compile_train_loop(
    step_fn: Callable,
    params: Sequence,
    optimizer=None,
    grad_clip: Optional[float] = None,
) -> "CompiledTrainLoop":
    """Build a recorded loop around a freshly compiled train step.

    The step is traced by :func:`~repro.nn.compile.compile_train_step`
    exactly as the per-step engine would; the loop replays that step's
    program, so both engines share one program cache and produce
    bit-identical values.
    """
    step = compile_train_step(
        step_fn, params, optimizer=optimizer, grad_clip=grad_clip
    )
    return CompiledTrainLoop(step)


class CompiledTrainLoop:
    """Segment replayer for one :class:`CompiledTrainStep`.

    Sessions are opened per training call (:meth:`begin`) and replay
    whole checkpoint segments; per-signature loop state (flat buffers,
    substituted instructions) is cached across calls like the step's own
    program cache.
    """

    def __init__(self, step: CompiledTrainStep) -> None:
        self.step = step
        self._states: Dict[Tuple, "_LoopState"] = {}
        #: segments replayed through this loop (tests/telemetry).
        self.segments_replayed = 0

    def begin(
        self,
        all_grids: np.ndarray,
        targets: np.ndarray,
        sample_p: np.ndarray,
        batch: int,
        pad: Callable[[np.ndarray], np.ndarray],
        noise_dim: int,
    ) -> "_LoopSession":
        """Open a recording session for one ``train_model`` call.

        Raises :class:`CompileUnsupported` when the step cannot compile
        or the loop cannot prove itself bitwise-equal to it.
        """
        count = len(all_grids)
        if count == 0 or batch <= 0:
            raise CompileUnsupported("recorded loop needs a non-empty dataset")
        sample_p = np.asarray(sample_p, dtype=np.float64)
        if (
            sample_p.ndim != 1
            or sample_p.shape[0] != count
            or np.any(sample_p < 0)
            or abs(math.fsum(sample_p) - 1.0) > math.sqrt(np.finfo(np.float64).eps)
        ):
            # Let the per-step path surface rng.choice's own error.
            raise CompileUnsupported("sampling weights rejected by the loop")

        # Deterministic probe inputs: no rng consumption before training.
        ex_idx = np.arange(batch) % count
        ex_grids = np.ascontiguousarray(all_grids[ex_idx], dtype=np.float64)
        ex_targets = np.ascontiguousarray(targets[ex_idx], dtype=np.float64)
        ex_eps = np.zeros((batch, noise_dim), dtype=np.float64)
        ex_x = np.asarray(pad(ex_grids), dtype=np.float64)
        arrays = (ex_x, ex_grids, ex_eps, ex_targets)

        program = self.step.program_for(arrays)
        key = self.step.signature(arrays)
        state = self._states.get(key)
        if state is None:
            state = _LoopState(self.step, program)
            self._states[key] = state
        state.resync()

        # rng.choice(count, size=batch, replace=True, p=w) internally
        # cumsums + renormalizes the weights and searchsorts uniforms;
        # hoisting the CDF replays it draw-for-draw.
        cdf = np.cumsum(sample_p)
        cdf /= cdf[-1]

        cols_ds = state.build_dataset_cols(all_grids, pad)
        session = _LoopSession(
            state, all_grids, targets, cdf, batch, pad, noise_dim, cols_ds,
            loop=self,
        )
        state.selfcheck(arrays, session, ex_idx)
        return session


class _LoopState:
    """Per-signature loop machinery: flat state + substituted program."""

    def __init__(self, step: CompiledTrainStep, program) -> None:
        self.step = step
        self.program = program
        optimizer = step.optimizer
        if type(optimizer) is not Adam:
            raise CompileUnsupported("recorded loop requires a plain Adam optimizer")
        if optimizer.weight_decay:
            raise CompileUnsupported("recorded loop does not fold weight decay")
        if len(optimizer.params) != len(step.params) or any(
            a is not b for a, b in zip(optimizer.params, step.params)
        ):
            raise CompileUnsupported("optimizer and step parameter lists differ")
        self.optimizer = optimizer
        self.params = list(step.params)
        self.grad_clip = step.grad_clip

        grad_map = {id(t): buf for t, buf in program._param_grad_binds}
        self.grad_bufs: List[np.ndarray] = []
        for p in self.params:
            buf = grad_map.get(id(p))
            if buf is None:
                raise CompileUnsupported("a parameter receives no compiled gradient")
            if p.data.dtype != np.float64:
                raise CompileUnsupported("recorded loop requires float64 parameters")
            self.grad_bufs.append(buf)

        outputs = program._outputs
        for name in ("loss", "reconstruction", "kl", "cost"):
            if name not in outputs:
                raise CompileUnsupported(f"step outputs lack {name!r}")
        self.out_ids = tuple(
            outputs[name] for name in ("loss", "reconstruction", "kl", "cost")
        )

        binds = dict((position, nid) for nid, position in program._input_binds)
        if sorted(binds) != [0, 1, 2, 3]:
            raise CompileUnsupported("step inputs pruned; loop binding unsafe")
        self.x_nid = binds[0]
        self.g_nid = binds[1]
        self.e_nid = binds[2]
        self.t_nid = binds[3]

        # Flat parameter/gradient/moment layout in optimizer order.
        sizes = [p.data.size for p in self.params]
        offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.intp)
        self.slices = [
            (int(offsets[i]), int(offsets[i + 1])) for i in range(len(sizes))
        ]
        total = int(offsets[-1])
        self.flat_p = np.empty(total)
        self.flat_m = np.empty(total)
        self.flat_v = np.empty(total)
        self.flat_g = np.empty(total)
        self.flat_sq = np.empty(total)
        self.flat_s1 = np.empty(total)
        self.flat_s2 = np.empty(total)
        self._p_views: List[np.ndarray] = []
        self._g_views: List[np.ndarray] = []

        self._find_lead_conv()
        self._rebased = False

    # -- flat-state rebasing -------------------------------------------
    def resync(self) -> None:
        """(Re)base parameters and Adam moments onto the flat buffers.

        Cheap when already based (identity checks only); anything that
        rebound ``p.data`` (a fresh process, an exotic caller) triggers a
        rebuild from the current values.
        """
        if self._rebased and all(
            p.data is view for p, view in zip(self.params, self._p_views)
        ):
            return
        optimizer = self.optimizer
        self._p_views = []
        self._g_views = []
        for i, (p, (a, b)) in enumerate(zip(self.params, self.slices)):
            self.flat_p[a:b] = p.data.ravel()
            self.flat_m[a:b] = optimizer._m[i].ravel()
            self.flat_v[a:b] = optimizer._v[i].ravel()
            shape = p.data.shape
            p_view = self.flat_p[a:b].reshape(shape)
            g_view = self.flat_g[a:b].reshape(shape)
            p.data = p_view
            p.grad = g_view
            optimizer._m[i] = self.flat_m[a:b].reshape(shape)
            optimizer._v[i] = self.flat_v[a:b].reshape(shape)
            self._p_views.append(p_view)
            self._g_views.append(g_view)
        self._bind_lead_conv_weight()
        self._rebased = True

    # -- leading-convolution gather ------------------------------------
    def _find_lead_conv(self) -> None:
        """Detect the padded-grid convolution eligible for dataset im2col."""
        program = self.program
        trace = program._trace
        plan = program.plan
        self.conv_nid = None
        self.fwd_instrs_pad = list(program._forward)
        self.fwd_instrs_gather = self.fwd_instrs_pad
        x_shape = trace.nodes[self.x_nid].shape
        self.pad_buf = np.zeros(x_shape)
        consumers = [
            nid
            for nid in plan.sched
            if self.x_nid in trace.nodes[nid].parents
        ]
        if len(consumers) != 1:
            return
        nid = consumers[0]
        node = trace.nodes[nid]
        if (
            node.op != "conv2d"
            or node.parents[0] != self.x_nid
            or node.parents[1] not in trace.param_nodes
        ):
            return
        kern = program._fwd_kernels.get(nid)
        if kern is None or not kern.unfold.cols.flags.c_contiguous:
            return
        self.conv_nid = nid
        self.conv_kern = kern
        self.conv_w = trace.param_nodes[node.parents[1]]
        self.cur_idx: List[Optional[np.ndarray]] = [None]
        self.cur_cols: List[Optional[np.ndarray]] = [None]
        self._w2d: List[Optional[np.ndarray]] = [None]
        unfold = kern.unfold
        out_mat = kern.out_mat
        cur_idx, cur_cols, w2d = self.cur_idx, self.cur_cols, self._w2d

        def run_gathered_conv() -> None:
            np.take(cur_cols[0], cur_idx[0], axis=0, out=unfold.cols)
            np.matmul(w2d[0], unfold.cols_mat, out=out_mat)

        slot = list(plan.sched).index(nid)
        instrs = list(program._forward)
        instrs[slot] = run_gathered_conv
        self.fwd_instrs_gather = instrs

    def _bind_lead_conv_weight(self) -> None:
        if self.conv_nid is not None:
            rows = self.conv_kern.w_rows
            self._w2d[0] = self.conv_w.data.reshape(rows, -1)

    def build_dataset_cols(
        self, all_grids: np.ndarray, pad: Callable
    ) -> Optional[np.ndarray]:
        """Unfold the whole padded dataset for the leading convolution."""
        if self.conv_nid is None:
            return None
        unfold = self.conv_kern.unfold
        count = len(all_grids)
        _, channels, kh, kw, oh, ow = unfold.cols.shape
        if count * channels * kh * kw * oh * ow * 8 > _MAX_COLS_BYTES:
            return None
        cols_ds = np.empty((count, channels, kh, kw, oh, ow))
        chunk = 1024
        for i in range(0, count, chunk):
            block = np.asarray(
                pad(np.asarray(all_grids[i : i + chunk], dtype=np.float64)),
                dtype=np.float64,
            )
            im = _Im2Col(
                block.shape, unfold.kh, unfold.kw, unfold.stride, unfold.padding
            )
            im(block)
            cols_ds[i : i + chunk] = im.cols
        return cols_ds

    # -- replay internals ----------------------------------------------
    def bind_step_buffers(self, batch: int, grid_shape, gather: bool) -> Tuple:
        storage = self.program._storage
        g_buf = np.empty((batch,) + grid_shape)
        t_buf = np.empty((batch,))
        storage[self.g_nid] = g_buf
        storage[self.t_nid] = t_buf
        if not gather:
            storage[self.x_nid] = self.pad_buf
        return g_buf, t_buf

    def flat_update(self) -> None:
        """Gather grads, clip, Adam — bit-identical to the per-param forms."""
        flat_g = self.flat_g
        for view, buf in zip(self._g_views, self.grad_bufs):
            np.copyto(view, buf)
        clip = self.grad_clip
        if clip is not None:
            np.multiply(flat_g, flat_g, out=self.flat_sq)
            sq = self.flat_sq
            total = 0.0
            for a, b in self.slices:
                total += float(np.add.reduce(sq[a:b]))
            total = float(np.sqrt(total))
            if total > clip and total > 0.0:
                flat_g *= clip / total
        optimizer = self.optimizer
        optimizer._step_count += 1
        bias1 = 1.0 - optimizer.beta1 ** optimizer._step_count
        bias2 = 1.0 - optimizer.beta2 ** optimizer._step_count
        s1, s2 = self.flat_s1, self.flat_s2
        np.multiply(flat_g, 1.0 - optimizer.beta1, out=s2)
        self.flat_m *= optimizer.beta1
        self.flat_m += s2
        np.multiply(flat_g, 1.0 - optimizer.beta2, out=s2)
        np.multiply(s2, flat_g, out=s2)
        self.flat_v *= optimizer.beta2
        self.flat_v += s2
        np.divide(self.flat_m, bias1, out=s1)
        np.divide(self.flat_v, bias2, out=s2)
        np.sqrt(s2, out=s2)
        s2 += optimizer.eps
        np.multiply(s1, optimizer.lr, out=s1)
        np.divide(s1, s2, out=s1)
        self.flat_p -= s1

    # -- the bitwise probe ---------------------------------------------
    def selfcheck(
        self, arrays: Tuple[np.ndarray, ...], session: "_LoopSession", ex_idx
    ) -> None:
        """One probe step, loop instructions vs ``GraphProgram.run``.

        Compares the four outputs and the gathered flat gradient bitwise;
        touches no optimizer state and consumes no rng.
        """
        program = self.program
        storage = program._storage
        gather = session.cols_ds is not None
        g_buf, t_buf = self.bind_step_buffers(
            len(arrays[1]), arrays[1].shape[1:], gather
        )
        np.copyto(g_buf, arrays[1])
        np.copyto(t_buf, arrays[3])
        storage[self.e_nid] = arrays[2]
        if gather:
            self.cur_idx[0] = np.asarray(ex_idx, dtype=np.intp)
            self.cur_cols[0] = session.cols_ds
            instrs = self.fwd_instrs_gather
        else:
            session.fill_pad(self.pad_buf, arrays[1])
            instrs = self.fwd_instrs_pad
        for instr in instrs:
            instr()
        mine = [np.array(storage[nid]) for nid in self.out_ids]
        for instr in program._backward:
            instr()
        for view, buf in zip(self._g_views, self.grad_bufs):
            np.copyto(view, buf)
        mine_g = self.flat_g.copy()

        reference = program.run(arrays)
        names = ("loss", "reconstruction", "kl", "cost")
        ok = all(
            np.array_equal(mine[i], reference[names[i]]) for i in range(4)
        )
        for view, buf in zip(self._g_views, self.grad_bufs):
            np.copyto(view, buf)
        ok = ok and np.array_equal(mine_g, self.flat_g)
        # program.run pointed .grad back at its own buffers; restore the
        # flat views so callers observe the clipped gradients.
        for p, view in zip(self.params, self._g_views):
            p.grad = view
        if not ok:
            raise CompileUnsupported(
                "recorded loop diverged from the per-step program"
            )


class _LoopSession:
    """One ``train_model`` call's recording context."""

    def __init__(
        self,
        state: _LoopState,
        all_grids: np.ndarray,
        targets: np.ndarray,
        cdf: np.ndarray,
        batch: int,
        pad: Callable,
        noise_dim: int,
        cols_ds: Optional[np.ndarray],
        loop: Optional["CompiledTrainLoop"] = None,
    ) -> None:
        self.state = state
        self.loop = loop
        self.all_grids = np.asarray(all_grids, dtype=np.float64)
        self.targets = np.asarray(targets, dtype=np.float64)
        self.cdf = cdf
        self.batch = batch
        self.noise_dim = noise_dim
        self.cols_ds = cols_ds
        self._interior = None

    def fill_pad(self, pad_buf: np.ndarray, grids: np.ndarray) -> None:
        # Mirror CircuitVAEModel._pad_grids: grids land in the top-left
        # interior of a zeroed (B, 1, m, m) buffer.
        n = grids.shape[-1]
        pad_buf[:, 0, :n, :n] = grids

    def run(self, steps: int, rng: np.random.Generator) -> np.ndarray:
        """Replay ``steps`` training steps; returns per-step ``(S, 4)`` losses.

        Consumes exactly two generator draws per step (indices then
        noise), in the per-step order.
        """
        state = self.state
        state.resync()
        program = state.program
        storage = program._storage
        gather = self.cols_ds is not None
        batch = self.batch
        g_buf, t_buf = state.bind_step_buffers(
            batch, self.all_grids.shape[1:], gather
        )
        # Parameters bind once: their storage slots hold the stable flat
        # views that the Adam update writes through.
        for nid, tensor in program._param_binds:
            storage[nid] = tensor.data
        if gather:
            state.cur_cols[0] = self.cols_ds
            instrs = state.fwd_instrs_gather
        else:
            instrs = state.fwd_instrs_pad
        backward = program._backward
        out_loss, out_rec, out_kl, out_cost = state.out_ids
        cdf = self.cdf
        all_grids, targets = self.all_grids, self.targets
        e_nid = state.e_nid
        losses = np.empty((steps, 4))
        flat_update = state.flat_update
        fill_pad = self.fill_pad
        pad_buf = state.pad_buf

        done = 0
        chunk_cap = max(
            64, min(_MAX_CHUNK_STEPS, 4_194_304 // max(1, batch * self.noise_dim))
        )
        while done < steps:
            chunk = min(steps - done, chunk_cap)
            idx_chunk = np.empty((chunk, batch), dtype=np.intp)
            eps_chunk = np.empty((chunk, batch, self.noise_dim))
            for s in range(chunk):
                u = rng.random(batch)
                idx_chunk[s] = cdf.searchsorted(u, side="right")
                eps_chunk[s] = rng.standard_normal((batch, self.noise_dim))
            for s in range(chunk):
                idx = idx_chunk[s]
                np.take(all_grids, idx, axis=0, out=g_buf)
                np.take(targets, idx, axis=0, out=t_buf)
                storage[e_nid] = eps_chunk[s]
                if gather:
                    state.cur_idx[0] = idx
                else:
                    fill_pad(pad_buf, g_buf)
                for instr in instrs:
                    instr()
                row = losses[done + s]
                row[0] = storage[out_loss]
                row[1] = storage[out_rec]
                row[2] = storage[out_kl]
                row[3] = storage[out_cost]
                for instr in backward:
                    instr()
                flat_update()
            done += chunk
        self.state.step.stats.replays += steps
        if self.loop is not None:
            self.loop.segments_replayed += 1
        return losses
