"""``repro.nn`` — a from-scratch neural-network framework on numpy.

The CircuitVAE paper builds its model in PyTorch; this subpackage provides
the equivalent substrate offline: reverse-mode autograd
(:mod:`repro.nn.tensor`), layers (:mod:`repro.nn.layers`), optimizers
(:mod:`repro.nn.optim`), losses (:mod:`repro.nn.losses`) and serialization
(:mod:`repro.nn.serialize`).
"""

from . import functional, graph, init, losses
from . import compile as compile  # noqa: A001 — torch-style nn.compile namespace
from . import loop, vmap
from .compile import CompiledTrainStep, CompileStats, CompileUnsupported, compile_train_step
from .loop import CompiledTrainLoop, use_compiled_loop
from .vmap import StackedTrainStep
from .layers import (
    MLP,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import Adam, CosineSchedule, Optimizer, SGD, StepSchedule, clip_grad_norm
from .serialize import load_module, load_state, save_module, save_state
from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, ones, randn, stack, tensor, where, zeros

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "stack",
    "concatenate",
    "where",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Linear",
    "Conv2d",
    "ConvTranspose2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "CosineSchedule",
    "StepSchedule",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "save_state",
    "load_state",
    "functional",
    "losses",
    "init",
    "graph",
    "compile",
    "CompiledTrainStep",
    "CompileStats",
    "CompileUnsupported",
    "compile_train_step",
    "loop",
    "vmap",
    "CompiledTrainLoop",
    "use_compiled_loop",
    "StackedTrainStep",
]
