"""The findings model shared by every analyzer level.

Both the :mod:`ast`-based lint rules (:mod:`repro.check.rules`) and the
GraphProgram IR verifier (:mod:`repro.check.ir`) report through one
:class:`Finding` shape — rule id, severity, ``file:line`` anchor,
message, fixer hint — so the CLI, the CI artifact and the tier-1 gate
consume a single stream regardless of which level produced it.

Baselines
---------
A committed baseline (:data:`BASELINE_NAME` at the repo root) lists
findings that are *deliberately kept*, each with a one-line
justification.  Baseline keys are ``rule:path:symbol`` — anchored to a
rule-chosen stable symbol rather than a line number, so unrelated edits
moving code around never invalidate an entry.  Stale entries (keys that
no longer match any finding) are themselves reported, keeping the
baseline from rotting into a suppression dump.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "Finding",
    "render_json",
    "render_text",
]

#: repo-root file name of the committed baseline.
BASELINE_NAME = "CHECK_BASELINE.json"

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to ``path:line``.

    ``symbol`` is the stable anchor baselines key on (a knob name, a
    constant, a node id) — never a line number, so baselines survive
    reformatting.  When a rule has no natural symbol it leaves it empty
    and the message itself becomes the anchor.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    hint: str = ""
    symbol: str = ""

    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        anchor = self.symbol or self.message
        return f"{self.rule}:{self.path}:{anchor}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "symbol": self.symbol,
            "key": self.key(),
        }


@dataclass
class Baseline:
    """The committed set of deliberately-kept findings."""

    entries: Dict[str, str] = field(default_factory=dict)  # key -> justification
    path: Optional[str] = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entries: Dict[str, str] = {}
        for entry in payload.get("entries", ()):
            key = entry["key"]
            justification = entry.get("justification", "").strip()
            if not justification:
                raise ValueError(
                    f"baseline entry {key!r} has no justification; every "
                    "deliberately-kept finding must say why"
                )
            entries[key] = justification
        return cls(entries=entries, path=path)

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Partition into (active, suppressed, stale-baseline-keys)."""
        active: List[Finding] = []
        suppressed: List[Finding] = []
        matched = set()
        for finding in findings:
            key = finding.key()
            if key in self.entries:
                suppressed.append(finding)
                matched.add(key)
            else:
                active.append(finding)
        stale = sorted(set(self.entries) - matched)
        return active, suppressed, stale


def render_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    stale: Sequence[str] = (),
) -> str:
    """Human-readable report, one ``path:line`` anchored line per finding."""
    lines: List[str] = []
    for finding in findings:
        lines.append(
            f"{finding.path}:{finding.line}: "
            f"{finding.severity} [{finding.rule}] {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for key in stale:
        lines.append(
            f"{BASELINE_NAME}: error [check-stale-baseline] entry {key!r} "
            "matches no current finding; delete it"
        )
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = (
        f"{errors} error(s), {warnings} warning(s)"
        + (f", {len(suppressed)} baselined" if suppressed else "")
        + (f", {len(stale)} stale baseline entr(ies)" if stale else "")
    )
    lines.append(summary if lines else f"clean: {summary}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    stale: Sequence[str] = (),
) -> str:
    """Machine-readable report (the CI artifact's shape)."""
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
        "suppressed": [f.to_dict() for f in suppressed],
        "stale_baseline_keys": list(stale),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
