"""repro.check — project-invariant static analysis + IR verification.

Two levels, one findings model:

* **Level 1** (:mod:`repro.check.engine` + :mod:`repro.check.rules`):
  an :mod:`ast`-based lint engine with a rule registry
  (:func:`~repro.check.engine.register_rule`, rules-as-data) and five
  project-specific analyzers — env-knob registry discipline
  (:mod:`repro.check.knobs` is the single source of truth the README
  table is generated from), protocol/dataclass drift, telemetry-name
  discipline, fast-path contracts, and daemon thread-safety basics.
* **Level 2** (:mod:`repro.check.ir`): a static verifier for compiled
  :class:`~repro.nn.compile.GraphProgram` plans — def-before-use,
  live-slot overwrites, backward-schedule soundness, fused-chain
  legality — run on every compile under ``REPRO_IR_VERIFY=1`` and
  unconditionally in tests.

Entry point: ``python -m repro check [--strict] [--format json]
[--baseline PATH]``.  Exit status is 0 when the tree is clean modulo
the committed baseline (:data:`~repro.check.findings.BASELINE_NAME`,
one justification per deliberately-kept finding).

Stdlib-only by design (like :mod:`repro.obs`); rule bodies may import
project modules to introspect the registries they validate.
"""

from .engine import DEFAULT_PATHS, RULES, register_rule, run_check
from .findings import BASELINE_NAME, Baseline, Finding, render_json, render_text
from .ir import IR_RULES, verify_program
from .knobs import KNOBS, KnobDef, render_env_table

__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "DEFAULT_PATHS",
    "Finding",
    "IR_RULES",
    "KNOBS",
    "KnobDef",
    "RULES",
    "register_rule",
    "render_env_table",
    "render_json",
    "render_text",
    "run_check",
    "verify_program",
]
