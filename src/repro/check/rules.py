"""The five project-invariant analyzers.

Each rule encodes a contract the codebase otherwise enforces only by
convention:

``check-env-knobs`` / ``check-env-stale`` / ``check-readme-env-table``
    Every ``os.environ`` read of a ``REPRO_*`` name must be registered
    in :mod:`repro.check.knobs` (and therefore in README's generated
    env table); registered knobs nothing reads are rot.
``check-protocol-drift``
    The wire forms in :mod:`repro.serve.protocol` must stay field-exact
    with the domain dataclasses they serialize — a field added to
    ``SynthesisOptions`` but not to ``task_to_dict`` would silently
    desynchronize daemon results from in-process ones.
``check-telemetry-names``
    Counter/stage/span string literals must resolve against the names
    :class:`~repro.engine.telemetry.EngineTelemetry` registers — a
    typo'd counter raises at runtime, but a typo'd stage or span
    silently creates a new series in the
    :class:`~repro.obs.metrics.MetricsRegistry`.
``check-fast-path-contract``
    Modules declaring ``FAST_PATH_CONTRACT`` must read their kill
    switch, call their reference fallback, and be imported by their
    gating bench; every registered kill-switch knob must be claimed by
    exactly one contract.
``check-thread-safety``
    Module/class-level mutable state in code reached from both the
    ``EvalDaemon`` event loop and pool/thread entry points must carry a
    ``thread-safe``/``lock`` annotation comment explaining its
    discipline (or actually be lock-guarded, which the annotation
    names).

Rules yield :class:`~repro.check.findings.Finding` objects with only
location/message/symbol filled; the engine stamps rule id, severity and
the fixer hint from the registry entry.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import CheckContext, SourceFile, register_rule
from .findings import Finding
from .knobs import KNOBS, render_env_table

__all__: List[str] = []


def _f(
    path: str,
    line: int,
    message: str,
    symbol: str = "",
    severity: str = "",
    hint: str = "",
) -> Finding:
    return Finding(
        rule="",
        severity=severity,
        path=path,
        line=line,
        message=message,
        hint=hint,
        symbol=symbol,
    )


# ----------------------------------------------------------------------
# env-knob discipline
# ----------------------------------------------------------------------
def _is_environ(node: ast.AST) -> bool:
    """``os.environ`` / bare ``environ`` (from-imported)."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    return isinstance(node, ast.Name) and node.id == "environ"


def _env_name(arg: ast.AST, consts: Dict[str, str]) -> Optional[str]:
    """Resolve an env-name argument: literal or module-level constant."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        return consts.get(arg.id)
    return None


def _env_reads(source: SourceFile) -> Iterator[Tuple[str, int]]:
    """Every resolvable env-var access in one file: (name, line)."""
    if source.tree is None:
        return
    consts = source.module_constants()
    for node in ast.walk(source.tree):
        arg: Optional[ast.AST] = None
        if isinstance(node, ast.Subscript) and _is_environ(node.value):
            arg = node.slice
        elif isinstance(node, ast.Call) and node.args:
            func = node.func
            if isinstance(func, ast.Attribute) and (
                (func.attr in ("get", "setdefault") and _is_environ(func.value))
                or func.attr == "getenv"
            ):
                arg = node.args[0]
        if arg is None:
            continue
        name = _env_name(arg, consts)
        if name is not None:
            yield name, node.lineno


@register_rule(
    "check-env-knobs",
    "error",
    "register the knob in src/repro/check/knobs.py (name, default, "
    "effect) and regenerate the README table",
)
def env_knob_rule(context: CheckContext) -> Iterator[Finding]:
    """``REPRO_*`` env accesses must name registered knobs."""
    for source in context.files:
        for name, line in _env_reads(source):
            if name.startswith("REPRO_") and name not in KNOBS:
                yield _f(
                    source.rel,
                    line,
                    f"env knob {name} is not in the check/knobs.py registry",
                    symbol=name,
                )


@register_rule(
    "check-env-stale",
    "warning",
    "delete the registry entry (and its README row) or wire the knob up",
)
def env_stale_rule(context: CheckContext) -> Iterator[Finding]:
    """Registered knobs must be read somewhere in the tree."""
    if not context.full_tree:
        return
    read: Set[str] = set()
    for source in context.files:
        for name, _line in _env_reads(source):
            read.add(name)
    for name in KNOBS:
        if name not in read:
            yield _f(
                "src/repro/check/knobs.py",
                1,
                f"registered knob {name} is never read by any scanned file",
                symbol=name,
            )


@register_rule(
    "check-readme-env-table",
    "error",
    "regenerate with: PYTHONPATH=src python -m repro check --render-env-table",
)
def readme_env_table_rule(context: CheckContext) -> Iterator[Finding]:
    """README's env table must equal the one rendered from the registry."""
    if not context.full_tree:
        return
    readme = context.read_root_file("README.md")
    if readme is None:
        yield _f("README.md", 1, "README.md not found", symbol="missing")
        return
    expected = render_env_table().splitlines()
    lines = readme.splitlines()
    try:
        start = lines.index(expected[0])
    except ValueError:
        yield _f(
            "README.md",
            1,
            "env-knob table header not found "
            "('| Variable | Default | Meaning |')",
            symbol="env-table",
        )
        return
    actual = []
    for line in lines[start:]:
        if not line.startswith("|"):
            break
        actual.append(line)
    if actual != expected:
        extra = [l for l in actual if l not in expected]
        missing = [l for l in expected if l not in actual]
        detail = "; ".join(
            part
            for part in (
                f"{len(missing)} row(s) missing/outdated" if missing else "",
                f"{len(extra)} row(s) not in the registry" if extra else "",
                "row order differs" if not missing and not extra else "",
            )
            if part
        )
        yield _f(
            "README.md",
            start + 1,
            f"env-knob table disagrees with check/knobs.py: {detail}",
            symbol="env-table",
        )


# ----------------------------------------------------------------------
# protocol / dataclass drift
# ----------------------------------------------------------------------
def _dict_keys(node: ast.Dict) -> Set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _nested_dict(node: ast.Dict, key: str) -> Optional[ast.Dict]:
    for k, v in zip(node.keys, node.values):
        if (
            isinstance(k, ast.Constant)
            and k.value == key
            and isinstance(v, ast.Dict)
        ):
            return v
    return None


def _field_names(cls) -> Set[str]:
    import dataclasses
    import inspect

    if dataclasses.is_dataclass(cls):
        return {f.name for f in dataclasses.fields(cls)}
    params = inspect.signature(cls.__init__).parameters
    return {name for name in params if name != "self"}


@register_rule(
    "check-protocol-drift",
    "error",
    "update task_to_dict/task_from_dict and the dataclass together; the "
    "wire form must cover exactly the dataclass's fields",
)
def protocol_drift_rule(context: CheckContext) -> Iterator[Finding]:
    """serve/protocol.py wire forms must biject with the dataclasses."""
    source = context.find("src/repro/serve/protocol.py")
    if source is None or source.tree is None:
        return
    from ..circuits.task import CircuitTask
    from ..synth.library import Cell, CellLibrary
    from ..synth.physical import SynthesisOptions
    from ..synth.timing import IOTiming

    funcs = {
        node.name: node
        for node in source.tree.body  # type: ignore[attr-defined]
        if isinstance(node, ast.FunctionDef)
    }

    def mismatch(
        line: int, what: str, got: Set[str], want: Set[str], symbol: str
    ) -> Iterator[Finding]:
        missing = sorted(want - got)
        extra = sorted(got - want)
        if missing or extra:
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if extra:
                parts.append(f"unexpected {extra}")
            yield _f(
                source.rel,
                line,
                f"{what}: {', '.join(parts)}",
                symbol=symbol,
            )

    # task_to_dict: returned dict-literal keys vs dataclass fields
    to_dict = funcs.get("task_to_dict")
    if to_dict is None:
        yield _f(source.rel, 1, "task_to_dict not found", symbol="task_to_dict")
    else:
        returned: Optional[ast.Dict] = None
        for node in ast.walk(to_dict):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                returned = node.value
        if returned is None:
            yield _f(
                source.rel,
                to_dict.lineno,
                "task_to_dict does not return a dict literal",
                symbol="task_to_dict",
            )
        else:
            yield from mismatch(
                to_dict.lineno,
                "task_to_dict top-level keys vs CircuitTask fields",
                _dict_keys(returned),
                _field_names(CircuitTask),
                "to_dict:task",
            )
            checks = (
                ("library", CellLibrary, "cells"),
                ("io_timing", IOTiming, None),
                ("options", SynthesisOptions, None),
            )
            for key, cls, _cells in checks:
                nested = _nested_dict(returned, key)
                if nested is None:
                    yield _f(
                        source.rel,
                        to_dict.lineno,
                        f"task_to_dict {key!r} is not a dict literal",
                        symbol=f"to_dict:{key}",
                    )
                    continue
                yield from mismatch(
                    nested.lineno,
                    f"task_to_dict {key!r} keys vs {cls.__name__} fields",
                    _dict_keys(nested),
                    _field_names(cls),
                    f"to_dict:{key}",
                )
            # per-cell dicts live in a comprehension under "library"
            library = _nested_dict(returned, "library")
            if library is not None:
                cell_dicts = [
                    node
                    for node in ast.walk(library)
                    if isinstance(node, ast.Dict) and node is not library
                ]
                for cell_dict in cell_dicts:
                    if _dict_keys(cell_dict) & {"name", "function"}:
                        yield from mismatch(
                            cell_dict.lineno,
                            "task_to_dict cell keys vs Cell fields",
                            _dict_keys(cell_dict),
                            _field_names(Cell),
                            "to_dict:cell",
                        )

    # task_from_dict: constructor keywords vs dataclass fields
    from_dict = funcs.get("task_from_dict")
    if from_dict is None:
        yield _f(
            source.rel, 1, "task_from_dict not found", symbol="task_from_dict"
        )
    else:
        targets = {
            "CircuitTask": CircuitTask,
            "CellLibrary": CellLibrary,
            "Cell": Cell,
            "IOTiming": IOTiming,
            "SynthesisOptions": SynthesisOptions,
        }
        for node in ast.walk(from_dict):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            cls = targets.get(node.func.id)
            if cls is None:
                continue
            kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}
            yield from mismatch(
                node.lineno,
                f"task_from_dict {node.func.id}(...) keywords vs fields",
                kwargs,
                _field_names(cls),
                f"from_dict:{node.func.id}",
            )


# ----------------------------------------------------------------------
# telemetry-name discipline
# ----------------------------------------------------------------------
def _receiver_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our trees
        return ""


def _telemetryish(text: str) -> bool:
    lowered = text.lower()
    return "telemetry" in lowered or lowered in ("sink", "sinks")


def _traceish(text: str) -> bool:
    lowered = text.lower()
    return "trace" in lowered or "tracer" in lowered


@register_rule(
    "check-telemetry-names",
    "error",
    "use a name EngineTelemetry registers (_COUNTERS / KNOWN_STAGES / "
    "KNOWN_SPANS / KNOWN_HISTOGRAMS in repro.engine.telemetry) or "
    "register the new name there",
)
def telemetry_name_rule(context: CheckContext) -> Iterator[Finding]:
    """Counter/stage/span literals must resolve against registered names."""
    from ..engine.telemetry import (
        KNOWN_HISTOGRAMS,
        KNOWN_SPANS,
        KNOWN_STAGES,
        EngineTelemetry,
    )

    counters = set(EngineTelemetry._COUNTERS)

    def first_literal(call: ast.Call, index: int = 0) -> Optional[str]:
        if len(call.args) > index:
            arg = call.args[index]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        return None

    for source in context.files:
        if source.tree is None or source.rel == "src/repro/engine/telemetry.py":
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # stage(telemetry, "name") / stage_all(sinks, "name")
            if isinstance(func, ast.Name) and func.id in ("stage", "stage_all"):
                name = first_literal(node, 1)
                if name is not None and name not in KNOWN_STAGES:
                    yield _f(
                        source.rel,
                        node.lineno,
                        f"unknown stage name {name!r}",
                        symbol=f"stage:{name}",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            recv = _receiver_text(func.value)
            if func.attr == "add" and _telemetryish(recv):
                name = first_literal(node)
                if name is not None and name not in counters:
                    yield _f(
                        source.rel,
                        node.lineno,
                        f"unknown telemetry counter {name!r}",
                        symbol=f"counter:{name}",
                    )
            elif func.attr in ("time", "add_stage_time") and _telemetryish(recv):
                name = first_literal(node)
                if (
                    name is not None
                    and name not in KNOWN_STAGES
                    and not name.startswith("train_kernel:")
                ):
                    yield _f(
                        source.rel,
                        node.lineno,
                        f"unknown stage name {name!r}",
                        symbol=f"stage:{name}",
                    )
            elif func.attr == "observe_latency" and _telemetryish(recv):
                name = first_literal(node)
                if name is not None and name not in KNOWN_HISTOGRAMS:
                    yield _f(
                        source.rel,
                        node.lineno,
                        f"unknown latency histogram {name!r}",
                        symbol=f"histogram:{name}",
                    )
            elif func.attr == "span" and _traceish(recv):
                name = first_literal(node)
                if name is not None and name not in KNOWN_SPANS:
                    yield _f(
                        source.rel,
                        node.lineno,
                        f"unknown span name {name!r}",
                        symbol=f"span:{name}",
                    )


# ----------------------------------------------------------------------
# fast-path contracts
# ----------------------------------------------------------------------
_CONTRACT_KEYS = {"kill_switch", "reference", "bench"}


def _contract_of(source: SourceFile) -> Optional[Tuple[Dict[str, str], int]]:
    if source.tree is None:
        return None
    for node in source.tree.body:  # type: ignore[attr-defined]
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "FAST_PATH_CONTRACT"
            and isinstance(node.value, ast.Dict)
        ):
            contract: Dict[str, str] = {}
            for k, v in zip(node.value.keys, node.value.values):
                if (
                    isinstance(k, ast.Constant)
                    and isinstance(k.value, str)
                    and isinstance(v, ast.Constant)
                    and isinstance(v.value, str)
                ):
                    contract[k.value] = v.value
            return contract, node.lineno
    return None


def _module_dotted(rel: str) -> Optional[str]:
    if rel.startswith("src/") and rel.endswith(".py"):
        return rel[len("src/"):-len(".py")].replace("/", ".")
    return None


def _imports_module(tree: ast.AST, dotted: str) -> bool:
    parent, _, leaf = dotted.rpartition(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == dotted for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == dotted:
                return True
            if node.module == parent and any(
                alias.name == leaf for alias in node.names
            ):
                return True
    return False


@register_rule(
    "check-fast-path-contract",
    "error",
    "a fast path needs all three legs: the kill-switch env read, a "
    "fallback call to the reference function, and a benchmarks/bench_*.py "
    "importing the module",
)
def fast_path_rule(context: CheckContext) -> Iterator[Finding]:
    """FAST_PATH_CONTRACT declarations must be complete and honest."""
    claimed: Dict[str, str] = {}  # kill switch -> declaring rel path
    for source in context.files:
        found = _contract_of(source)
        if found is None:
            continue
        contract, line = found
        missing_keys = sorted(_CONTRACT_KEYS - set(contract))
        if missing_keys:
            yield _f(
                source.rel,
                line,
                f"FAST_PATH_CONTRACT missing key(s) {missing_keys}",
                symbol="contract-keys",
            )
            continue
        switch = contract["kill_switch"]
        reference = contract["reference"]
        bench = contract["bench"]
        knob = KNOBS.get(switch)
        if knob is None or not knob.kill_switch:
            yield _f(
                source.rel,
                line,
                f"kill switch {switch} is not a registered kill-switch knob",
                symbol=f"switch:{switch}",
            )
        if switch in claimed:
            yield _f(
                source.rel,
                line,
                f"kill switch {switch} already claimed by {claimed[switch]}",
                symbol=f"claimed:{switch}",
            )
        claimed.setdefault(switch, source.rel)
        if not any(name == switch for name, _ in _env_reads(source)):
            yield _f(
                source.rel,
                line,
                f"module never reads its declared kill switch {switch}",
                symbol=f"read:{switch}",
            )
        calls_reference = source.tree is not None and any(
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name) and node.func.id == reference)
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == reference
                )
            )
            for node in ast.walk(source.tree)
        )
        if not calls_reference:
            yield _f(
                source.rel,
                line,
                f"module never calls its reference fallback {reference}()",
                symbol=f"reference:{reference}",
            )
        bench_rel = f"benchmarks/{bench}"
        bench_source = context.find(bench_rel)
        if bench_source is None and not os.path.exists(
            os.path.join(context.root, bench_rel)
        ):
            yield _f(
                source.rel,
                line,
                f"declared bench {bench_rel} does not exist",
                symbol=f"bench:{bench}",
            )
        elif bench_source is not None and bench_source.tree is not None:
            dotted = _module_dotted(source.rel)
            if dotted is not None and not _imports_module(
                bench_source.tree, dotted
            ):
                yield _f(
                    bench_source.rel,
                    1,
                    f"bench does not import {dotted} (declared by its "
                    "FAST_PATH_CONTRACT)",
                    symbol=f"bench-import:{dotted}",
                )
    if context.full_tree:
        for name, knob in KNOBS.items():
            if knob.kill_switch and name not in claimed:
                yield _f(
                    "src/repro/check/knobs.py",
                    1,
                    f"kill-switch knob {name} is not claimed by any "
                    "FAST_PATH_CONTRACT",
                    symbol=f"unclaimed:{name}",
                )


# ----------------------------------------------------------------------
# daemon thread-safety basics
# ----------------------------------------------------------------------
#: rel-path prefixes reached from both the EvalDaemon event loop and
#: pool/thread entry points (parallel seeds share one in-process engine).
_SHARED_PREFIXES = ("src/repro/serve/", "src/repro/engine/")
_SHARED_FILES = (
    "src/repro/synth/incremental.py",
    "src/repro/synth/batched.py",
)

_MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
    "count",
}


def _is_mutable_ctor(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name in _MUTABLE_CALLS
    return False


def _annotated(source: SourceFile, lineno: int) -> bool:
    """A ``thread-safe``/``lock`` marker on the line or in the comment
    block above it."""
    lines = source.text.splitlines()
    window = lines[max(0, lineno - 6): lineno]
    return any(
        "#" in line and ("thread-safe" in line.lower() or "lock" in line.lower())
        for line in window
    )


@register_rule(
    "check-thread-safety",
    "warning",
    "guard the state with a lock (and say so) or add a '# thread-safety:' "
    "comment explaining why unguarded access is sound",
)
def thread_safety_rule(context: CheckContext) -> Iterator[Finding]:
    """Shared-scope module/class mutable state must be annotated."""
    for source in context.files:
        in_scope = source.rel.startswith(_SHARED_PREFIXES) or (
            source.rel in _SHARED_FILES
        )
        if not in_scope or source.tree is None:
            continue

        def scan(body, owner: str) -> Iterator[Finding]:
            for node in body:
                targets: List[ast.expr] = []
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if value is None or not _is_mutable_ctor(value):
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    # dunders (__all__ etc.) are interpreter conventions,
                    # and FAST_PATH_CONTRACT is a declaration the
                    # fast-path rule owns — both are write-once by design.
                    if target.id.startswith("__") or target.id == "FAST_PATH_CONTRACT":
                        continue
                    if _annotated(source, node.lineno):
                        continue
                    where = f"{owner}.{target.id}" if owner else target.id
                    yield _f(
                        source.rel,
                        node.lineno,
                        f"mutable shared state {where} has no lock/"
                        "thread-safety annotation",
                        symbol=where,
                    )

        yield from scan(source.tree.body, "")  # type: ignore[attr-defined]
        for node in source.tree.body:  # type: ignore[attr-defined]
            if isinstance(node, ast.ClassDef):
                yield from scan(node.body, node.name)
