"""Canonical registry of every ``REPRO_*`` environment knob.

This file is the single source of truth: the README env table is
*generated* from it (``python -m repro check --render-env-table``) and
the env-knob lint (:mod:`repro.check.rules`) fails when either drifts —
an ``os.environ`` read of an unregistered ``REPRO_*`` name, a registry
entry nothing reads, or a README table that disagrees row-for-row with
:func:`render_env_table`.

``kill_switch=True`` marks fast-path opt-outs: those knobs must be
claimed by exactly one module-level ``FAST_PATH_CONTRACT`` declaration
(see the fast-path rule), which ties the switch to its reference
fallback and gating bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["KnobDef", "KNOBS", "render_env_table", "table_rows"]


@dataclass(frozen=True)
class KnobDef:
    """One environment knob: name, rendered default, one-line effect."""

    name: str
    default: str
    effect: str
    kill_switch: bool = False


_ALL: Tuple[KnobDef, ...] = (
    KnobDef(
        "REPRO_CACHE_DIR",
        "unset (memory-only)",
        "Directory for the append-only JSONL disk cache; set it to make "
        "repeated bench invocations perform zero new synthesis calls.",
    ),
    KnobDef(
        "REPRO_ENGINE_WORKERS",
        "`1` (serial)",
        "Worker-process count for the synthesis pool.",
    ),
    KnobDef(
        "REPRO_VECTORIZED_EVAL",
        "`1` (on)",
        "`0` disables the vectorized batch fast path (scalar reference "
        "loop everywhere).",
        kill_switch=True,
    ),
    KnobDef(
        "REPRO_INCREMENTAL_EVAL",
        "`1` (on)",
        "`0` disables delta-aware incremental synthesis (populations take "
        "the plain vectorized flow; results are bit-identical either way).",
        kill_switch=True,
    ),
    KnobDef(
        "REPRO_COMPILED_TRAIN",
        "`1` (on)",
        "`0` forces VAE training onto the eager define-by-run tape (the "
        "numerical reference).",
        kill_switch=True,
    ),
    KnobDef(
        "REPRO_COMPILED_LOOP",
        "`1` (on)",
        "`0` disables the recorded-loop engine (training replays whole "
        "checkpoint segments as one program); the per-step compiled path "
        "runs instead, bit-identically.",
        kill_switch=True,
    ),
    KnobDef(
        "REPRO_STACKED_REPLICAS",
        "`1` (on)",
        "`0` disables vmap-style stacked multi-replica training "
        "(`train_replicas` trains each model serially through the "
        "reference `train_model` path).",
        kill_switch=True,
    ),
    KnobDef(
        "REPRO_IR_VERIFY",
        "`0` (off)",
        "`1` runs the GraphProgram IR verifier (`repro.check.ir`) on every "
        "train-step compile; findings abort the compile and training falls "
        "back to the eager tape. Compile-time only — replay cost is "
        "unchanged.",
    ),
    KnobDef(
        "REPRO_TRACE",
        "`1` (on)",
        "`0` disables the hierarchical span trace durable runs write to "
        "`trace.jsonl` (in-memory runs never trace).",
    ),
    KnobDef(
        "REPRO_PROFILE",
        "`0` (off)",
        "`1` wraps compiled train-step replay with per-kernel timers, "
        "surfaced as `train_kernel:*` stage times and spans.",
    ),
    KnobDef(
        "REPRO_SCALE",
        "`small`",
        "`paper` runs benches at full paper scale.",
    ),
    KnobDef(
        "REPRO_ENGINE_SOCKET",
        "unset (in-process)",
        "Unix-socket path of a live `repro serve` daemon; simulators "
        "attach transparently and fall back in-process when unreachable.",
    ),
    KnobDef(
        "REPRO_ENGINE_TENANT",
        "`client-<pid>`",
        "Tenant name used for the daemon's fair-share scheduling (one "
        "queue per tenant).",
    ),
    KnobDef(
        "REPRO_ENGINE_TIMEOUT",
        "unset (none)",
        "Per-batch deadline in seconds for daemon evaluations; expired "
        "jobs fail with a `timeout` error.",
    ),
    KnobDef(
        "REPRO_BENCH_POPULATION",
        "`64`",
        "Population size for the batched/incremental eval benches; the "
        "speedup gates only arm at 64+.",
    ),
    KnobDef(
        "REPRO_BENCH_BITS",
        "`32`",
        "Adder bitwidth for the incremental-eval bench.",
    ),
    KnobDef(
        "REPRO_BENCH_TRAIN_EPOCHS",
        "`8`",
        "Timed epochs for the VAE-training bench; the compiled-vs-eager "
        "speedup gate only arms at 4+.",
    ),
    KnobDef(
        "REPRO_BENCH_REPLICAS",
        "`4`",
        "Replica count K for the recorded-loop/stacked-replica bench; "
        "the stacked speedup gate compares K stacked vs K serial rounds.",
    ),
    KnobDef(
        "REPRO_BENCH_SERVE_GRAPHS",
        "`48`",
        "Workload size (graphs per client) for the daemon warm-attach "
        "bench.",
    ),
    KnobDef(
        "REPRO_BENCH_ASSERT_SPEEDUP",
        "`1` (gate armed)",
        "`0` records throughput ratios without enforcing the >= Nx "
        "speedup gates (noisy shared runners).",
    ),
    KnobDef(
        "REPRO_BENCH_ASSERT_OBS",
        "`0` (off)",
        "`1` additionally gates the *measured* on/off tracing wall-clock "
        "ratio, not just the deterministic off-path estimate.",
    ),
    KnobDef(
        "REPRO_BENCH_ASSERT_SERVE",
        "`0` (off)",
        "`1` gates the daemon warm-attach bench on cached-reattach "
        "synthesis counts, not just record shape.",
    ),
    KnobDef(
        "REPRO_BENCH_OUT",
        "unset (repo root)",
        "Directory the benches write their `BENCH_*.json` records into.",
    ),
)

#: name -> definition, in canonical (README table) order.
KNOBS: Dict[str, KnobDef] = {knob.name: knob for knob in _ALL}


def table_rows() -> List[str]:
    """The README table's data rows, one markdown row per knob."""
    return [
        f"| `{knob.name}` | {knob.default} | {knob.effect} |"
        for knob in _ALL
    ]


def render_env_table() -> str:
    """The full README env-knob table (header included)."""
    return "\n".join(
        ["| Variable | Default | Meaning |", "| --- | --- | --- |"]
        + table_rows()
    )
