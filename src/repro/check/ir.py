"""Level 2: the GraphProgram IR verifier.

:func:`verify_program` takes a compiled
:class:`~repro.nn.compile.GraphProgram` (or its retained
:class:`~repro.nn.compile.ProgramPlan`) and statically proves the four
properties the buffer-arena compiler relies on:

``ir-use-before-def``
    Every operand of a scheduled op is an input/param/constant leaf or
    an op scheduled strictly earlier; outputs and the loss are defined.
``ir-bad-schedule``
    The backward schedule is a topological order of the reversed
    gradient graph — every consumer contributing to a node's gradient
    is processed before the node itself, starting from the loss.
``ir-overwrite-live``
    No write lands in a buffer whose previous occupant is still live:
    each materialized root's storage token may only be reassigned after
    the previous occupant's last read (backward-needed, pinned and
    output values count as read at +infinity).  The one sanctioned
    exception is a declared fused link, where the consumer overwrites
    its producer's scratch *in the same instruction* that reads it.
``ir-illegal-fusion``
    Every declared fused link is legal: sole consumer, same shape,
    elementwise with an ``out=``-writing kernel, producer not a view,
    not pinned, not backward-needed, not an output.

Verification is pure data analysis over the plan — it never executes
the program, so wiring it under ``REPRO_IR_VERIFY=1`` adds compile-time
cost only and exactly zero replay overhead.

The verifier deliberately re-derives liveness from the schedule and
alias roots rather than trusting the compiler's ``last_use`` table:
the point is to catch the compiler lying to itself.
"""

from __future__ import annotations

from typing import Dict, List

from .findings import Finding

__all__ = ["IR_RULES", "verify_program"]

#: rule ids this verifier can emit (documented for the CLI/tests).
IR_RULES = (
    "ir-use-before-def",
    "ir-bad-schedule",
    "ir-overwrite-live",
    "ir-illegal-fusion",
)

#: pseudo-path findings are anchored to (the IR has no source file).
_PATH = "<GraphProgram>"

#: sentinel read position for values that must survive the whole replay.
_FOREVER = 1 << 60


def _finding(rule: str, message: str, symbol: str) -> Finding:
    return Finding(
        rule=rule,
        severity="error",
        path=_PATH,
        line=0,
        message=message,
        symbol=symbol,
    )


def verify_program(program) -> List[Finding]:
    """Statically check one compiled program; returns findings (empty = sound)."""
    plan = getattr(program, "plan", program)
    findings: List[Finding] = []
    sched = plan.sched
    pos: Dict[int, int] = {}

    # -- schedule well-formedness + def-before-use ---------------------
    for index, nid in enumerate(sched):
        if nid in pos:
            findings.append(
                _finding(
                    "ir-use-before-def",
                    f"node {nid} ({plan.ops.get(nid)}) scheduled twice",
                    f"node:{nid}",
                )
            )
            continue
        pos[nid] = index
        if plan.kinds.get(nid) != "op":
            findings.append(
                _finding(
                    "ir-use-before-def",
                    f"scheduled node {nid} is not an op "
                    f"(kind={plan.kinds.get(nid)!r})",
                    f"node:{nid}",
                )
            )
            continue
        for parent in plan.parents.get(nid, ()):
            kind = plan.kinds.get(parent)
            if kind == "op":
                if parent not in pos or pos[parent] >= index:
                    findings.append(
                        _finding(
                            "ir-use-before-def",
                            f"node {nid} ({plan.ops.get(nid)}) reads op "
                            f"{parent} ({plan.ops.get(parent)}) which is "
                            "not defined before it in the schedule",
                            f"node:{nid}",
                        )
                    )
            elif kind is None:
                findings.append(
                    _finding(
                        "ir-use-before-def",
                        f"node {nid} reads unknown node {parent}",
                        f"node:{nid}",
                    )
                )
    for name, nid in plan.outputs.items():
        if plan.kinds.get(nid) == "op" and nid not in pos:
            findings.append(
                _finding(
                    "ir-use-before-def",
                    f"output {name!r} (node {nid}) is never scheduled",
                    f"output:{name}",
                )
            )

    # -- backward schedule topological soundness -----------------------
    grad_pos = {nid: i for i, nid in enumerate(plan.grad_sched)}
    if plan.grad_sched and plan.grad_sched[0] != plan.loss_id:
        findings.append(
            _finding(
                "ir-bad-schedule",
                f"backward schedule starts at node {plan.grad_sched[0]} "
                f"instead of the loss (node {plan.loss_id})",
                "grad-start",
            )
        )
    for nid, index in grad_pos.items():
        if not plan.requires_grad.get(nid, False):
            findings.append(
                _finding(
                    "ir-bad-schedule",
                    f"backward schedule contains node {nid} "
                    f"({plan.ops.get(nid)}) which does not require grad",
                    f"grad-node:{nid}",
                )
            )
        for parent in plan.parents.get(nid, ()):
            if parent in grad_pos and grad_pos[parent] <= index:
                findings.append(
                    _finding(
                        "ir-bad-schedule",
                        f"gradient of node {parent} "
                        f"({plan.ops.get(parent)}) is processed before "
                        f"its consumer {nid} ({plan.ops.get(nid)}) has "
                        "contributed",
                        f"grad-node:{parent}",
                    )
                )

    # -- liveness: last read position per alias root -------------------
    last_read: Dict[int, int] = {}
    reader_at: Dict[int, Dict[int, int]] = {}  # root -> {pos: reader nid}
    for nid in sched:
        if nid not in pos:
            continue
        for parent in plan.parents.get(nid, ()):
            root = plan.root.get(parent, parent)
            last_read[root] = max(last_read.get(root, -1), pos[nid])
            reader_at.setdefault(root, {})[pos[nid]] = nid
    for nid in plan.needed_val | set(plan.outputs.values()) | {plan.loss_id}:
        root = plan.root.get(nid, nid)
        last_read[root] = _FOREVER
    for root in plan.pinned_roots:
        last_read[root] = _FOREVER

    # -- storage: no write to a slot whose value is still live ---------
    fused = set(plan.fused_links)
    writes_by_token: Dict[int, List[int]] = {}
    for nid in sched:
        if plan.root.get(nid) != nid:
            continue  # views write through their base's storage
        token = plan.buffer_token.get(nid)
        if token is None:
            continue  # unmaterialized (e.g. plan corruption; flagged below)
        writes_by_token.setdefault(token, []).append(nid)
    for token, writers in writes_by_token.items():
        writers.sort(key=lambda nid: pos.get(nid, -1))
        for previous, current in zip(writers, writers[1:]):
            write_pos = pos.get(current, -1)
            live_until = max(last_read.get(previous, -1), pos.get(previous, -1))
            if live_until < write_pos:
                continue  # previous occupant dead before this write
            if (
                (previous, current) in fused
                and last_read.get(previous, -1) == write_pos
                and reader_at.get(previous, {}).get(write_pos) == current
            ):
                continue  # sanctioned in-place overwrite by the fused consumer
            still = (
                "pinned/backward-needed"
                if last_read.get(previous, -1) >= _FOREVER
                else f"still read at schedule position {live_until}"
            )
            findings.append(
                _finding(
                    "ir-overwrite-live",
                    f"node {current} ({plan.ops.get(current)}) at position "
                    f"{write_pos} overwrites the buffer of node {previous} "
                    f"({plan.ops.get(previous)}), whose value is {still}",
                    f"node:{current}",
                )
            )

    # every scheduled non-view op must have materialized storage
    for nid in sched:
        if nid not in pos or plan.kinds.get(nid) != "op":
            continue
        root = plan.root.get(nid, nid)
        if plan.buffer_token.get(root) is None and plan.kinds.get(root) == "op":
            findings.append(
                _finding(
                    "ir-use-before-def",
                    f"node {nid} ({plan.ops.get(nid)}) has no backing "
                    f"buffer (root {root})",
                    f"node:{nid}",
                )
            )

    # -- fused-chain legality ------------------------------------------
    consumer_count: Dict[int, int] = {}
    for nid in sched:
        for parent in plan.parents.get(nid, ()):
            consumer_count[parent] = consumer_count.get(parent, 0) + 1
    for producer, consumer in plan.fused_links:
        symbol = f"fuse:{producer}->{consumer}"

        def illegal(reason: str) -> None:
            findings.append(
                _finding(
                    "ir-illegal-fusion",
                    f"fused link {producer} ({plan.ops.get(producer)}) -> "
                    f"{consumer} ({plan.ops.get(consumer)}) is illegal: "
                    f"{reason}",
                    symbol,
                )
            )

        if producer not in plan.parents.get(consumer, ()):
            illegal("consumer does not read the producer")
            continue
        if consumer_count.get(producer, 0) != 1:
            illegal(
                f"producer has {consumer_count.get(producer, 0)} consumers "
                "(in-place overwrite requires exactly one)"
            )
        if plan.shapes.get(producer) != plan.shapes.get(consumer):
            illegal(
                f"shape mismatch {plan.shapes.get(producer)} vs "
                f"{plan.shapes.get(consumer)}"
            )
        if not plan.elementwise.get(consumer, False):
            illegal("consumer is not elementwise")
        if not plan.has_kernel.get(consumer, False):
            illegal("consumer has no out=-writing kernel")
        if plan.view.get(producer, False):
            illegal("producer is a view")
        root = plan.root.get(producer, producer)
        if root in plan.pinned_roots or producer in plan.needed_val:
            illegal("producer's value is needed by the backward pass")
        if producer in plan.outputs.values():
            illegal("producer is a program output")
    return findings
