"""The lint engine: rule registry, file scanning, one-pass AST parsing.

Rules are data (:class:`RuleDef`: id, severity, fixer hint, docstring)
registered with :func:`register_rule`; running them is a fold over a
:class:`CheckContext` holding every scanned file parsed exactly once.
The default path set deliberately includes ``scripts/`` and
``benchmarks/`` — code outside ``src/`` carries the same invariants
(env knobs, telemetry names) and historically escaped all discipline.

The engine itself knows nothing about the project; everything
repo-specific lives in :mod:`repro.check.rules`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .findings import Finding

__all__ = [
    "CheckContext",
    "DEFAULT_PATHS",
    "RuleDef",
    "RULES",
    "SourceFile",
    "register_rule",
    "run_check",
]

#: directories scanned when no explicit paths are given, relative to the
#: repo root.  ``scripts``/``benchmarks`` ride along on purpose.
DEFAULT_PATHS = ("src/repro", "scripts", "benchmarks")


@dataclass
class SourceFile:
    """One scanned file: text + AST, parsed once and shared by rules."""

    path: str  # absolute
    rel: str  # repo-root-relative, posix separators
    text: str
    tree: Optional[ast.AST]
    parse_error: Optional[str] = None

    _constants: Optional[Dict[str, str]] = None

    def module_constants(self) -> Dict[str, str]:
        """Module-level ``NAME = "literal"`` string assignments.

        Env reads routinely go through named constants
        (``_ENV_WORKERS = "REPRO_ENGINE_WORKERS"``); rules resolve those
        through this map instead of demanding inline literals.
        """
        if self._constants is None:
            consts: Dict[str, str] = {}
            if self.tree is not None:
                for node in self.tree.body:  # type: ignore[attr-defined]
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target = node.targets[0]
                        if (
                            isinstance(target, ast.Name)
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, str)
                        ):
                            consts[target.id] = node.value.value
            self._constants = consts
        return self._constants


@dataclass
class CheckContext:
    """Everything a rule may look at."""

    root: str
    files: List[SourceFile]
    #: True when scanning the whole default path set — whole-tree rules
    #: (stale registry entries, README drift) only fire then, so running
    #: the checker on a fixture subtree never produces spurious findings.
    full_tree: bool = True

    def find(self, rel: str) -> Optional[SourceFile]:
        for source in self.files:
            if source.rel == rel:
                return source
        return None

    def read_root_file(self, name: str) -> Optional[str]:
        path = os.path.join(self.root, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None


@dataclass(frozen=True)
class RuleDef:
    """One analyzer, as data: identity + severity + how to fix it."""

    id: str
    severity: str
    hint: str
    description: str
    func: Callable[[CheckContext], Iterator[Finding]]


#: rule id -> definition, in registration order.
RULES: Dict[str, RuleDef] = {}


def register_rule(rule_id: str, severity: str, hint: str):
    """Class the decorated generator as the analyzer for ``rule_id``.

    The generator receives a :class:`CheckContext` and yields
    :class:`Finding` objects; ``rule``/``severity``/``hint`` fields are
    stamped by the engine so rules only fill in location and message.
    """

    def decorate(func: Callable[[CheckContext], Iterator[Finding]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = RuleDef(
            id=rule_id,
            severity=severity,
            hint=hint,
            description=(func.__doc__ or "").strip().splitlines()[0]
            if func.__doc__
            else "",
            func=func,
        )
        return func

    return decorate


def _iter_python_files(base: str) -> Iterator[str]:
    if os.path.isfile(base):
        if base.endswith(".py"):
            yield base
        return
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def load_context(
    root: str, paths: Optional[Sequence[str]] = None
) -> CheckContext:
    """Scan + parse the requested tree into a :class:`CheckContext`."""
    root = os.path.abspath(root)
    full_tree = paths is None
    bases = [
        os.path.join(root, p) if not os.path.isabs(p) else p
        for p in (DEFAULT_PATHS if paths is None else paths)
    ]
    files: List[SourceFile] = []
    for base in bases:
        if not os.path.exists(base):
            continue
        for path in _iter_python_files(base):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            try:
                tree: Optional[ast.AST] = ast.parse(text, filename=rel)
                error = None
            except SyntaxError as exc:
                tree, error = None, f"{exc.msg} (line {exc.lineno})"
            files.append(SourceFile(path, rel, text, tree, error))
    return CheckContext(root=root, files=files, full_tree=full_tree)


def run_check(
    root: str,
    paths: Optional[Sequence[str]] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run (selected) rules over the tree; returns findings in file order."""
    # rules live in a sibling module; importing registers them.
    from . import rules as _rules  # noqa: F401

    context = load_context(root, paths)
    findings: List[Finding] = []
    for source in context.files:
        if source.parse_error is not None:
            findings.append(
                Finding(
                    rule="check-parse-error",
                    severity="error",
                    path=source.rel,
                    line=1,
                    message=f"cannot parse: {source.parse_error}",
                    symbol=source.rel,
                )
            )
    selected = (
        list(RULES.values())
        if rule_ids is None
        else [RULES[rid] for rid in rule_ids]
    )
    for rule in selected:
        for found in rule.func(context):
            findings.append(
                Finding(
                    rule=rule.id,
                    severity=found.severity or rule.severity,
                    path=found.path,
                    line=found.line,
                    message=found.message,
                    hint=found.hint or rule.hint,
                    symbol=found.symbol,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
