"""The ``python -m repro check`` verb (dispatched from repro.api.cli).

Exit status: 0 when clean modulo the committed baseline; 1 when any
non-baselined *error* (or, with ``--strict``, any non-baselined finding
at all, any stale baseline entry, or any suppressed-but-unjustifiable
state) remains; 2 for usage problems (unreadable baseline, bad root).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .engine import run_check
from .findings import BASELINE_NAME, Baseline, render_json, render_text
from .knobs import render_env_table

__all__ = ["add_check_parser", "run_check_command"]


def add_check_parser(sub) -> None:
    """Register the ``check`` subcommand on an argparse subparsers object."""
    check_p = sub.add_parser(
        "check",
        help="run the project static analyzer (lint rules + IR verifier "
        "registries)",
    )
    check_p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: src/repro, scripts, "
        "benchmarks — whole-tree rules like README drift only run "
        "with the default set)",
    )
    check_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings and stale baseline entries too",
    )
    check_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact shape)",
    )
    check_p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: {BASELINE_NAME} at the repo root; "
        "'none' disables baselining)",
    )
    check_p.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repo root to scan (default: the current directory)",
    )
    check_p.add_argument(
        "--render-env-table",
        action="store_true",
        help="print the canonical README env-knob table and exit",
    )


def run_check_command(args: argparse.Namespace) -> int:
    if args.render_env_table:
        print(render_env_table())
        return 0

    root = os.path.abspath(args.root or os.getcwd())
    if not os.path.isdir(os.path.join(root, "src", "repro")):
        print(
            f"error: {root} does not look like the repo root "
            "(no src/repro); use --root",
            file=sys.stderr,
        )
        return 2

    paths: Optional[List[str]] = list(args.paths) or None
    findings = run_check(root, paths=paths)

    baseline = Baseline()
    if args.baseline != "none":
        baseline_path = args.baseline or os.path.join(root, BASELINE_NAME)
        if os.path.exists(baseline_path):
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, KeyError) as error:
                print(f"error: bad baseline {baseline_path}: {error}", file=sys.stderr)
                return 2
        elif args.baseline is not None:
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
    active, suppressed, stale = baseline.split(findings)
    # stale entries only mean something against the full default scan
    if paths is not None:
        stale = []

    render = render_json if args.format == "json" else render_text
    print(render(active, suppressed, stale))

    errors = [f for f in active if f.severity == "error"]
    if errors or (args.strict and (active or stale)):
        return 1
    return 0
