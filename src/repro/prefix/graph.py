"""Prefix-graph representation of parallel prefix circuits.

Following the paper (Sec. 3 and 5.1) and PrefixRL, an ``N``-bit parallel
prefix circuit is represented as a lower-triangular ``N x N`` boolean grid.
Cell ``(i, j)`` with ``i >= j`` set to True means the circuit computes the
span ``[i:j]`` — the combined generate/propagate (or XOR, for gray-to-binary
conversion) of input bits ``j..i``.

Structural invariants of a *legal* graph:

* every diagonal cell ``(i, i)`` is present (the inputs themselves),
* every output cell ``(i, 0)`` is present (the circuit must produce all
  prefix outputs),
* for every non-diagonal node ``(i, j)``, its **lower parent** exists: with
  ``k`` the smallest set column index greater than ``j`` in row ``i`` (the
  **upper parent** is ``(i, k)``), the cell ``(k - 1, j)`` must be present.

The decomposition ``span[i:j] = span[i:k] . span[k-1:j]`` with the *nearest*
upper parent is the same convention PrefixRL uses, which makes each legal
grid denote exactly one circuit.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = ["PrefixGraph", "Span"]

Span = Tuple[int, int]
T = TypeVar("T")


class PrefixGraph:
    """An immutable-by-convention prefix graph over an ``N x N`` grid.

    Parameters
    ----------
    grid:
        Boolean array of shape (n, n).  Entries above the diagonal are
        ignored and forced to False; the diagonal and output column are
        forced to True (they are structurally required, see module docs).
    validate:
        If True (default), raise ``ValueError`` when the grid is not legal.
        Pass False to hold a raw (possibly illegal) grid, e.g. before
        legalization.
    """

    __slots__ = ("grid", "n", "_key")

    def __init__(self, grid: np.ndarray, validate: bool = True):
        grid = np.asarray(grid)
        if grid.ndim != 2 or grid.shape[0] != grid.shape[1]:
            raise ValueError(f"grid must be square, got shape {grid.shape}")
        n = grid.shape[0]
        if n < 1:
            raise ValueError("grid must be at least 1x1")
        clean = np.zeros((n, n), dtype=bool)
        tri = np.tril(np.ones((n, n), dtype=bool))
        clean[tri] = grid.astype(bool)[tri]
        np.fill_diagonal(clean, True)
        clean[:, 0] = True
        self.grid: np.ndarray = clean
        self.n: int = n
        self._key: Optional[bytes] = None
        if validate and not self.is_legal():
            raise ValueError("grid is not a legal prefix graph; legalize() it first")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[Span]:
        """All present spans (i, j), row-major."""
        rows, cols = np.nonzero(self.grid)
        return list(zip(rows.tolist(), cols.tolist()))

    def internal_nodes(self) -> List[Span]:
        """Present spans excluding the diagonal (the actual operators)."""
        return [(i, j) for i, j in self.nodes() if i != j]

    def node_count(self) -> int:
        """Number of prefix operators (non-diagonal present cells)."""
        return int(self.grid.sum()) - self.n

    def upper_parent(self, i: int, j: int) -> Span:
        """The nearest present span (i, k) with k > j in row ``i``."""
        if i == j:
            raise ValueError(f"({i},{i}) is an input, it has no parents")
        row = self.grid[i]
        for k in range(j + 1, i + 1):
            if row[k]:
                return (i, k)
        raise AssertionError("diagonal is always present; unreachable")

    def lower_parent(self, i: int, j: int) -> Span:
        """The span (k-1, j) completing the decomposition of (i, j)."""
        _, k = self.upper_parent(i, j)
        return (k - 1, j)

    def parents(self, i: int, j: int) -> Tuple[Span, Span]:
        """(upper, lower) parents of a non-diagonal node."""
        upper = self.upper_parent(i, j)
        return upper, (upper[1] - 1, j)

    def is_legal(self) -> bool:
        """Check the lower-parent invariant for every present node."""
        for i in range(1, self.n):
            row = self.grid[i]
            present = np.nonzero(row[: i + 1])[0]
            # present is sorted ascending; consecutive pairs (j, k) are
            # (node, its upper parent's column).
            for j, k in zip(present[:-1], present[1:]):
                if not self.grid[k - 1, j]:
                    return False
        return True

    def levels(self) -> Dict[Span, int]:
        """Logic level of each present span (inputs at level 0)."""
        level: Dict[Span, int] = {}
        for i in range(self.n):
            level[(i, i)] = 0
        for i in range(1, self.n):
            present = np.nonzero(self.grid[i][: i + 1])[0]
            # Process right-to-left so the upper parent (same row, larger j)
            # is already resolved.
            for idx in range(len(present) - 2, -1, -1):
                j, k = int(present[idx]), int(present[idx + 1])
                upper = level[(i, k)]
                lower = level.get((k - 1, j))
                if lower is None:
                    raise ValueError(f"illegal graph: missing lower parent ({k-1},{j})")
                level[(i, j)] = max(upper, lower) + 1
        return level

    def depth(self) -> int:
        """Maximum logic level over all outputs (critical logical depth)."""
        return max(self.levels().values())

    def fanouts(self) -> Dict[Span, int]:
        """Number of child nodes consuming each span's result."""
        fanout: Dict[Span, int] = {node: 0 for node in self.nodes()}
        for i, j in self.internal_nodes():
            upper, lower = self.parents(i, j)
            fanout[upper] += 1
            fanout[lower] += 1
        return fanout

    def topological_order(self) -> List[Span]:
        """Present spans sorted by level then position (evaluation order)."""
        level = self.levels()
        return sorted(level, key=lambda node: (level[node], node))

    def evaluate(
        self,
        leaf_values: Sequence[T],
        combine: Callable[[T, T], T],
    ) -> Dict[Span, T]:
        """Evaluate the prefix computation bottom-up.

        ``leaf_values[i]`` is the value of span (i, i); ``combine(upper,
        lower)`` merges span [i:k] with span [k-1:j].  Returns values for
        every present span.  This powers functional verification for both
        adders (g/p pairs) and gray-to-binary converters (XOR).
        """
        if len(leaf_values) != self.n:
            raise ValueError(f"need {self.n} leaf values, got {len(leaf_values)}")
        values: Dict[Span, T] = {(i, i): leaf_values[i] for i in range(self.n)}
        for node in self.topological_order():
            if node[0] == node[1]:
                continue
            upper, lower = self.parents(*node)
            values[node] = combine(values[upper], values[lower])
        return values

    # ------------------------------------------------------------------
    # Identity / copies
    # ------------------------------------------------------------------
    def key(self) -> bytes:
        """Canonical hashable identity (packed grid bits)."""
        if self._key is None:
            self._key = np.packbits(self.grid).tobytes()
        return self._key

    def cone_keys(self) -> Dict[Span, bytes]:
        """Merkle-style structural digest of every span's fanin cone.

        Stable under node relabeling (see :mod:`repro.prefix.canonical`):
        equal keys mean equal sub-circuits up to input renaming, the
        similarity primitive of delta-aware incremental synthesis.
        """
        from .canonical import cone_keys

        return cone_keys(self)

    def copy(self) -> "PrefixGraph":
        return PrefixGraph(self.grid.copy(), validate=False)

    def with_node(self, i: int, j: int, present: bool) -> np.ndarray:
        """Return a raw grid copy with cell (i, j) toggled to ``present``.

        The result is *not* legalized; callers (GA mutation, the RL
        environment) pass it through :func:`repro.prefix.legalize.legalize`.
        """
        if not (0 <= j <= i < self.n):
            raise IndexError(f"cell ({i},{j}) outside lower triangle of n={self.n}")
        grid = self.grid.copy()
        grid[i, j] = present
        return grid

    def __eq__(self, other) -> bool:
        return isinstance(other, PrefixGraph) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"PrefixGraph(n={self.n}, nodes={self.node_count()}, depth={self.depth()})"
