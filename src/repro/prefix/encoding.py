"""Encodings of prefix graphs for the learned models and the GA.

Two views of the same circuit:

* **Grid tensor** — the full ``N x N`` float matrix the paper's CNN VAE
  autoencodes (Sec. 5.1, "N-bit prefix graphs are represented with an
  N x N matrix as in [PrefixRL]").
* **Free bitvector** — only the cells that are actual degrees of freedom:
  strictly-lower-triangle cells excluding the output column (column 0) and
  the diagonal, both of which are structurally forced.  This is the
  representation the genetic algorithm mutates ("directly optimizing a
  bitvector representation of the circuit", Sec. 5.2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .graph import PrefixGraph
from .legalize import legalize

__all__ = [
    "free_cells",
    "num_free_cells",
    "graph_to_bits",
    "bits_to_graph",
    "graph_to_grid",
    "grid_to_graph",
    "random_graph",
    "unique_random_graphs",
]


def free_cells(n: int) -> List[Tuple[int, int]]:
    """Cells (i, j) with 0 < j < i: the mutable positions of an n-bit grid."""
    return [(i, j) for i in range(2, n) for j in range(1, i)]


def num_free_cells(n: int) -> int:
    """(n-1)(n-2)/2 — the GA's chromosome length."""
    return (n - 1) * (n - 2) // 2


def graph_to_bits(graph: PrefixGraph) -> np.ndarray:
    """Extract the free-cell bitvector (bool array) from a graph."""
    cells = free_cells(graph.n)
    return np.array([graph.grid[i, j] for i, j in cells], dtype=bool)


def bits_to_graph(bits: np.ndarray, n: int) -> PrefixGraph:
    """Legalize a free-cell bitvector into a :class:`PrefixGraph`.

    Legalization may switch *on* cells that are 0 in ``bits`` (missing
    parents are inserted), so this map is surjective onto legal graphs but
    not injective.
    """
    bits = np.asarray(bits, dtype=bool).reshape(-1)
    cells = free_cells(n)
    if bits.shape[0] != len(cells):
        raise ValueError(f"expected {len(cells)} bits for n={n}, got {bits.shape[0]}")
    grid = np.zeros((n, n), dtype=bool)
    for (i, j), bit in zip(cells, bits):
        grid[i, j] = bit
    return legalize(grid)


def graph_to_grid(graph: PrefixGraph) -> np.ndarray:
    """Full N x N float32-compatible (0/1) matrix for the VAE."""
    return graph.grid.astype(np.float64)


def grid_to_graph(grid: np.ndarray, threshold: float = 0.5) -> PrefixGraph:
    """Threshold a real-valued decoder grid and legalize it."""
    return legalize(np.asarray(grid) > threshold)


def random_graph(n: int, rng: np.random.Generator, density: float = 0.2) -> PrefixGraph:
    """A random legal graph: Bernoulli(density) free cells, legalized.

    Used to seed initial datasets and as the reference distribution in
    tests.  ``density`` controls how far from ripple-carry the samples sit.
    """
    bits = rng.random(num_free_cells(n)) < density
    return bits_to_graph(bits, n)


def unique_random_graphs(
    n: int,
    count: int,
    rng: np.random.Generator,
    density_low: float = 0.1,
    density_high: float = 0.6,
) -> list:
    """``count`` random legal graphs with pairwise-distinct canonical keys.

    Rejection-samples :func:`random_graph` at densities drawn uniformly
    from [density_low, density_high] until ``count`` distinct circuits
    (by :meth:`~repro.prefix.graph.PrefixGraph.key`) are collected — the
    workload generator used by the engine tests and throughput benches,
    where batches must contain no duplicate synthesis work.  Raises
    ``ValueError`` instead of spinning forever when the space is too
    small (tiny ``n``, e.g. n=2 has exactly one legal graph).
    """
    graphs, seen = [], set()
    budget = max(1000, 200 * count)
    attempts = 0
    while len(graphs) < count:
        if attempts >= budget:
            raise ValueError(
                f"could not sample {count} distinct legal graphs for n={n} "
                f"in {budget} attempts (found {len(graphs)}); the design "
                f"space is likely smaller than count"
            )
        attempts += 1
        density = density_low + (density_high - density_low) * rng.random()
        graph = random_graph(n, rng, density)
        if graph.key() not in seen:
            seen.add(graph.key())
            graphs.append(graph)
    return graphs
