"""Legalization of raw prefix-graph grids (paper Sec. 5.1).

CircuitVAE's decoder emits an arbitrary Bernoulli grid; the paper legalizes
it "by inserting missing parents of existing nodes" before synthesis, and
treats legalization as part of the objective function so the cost predictor
learns legalization-equivalent values.  The same routine backs the GA's
mutation operator and the RL environment's action application.

The algorithm processes rows from the most significant downward.  For a
node (i, j), its upper parent (i, k) is within row ``i`` by construction
(``k`` = next present column), and its lower parent (k-1, j) lives in a
*lower-index* row, which has not been scanned yet — so each insertion is
seen later and recursively completed.  A single top-down sweep therefore
yields a legal graph.
"""

from __future__ import annotations

import numpy as np

from .graph import PrefixGraph

__all__ = ["legalize", "legalize_grid", "prune_redundant"]


def legalize_grid(grid: np.ndarray) -> np.ndarray:
    """Return a legal boolean grid containing ``grid``'s nodes.

    Forces the diagonal and output column, then inserts missing lower
    parents top-down.  The output satisfies ``PrefixGraph.is_legal``.
    """
    grid = np.asarray(grid)
    n = grid.shape[0]
    if grid.ndim != 2 or grid.shape[1] != n:
        raise ValueError(f"grid must be square, got {grid.shape}")
    out = np.zeros((n, n), dtype=bool)
    tri = np.tril(np.ones((n, n), dtype=bool))
    out[tri] = grid.astype(bool)[tri]
    np.fill_diagonal(out, True)
    out[:, 0] = True
    for i in range(n - 1, 0, -1):
        present = np.nonzero(out[i][: i + 1])[0]
        for j, k in zip(present[:-1], present[1:]):
            out[k - 1, j] = True
    return out


def legalize(grid: np.ndarray) -> PrefixGraph:
    """Legalize a raw grid and wrap it as a :class:`PrefixGraph`."""
    return PrefixGraph(legalize_grid(grid), validate=False)


def prune_redundant(graph: PrefixGraph) -> PrefixGraph:
    """Remove internal nodes that no output transitively depends on.

    Legal graphs can contain dead spans (present but unused by any column-0
    output).  Synthesis would waste area on them; this pass computes the
    transitive fan-in of the outputs and drops everything else.  The result
    is still legal: parents of needed nodes are needed.
    """
    needed = set()
    stack = [(i, 0) for i in range(graph.n)]
    while stack:
        node = stack.pop()
        if node in needed:
            continue
        needed.add(node)
        if node[0] != node[1]:
            upper, lower = graph.parents(*node)
            stack.append(upper)
            stack.append(lower)
    grid = np.zeros_like(graph.grid)
    for i, j in needed:
        grid[i, j] = True
    pruned = PrefixGraph(grid, validate=False)
    if not pruned.is_legal():  # pragma: no cover - defensive
        raise AssertionError("pruning broke legality")
    return pruned
