"""Persistence of prefix graphs and design collections.

Search runs produce circuits a user wants to keep (tape-out candidates,
regression baselines); these helpers serialize graphs compactly and
re-validate on load, so a corrupted or hand-edited file can never smuggle
an illegal circuit back into a flow.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import PrefixGraph

__all__ = ["graph_to_dict", "graph_from_dict", "save_designs", "load_designs"]

_FORMAT_VERSION = 1


def graph_to_dict(graph: PrefixGraph) -> Dict:
    """JSON-serializable form: width + list of non-forced node cells."""
    nodes = [
        [int(i), int(j)]
        for i, j in graph.internal_nodes()
        if j != 0  # output column is structurally forced; omit for compactness
    ]
    return {"version": _FORMAT_VERSION, "n": graph.n, "nodes": nodes}


def graph_from_dict(payload: Dict) -> PrefixGraph:
    """Rebuild and *validate* a graph from :func:`graph_to_dict` output."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported design format version {payload.get('version')!r}")
    n = int(payload["n"])
    grid = np.zeros((n, n), dtype=bool)
    for i, j in payload["nodes"]:
        if not (0 <= j <= i < n):
            raise ValueError(f"node ({i},{j}) outside the lower triangle of n={n}")
        grid[i, j] = True
    graph = PrefixGraph(grid, validate=False)
    if not graph.is_legal():
        raise ValueError("stored design is not a legal prefix graph")
    return graph


def save_designs(
    path: str,
    designs: Sequence[Tuple[PrefixGraph, Dict]],
) -> None:
    """Write [(graph, metadata), ...] as a JSON design library."""
    payload = {
        "version": _FORMAT_VERSION,
        "designs": [
            {"graph": graph_to_dict(graph), "meta": dict(meta)}
            for graph, meta in designs
        ],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def load_designs(path: str) -> List[Tuple[PrefixGraph, Dict]]:
    """Read a design library; every graph is re-validated."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported library version {payload.get('version')!r}")
    return [
        (graph_from_dict(entry["graph"]), entry.get("meta", {}))
        for entry in payload["designs"]
    ]
