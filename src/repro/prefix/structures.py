"""Classical parallel-prefix structures.

These are the human-designed adders the paper compares against (Sec. 3 and
Fig. 6): ripple-carry (minimum area, maximum depth), Sklansky (minimum
depth, high fanout), Kogge-Stone (minimum depth and fanout, maximum
wiring/area), Brent-Kung (near-minimum area, ~2x depth), and the sparse
hybrids Han-Carlson and Ladner-Fischer.  Sklansky is also CircuitVAE's
search seed (Fig. 1) and one of the ablation initializations (Fig. 4).

All constructors return legal :class:`~repro.prefix.graph.PrefixGraph`
objects; legality and functional correctness are asserted in the test
suite for every width.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from .graph import PrefixGraph

__all__ = [
    "ripple_carry",
    "sklansky",
    "kogge_stone",
    "brent_kung",
    "han_carlson",
    "ladner_fischer",
    "STRUCTURES",
    "make_structure",
]


def _empty(n: int) -> np.ndarray:
    if n < 1:
        raise ValueError("bitwidth must be >= 1")
    grid = np.zeros((n, n), dtype=bool)
    np.fill_diagonal(grid, True)
    grid[:, 0] = True  # output column: all prefixes are required
    return grid


def ripple_carry(n: int) -> PrefixGraph:
    """Schoolbook carry chain: span (i, 0) built from (i-1, 0) serially.

    Minimum possible node count (n - 1 operators) and maximum depth (n - 1).
    """
    return PrefixGraph(_empty(n), validate=False)


def sklansky(n: int) -> PrefixGraph:
    """Sklansky (1960) conditional-sum / recursive-doubling structure.

    Depth ``ceil(log2 n)`` with minimal node count among minimum-depth
    structures, at the price of exponentially growing fanout.
    """
    grid = _empty(n)
    t = 1
    while (1 << (t - 1)) < n:
        for i in range(n):
            if (i >> (t - 1)) & 1:
                j = (i >> t) << t
                grid[i, j] = True
        t += 1
    return PrefixGraph(grid, validate=False)


def kogge_stone(n: int) -> PrefixGraph:
    """Kogge-Stone (1973): minimum depth and unit fanout, maximum nodes."""
    grid = _empty(n)
    for i in range(1, n):
        t = 1
        while True:
            j = i - (1 << t) + 1
            if j <= 0:
                grid[i, 0] = True
                break
            grid[i, j] = True
            t += 1
    return PrefixGraph(grid, validate=False)


def brent_kung(n: int) -> PrefixGraph:
    """Brent-Kung (1982): up-sweep/down-sweep tree, ~2 log2 n depth, ~2n nodes."""
    grid = _empty(n)
    # Up-sweep: combine blocks of doubling size; block roots at i = m*2^t - 1.
    t = 1
    while (1 << t) <= n:
        step = 1 << t
        for i in range(step - 1, n, step):
            grid[i, i - step + 1] = True
        t += 1
    # Down-sweep: fill in prefixes at block midpoints, largest blocks first.
    while t >= 1:
        step = 1 << t
        half = 1 << (t - 1)
        for i in range(step + half - 1, n, step):
            grid[i, 0] = True
        t -= 1
    return PrefixGraph(grid, validate=False)


def _sparse_hybrid(n: int, core: Callable[[int], PrefixGraph]) -> PrefixGraph:
    """Sparsity-2 hybrid: pair bits, run ``core`` over odd positions, fix evens.

    This is the construction behind Han-Carlson (Kogge-Stone core) and the
    sparse Ladner-Fischer variant (Sklansky core).
    """
    grid = _empty(n)
    m = n // 2  # number of odd positions 1, 3, ..., 2m-1
    if m >= 1:
        reduced = core(m).grid
        for r in range(m):
            for s in range(r + 1):
                if reduced[r, s]:
                    # Reduced span [r:s] covers original bits [2r+1 : 2s].
                    grid[2 * r + 1, 2 * s] = True
    # Even fixup: (i, 0) = (i, i) . (i-1, 0).
    for i in range(2, n, 2):
        grid[i, 0] = True
    return PrefixGraph(grid, validate=False)


def han_carlson(n: int) -> PrefixGraph:
    """Han-Carlson: Kogge-Stone over odd bits + one fixup level."""
    return _sparse_hybrid(n, kogge_stone)


def ladner_fischer(n: int) -> PrefixGraph:
    """Sparse Ladner-Fischer: Sklansky over odd bits + one fixup level."""
    return _sparse_hybrid(n, sklansky)


STRUCTURES: Dict[str, Callable[[int], PrefixGraph]] = {
    "ripple": ripple_carry,
    "sklansky": sklansky,
    "kogge_stone": kogge_stone,
    "brent_kung": brent_kung,
    "han_carlson": han_carlson,
    "ladner_fischer": ladner_fischer,
}


def make_structure(name: str, n: int) -> PrefixGraph:
    """Build a named classical structure at bitwidth ``n``."""
    try:
        builder = STRUCTURES[name]
    except KeyError:
        raise KeyError(f"unknown structure {name!r}; choose from {sorted(STRUCTURES)}")
    return builder(n)
