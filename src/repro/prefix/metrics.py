"""Structural metrics over prefix graphs.

Used by Fig. 8's structure comparison (best adder vs best gray-to-binary
converter), by the analytics in the benchmark harnesses, and as features in
tests' sanity assertions (e.g. Kogge-Stone has unit fanout, Sklansky has
fanout ~ n/2).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .graph import PrefixGraph

__all__ = [
    "node_count",
    "depth",
    "max_fanout",
    "fanout_histogram",
    "hamming_distance",
    "structure_summary",
]


def node_count(graph: PrefixGraph) -> int:
    """Number of prefix operators (excludes the diagonal inputs)."""
    return graph.node_count()


def depth(graph: PrefixGraph) -> int:
    """Logic depth in operator levels."""
    return graph.depth()


def max_fanout(graph: PrefixGraph) -> int:
    """Largest number of children any span feeds."""
    return max(graph.fanouts().values())


def fanout_histogram(graph: PrefixGraph) -> Dict[int, int]:
    """Histogram {fanout: count} over spans."""
    hist: Dict[int, int] = {}
    for fo in graph.fanouts().values():
        hist[fo] = hist.get(fo, 0) + 1
    return dict(sorted(hist.items()))


def hamming_distance(a: PrefixGraph, b: PrefixGraph) -> int:
    """Number of grid cells that differ between two same-width graphs."""
    if a.n != b.n:
        raise ValueError(f"width mismatch: {a.n} vs {b.n}")
    return int(np.count_nonzero(a.grid != b.grid))


def structure_summary(graph: PrefixGraph) -> Dict[str, float]:
    """Compact structural fingerprint (used by the Fig. 8 bench)."""
    fanouts = list(graph.fanouts().values())
    return {
        "n": graph.n,
        "nodes": graph.node_count(),
        "depth": graph.depth(),
        "max_fanout": max(fanouts),
        "mean_fanout": float(np.mean(fanouts)),
    }
