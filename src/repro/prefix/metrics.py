"""Structural metrics over prefix graphs — scalar and stacked-batch forms.

Used by Fig. 8's structure comparison (best adder vs best gray-to-binary
converter), by the analytics in the benchmark harnesses, and as features in
tests' sanity assertions (e.g. Kogge-Stone has unit fanout, Sklansky has
fanout ~ n/2).

The ``stacked_grids`` / ``batch_*`` helpers lift the per-graph metrics to
whole populations: one ``(B, n, n)`` boolean array, iterated cell-by-cell
with numpy doing the batch dimension.  :mod:`repro.synth.batched` builds
its per-population topological orders from ``batch_levels`` instead of B
separate ``PrefixGraph.levels()`` dictionaries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .graph import PrefixGraph

__all__ = [
    "node_count",
    "depth",
    "max_fanout",
    "fanout_histogram",
    "hamming_distance",
    "structure_summary",
    "stacked_grids",
    "batch_levels",
    "batch_depths",
    "batch_node_counts",
]


def node_count(graph: PrefixGraph) -> int:
    """Number of prefix operators (excludes the diagonal inputs)."""
    return graph.node_count()


def depth(graph: PrefixGraph) -> int:
    """Logic depth in operator levels."""
    return graph.depth()


def max_fanout(graph: PrefixGraph) -> int:
    """Largest number of children any span feeds."""
    return max(graph.fanouts().values())


def fanout_histogram(graph: PrefixGraph) -> Dict[int, int]:
    """Histogram {fanout: count} over spans."""
    hist: Dict[int, int] = {}
    for fo in graph.fanouts().values():
        hist[fo] = hist.get(fo, 0) + 1
    return dict(sorted(hist.items()))


def hamming_distance(a: PrefixGraph, b: PrefixGraph) -> int:
    """Number of grid cells that differ between two same-width graphs."""
    if a.n != b.n:
        raise ValueError(f"width mismatch: {a.n} vs {b.n}")
    return int(np.count_nonzero(a.grid != b.grid))


def stacked_grids(graphs: Sequence[PrefixGraph]) -> np.ndarray:
    """Stack same-width graphs into one ``(B, n, n)`` boolean array."""
    if not graphs:
        raise ValueError("need at least one graph to stack")
    n = graphs[0].n
    for graph in graphs:
        if graph.n != n:
            raise ValueError(f"width mismatch in batch: {graph.n} vs {n}")
    return np.stack([graph.grid for graph in graphs])


def batch_levels(grids: np.ndarray) -> np.ndarray:
    """Logic level of every present span, for a whole stack at once.

    ``grids`` is a legal ``(B, n, n)`` stack; the result is ``(B, n, n)``
    int64 with absent cells at 0.  Equals ``PrefixGraph.levels()`` entry
    for entry: level(i, j) = max(level(i, k), level(k-1, j)) + 1 with
    ``k`` the nearest present column right of ``j`` — resolved by one
    right-to-left sweep per row, vectorized over the batch dimension.
    """
    grids = np.asarray(grids, dtype=bool)
    if grids.ndim != 3 or grids.shape[1] != grids.shape[2]:
        raise ValueError(f"expected a (B, n, n) stack, got shape {grids.shape}")
    B, n, _ = grids.shape
    rows = np.arange(B)
    levels = np.zeros((B, n, n), dtype=np.int64)
    for i in range(1, n):
        nearest = np.full(B, i)  # diagonal (i, i) is always present
        for j in range(i - 1, -1, -1):
            present = grids[:, i, j]
            upper = levels[rows, i, nearest]
            lower = levels[rows, nearest - 1, j]
            levels[:, i, j] = np.where(present, np.maximum(upper, lower) + 1, 0)
            nearest = np.where(present, j, nearest)
    return levels


def batch_depths(grids: np.ndarray) -> np.ndarray:
    """Critical logical depth per graph in a stack (``(B,)`` int64)."""
    return batch_levels(grids).max(axis=(1, 2))


def batch_node_counts(grids: np.ndarray) -> np.ndarray:
    """Prefix-operator count per graph in a stack (``(B,)`` int64)."""
    grids = np.asarray(grids, dtype=bool)
    return grids.sum(axis=(1, 2)) - grids.shape[1]


def structure_summary(graph: PrefixGraph) -> Dict[str, float]:
    """Compact structural fingerprint (used by the Fig. 8 bench)."""
    fanouts = list(graph.fanouts().values())
    return {
        "n": graph.n,
        "nodes": graph.node_count(),
        "depth": graph.depth(),
        "max_fanout": max(fanouts),
        "mean_fanout": float(np.mean(fanouts)),
    }
