"""``repro.prefix`` — parallel prefix-graph circuit representation.

The discrete search space X of the paper: N x N grid encodings of prefix
circuits, legalization, classical structures, functional verification, and
structural metrics.
"""

from .canonical import cone_key, cone_keys, shared_cone_stats, signature
from .encoding import (
    bits_to_graph,
    free_cells,
    graph_to_bits,
    graph_to_grid,
    grid_to_graph,
    num_free_cells,
    random_graph,
    unique_random_graphs,
)
from .graph import PrefixGraph, Span
from .io import graph_from_dict, graph_to_dict, load_designs, save_designs
from .legalize import legalize, legalize_grid, prune_redundant
from .metrics import (
    batch_depths,
    batch_levels,
    batch_node_counts,
    depth,
    fanout_histogram,
    hamming_distance,
    max_fanout,
    node_count,
    stacked_grids,
    structure_summary,
)
from .structures import (
    STRUCTURES,
    brent_kung,
    han_carlson,
    kogge_stone,
    ladner_fischer,
    make_structure,
    ripple_carry,
    sklansky,
)
from .verify import (
    check_adder,
    check_gray_to_binary,
    check_leading_zeros,
    gray_encode,
    simulate_adder,
    simulate_gray_to_binary,
    simulate_leading_zeros,
)

__all__ = [
    "PrefixGraph",
    "Span",
    "cone_key",
    "cone_keys",
    "shared_cone_stats",
    "signature",
    "graph_to_dict",
    "graph_from_dict",
    "save_designs",
    "load_designs",
    "legalize",
    "legalize_grid",
    "prune_redundant",
    "ripple_carry",
    "sklansky",
    "kogge_stone",
    "brent_kung",
    "han_carlson",
    "ladner_fischer",
    "STRUCTURES",
    "make_structure",
    "check_adder",
    "check_gray_to_binary",
    "check_leading_zeros",
    "simulate_adder",
    "simulate_leading_zeros",
    "simulate_gray_to_binary",
    "gray_encode",
    "free_cells",
    "num_free_cells",
    "graph_to_bits",
    "bits_to_graph",
    "graph_to_grid",
    "grid_to_graph",
    "random_graph",
    "unique_random_graphs",
    "node_count",
    "depth",
    "max_fanout",
    "fanout_histogram",
    "hamming_distance",
    "structure_summary",
    "stacked_grids",
    "batch_levels",
    "batch_depths",
    "batch_node_counts",
]
