"""Functional verification of prefix circuits.

A prefix graph is only useful if the circuit it denotes *exactly* implements
the desired logic (the paper stresses circuits "must exactly implement the
desired logic").  This module simulates the graph at the bit level:

* :func:`simulate_adder` evaluates the generate/propagate recurrence with
  Brent-Kung's carry operator and checks the result against integer
  addition.
* :func:`simulate_gray_to_binary` evaluates the same graph with XOR as the
  associative operator, the gray-decoding recurrence (Sec. 5.5).

Both are vectorized over a batch of random input words, so property tests
can hammer thousands of cases cheaply.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .graph import PrefixGraph

__all__ = [
    "simulate_adder",
    "check_adder",
    "simulate_gray_to_binary",
    "check_gray_to_binary",
    "gray_encode",
    "simulate_leading_zeros",
    "check_leading_zeros",
]


def _to_bits(values: np.ndarray, n: int) -> np.ndarray:
    """LSB-first bit matrix of shape (batch, n) from integer array."""
    values = np.asarray(values, dtype=np.uint64)
    return ((values[:, None] >> np.arange(n, dtype=np.uint64)) & np.uint64(1)).astype(bool)


def _from_bits(bits: np.ndarray) -> np.ndarray:
    """Integers from an LSB-first (batch, n) bit matrix."""
    n = bits.shape[1]
    weights = (np.uint64(1) << np.arange(n, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)


def simulate_adder(graph: PrefixGraph, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Add integer arrays ``a + b`` through the prefix circuit.

    Returns ``(sum_bits, carry_out)`` where ``sum_bits`` is the n-bit result
    (batch of integers) and ``carry_out`` the final carry.  Bit ``i``'s
    carry-in is the group-generate of span ``[i-1:0]``; the graph's own
    parent decomposition determines the gate-level evaluation order, so an
    illegal or wrongly-decomposed graph produces wrong sums.
    """
    n = graph.n
    a_bits = _to_bits(np.atleast_1d(a), n)
    b_bits = _to_bits(np.atleast_1d(b), n)
    g_leaf = a_bits & b_bits  # generate
    p_leaf = a_bits ^ b_bits  # propagate (XOR so it doubles as half-sum)

    def combine(upper, lower):
        g_up, p_up = upper
        g_lo, p_lo = lower
        return (g_up | (p_up & g_lo), p_up & p_lo)

    leaves = [(g_leaf[:, i], p_leaf[:, i]) for i in range(n)]
    spans = graph.evaluate(leaves, combine)

    sum_bits = np.empty_like(p_leaf)
    sum_bits[:, 0] = p_leaf[:, 0]
    for i in range(1, n):
        carry_in = spans[(i - 1, 0)][0]
        sum_bits[:, i] = p_leaf[:, i] ^ carry_in
    carry_out = spans[(n - 1, 0)][0]
    return _from_bits(sum_bits), carry_out


def check_adder(graph: PrefixGraph, rng: np.random.Generator, trials: int = 256) -> bool:
    """Verify the graph adds correctly on ``trials`` random input pairs.

    Includes the all-ones + 1 corner (longest carry chain) in every check.
    """
    n = graph.n
    limit = np.uint64(1) << np.uint64(n) if n < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    if n < 64:
        a = rng.integers(0, int(limit), size=trials, dtype=np.uint64)
        b = rng.integers(0, int(limit), size=trials, dtype=np.uint64)
    else:
        a = rng.integers(0, 2 ** 63, size=trials, dtype=np.uint64) * 2 + rng.integers(0, 2, size=trials, dtype=np.uint64)
        b = rng.integers(0, 2 ** 63, size=trials, dtype=np.uint64) * 2 + rng.integers(0, 2, size=trials, dtype=np.uint64)
    # Corner cases: max + 1 (full carry propagation), 0 + 0.
    ones = (np.uint64(1) << np.uint64(n)) - np.uint64(1) if n < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    a = np.concatenate([a, [ones, np.uint64(0)]])
    b = np.concatenate([b, [np.uint64(1), np.uint64(0)]])

    total = a.astype(object) + b.astype(object)
    mask = (1 << n) - 1
    expected_sum = np.array([int(t) & mask for t in total], dtype=np.uint64)
    expected_carry = np.array([bool(int(t) >> n) for t in total])

    got_sum, got_carry = simulate_adder(graph, a, b)
    # Compare the low n bits only.
    got_sum_masked = np.array([int(s) & mask for s in got_sum], dtype=np.uint64)
    return bool(np.array_equal(got_sum_masked, expected_sum) and np.array_equal(got_carry, expected_carry))


def gray_encode(values: np.ndarray) -> np.ndarray:
    """Gray-encode integers: g = b ^ (b >> 1)."""
    values = np.asarray(values, dtype=np.uint64)
    return values ^ (values >> np.uint64(1))


def simulate_gray_to_binary(graph: PrefixGraph, gray: np.ndarray) -> np.ndarray:
    """Decode gray-coded integers through the prefix circuit.

    Binary bit ``i`` is the XOR of gray bits ``i..n-1``.  To express this as
    the same lsb-rooted prefix computation the adder uses, gray bits are fed
    in **reversed** (leaf ``i`` holds gray bit ``n-1-i``), so span ``[i:0]``
    is the XOR of the top ``i+1`` gray bits, i.e. binary bit ``n-1-i``.
    """
    n = graph.n
    gray_bits = _to_bits(np.atleast_1d(gray), n)
    leaves = [gray_bits[:, n - 1 - i] for i in range(n)]
    spans = graph.evaluate(leaves, lambda upper, lower: upper ^ lower)
    out_bits = np.empty_like(gray_bits)
    for i in range(n):
        out_bits[:, n - 1 - i] = spans[(i, 0)]
    return _from_bits(out_bits)


def simulate_leading_zeros(graph: PrefixGraph, values: np.ndarray) -> np.ndarray:
    """Count leading zeros of each value through the prefix circuit.

    The associative operator is OR: leaf ``i`` holds input bit ``n-1-i``
    (msb first), so span ``[i:0]`` is the flag "any 1 among the top i+1
    bits".  The flags are monotone, and the leading-zero count is the
    number of unset flags — this is the "other prefix computation" the
    paper's conclusion points to (leading zero detectors).
    """
    n = graph.n
    bits = _to_bits(np.atleast_1d(values), n)
    leaves = [bits[:, n - 1 - i] for i in range(n)]
    spans = graph.evaluate(leaves, lambda upper, lower: upper | lower)
    flags = np.stack([spans[(i, 0)] for i in range(n)], axis=1)
    return (~flags).sum(axis=1).astype(np.int64)


def check_leading_zeros(graph: PrefixGraph, rng: np.random.Generator, trials: int = 256) -> bool:
    """Verify the LZD prefix network on random values plus corners."""
    n = graph.n
    high = (1 << n) - 1
    values = rng.integers(0, high + 1 if n < 64 else high, size=trials, dtype=np.uint64)
    values = np.concatenate([values, [np.uint64(0), np.uint64(high), np.uint64(1)]])
    expected = np.array([n - int(v).bit_length() for v in values], dtype=np.int64)
    return bool(np.array_equal(simulate_leading_zeros(graph, values), expected))


def check_gray_to_binary(graph: PrefixGraph, rng: np.random.Generator, trials: int = 256) -> bool:
    """Verify gray decoding on random values (plus 0 and all-ones)."""
    n = graph.n
    high = (1 << n) - 1
    values = rng.integers(0, high + 1 if n < 64 else high, size=trials, dtype=np.uint64)
    values = np.concatenate([values, [np.uint64(0), np.uint64(high)]])
    decoded = simulate_gray_to_binary(graph, gray_encode(values))
    return bool(np.array_equal(decoded, values))
