"""Canonical structural hashing of prefix sub-graphs (fanin cones).

Every present span ``(i, j)`` of a prefix graph decomposes as
``span[i:j] = span[i:k] . span[k-1:j]`` with the nearest upper parent, so
its fanin cone is a binary tree of spans.  :func:`cone_keys` assigns each
node a **Merkle-style hash of that tree in relative coordinates**: a leaf
hashes to a constant and an internal node hashes the (upper, lower) child
digests.  Absolute row/column positions never enter the digest, so the
key is *stable under node relabeling* — a sub-circuit shifted to another
bit position (e.g. the upper half of a Sklansky tree, which is a smaller
Sklansky tree on renamed inputs) keeps the same keys, while any single
node or edge change inside the cone changes them.

This is the similarity primitive behind delta-aware incremental
synthesis (:mod:`repro.synth.incremental`): two graphs that share a cone
key of equal width compute the same sub-circuit up to input renaming, so
a population's pairwise overlap of cone keys measures how much structure
an evaluation batch can share.  :func:`signature` reduces a whole graph
to one digest (the output cones' keys in row order); since every present
cell of a legal grid sits in its own row's output cone, equal signatures
mean equal grids.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from hashlib import blake2b
from typing import Dict, Tuple

import numpy as np

from .graph import PrefixGraph, Span

__all__ = ["cone_keys", "cone_key", "signature", "shared_cone_stats"]

_DIGEST_SIZE = 16
#: Digest of a diagonal span (a primary input): the recursion base.
_LEAF = blake2b(b"prefix-leaf", digest_size=_DIGEST_SIZE).digest()

# Per-graph memo (keyed by the packed-grid identity).  Cone keys are
# consulted on every engine batch, so recomputing them per call would
# tax the hot path; a small FIFO bounds memory on long searches.
_MEMO: "OrderedDict[bytes, Dict[Span, bytes]]" = OrderedDict()
_MEMO_LIMIT = 2048


def _compute(graph: PrefixGraph) -> Dict[Span, bytes]:
    keys: Dict[Span, bytes] = {}
    for i in range(graph.n):
        keys[(i, i)] = _LEAF
    grid = graph.grid
    for i in range(1, graph.n):
        present = np.nonzero(grid[i, : i + 1])[0].tolist()
        # Right-to-left: the upper parent (i, k) sits later in `present`
        # and is already hashed; the lower parent (k-1, j) is in an
        # earlier row.  Same sweep order as PrefixGraph.levels().
        for idx in range(len(present) - 2, -1, -1):
            j, k = present[idx], present[idx + 1]
            digest = blake2b(b"N", digest_size=_DIGEST_SIZE)
            digest.update(keys[(i, k)])
            digest.update(keys[(k - 1, j)])
            keys[(i, j)] = digest.digest()
    return keys


def cone_keys(graph: PrefixGraph) -> Dict[Span, bytes]:
    """Merkle cone digest of every present span (treat as read-only)."""
    identity = graph.key()
    cached = _MEMO.get(identity)
    if cached is not None:
        _MEMO.move_to_end(identity)
        return cached
    keys = _compute(graph)
    _MEMO[identity] = keys
    if len(_MEMO) > _MEMO_LIMIT:
        _MEMO.popitem(last=False)
    return keys


def cone_key(graph: PrefixGraph, i: int, j: int) -> bytes:
    """Digest of one span's fanin cone."""
    return cone_keys(graph)[(i, j)]


def signature(graph: PrefixGraph) -> bytes:
    """One digest for the whole graph: output cones, in row order.

    Every present cell of a legal grid lies in its own row's output cone
    (the nearest-upper-parent chain walks the whole row), so two graphs
    of the same width share a signature exactly when their grids match.
    """
    digest = blake2b(b"G%d" % graph.n, digest_size=_DIGEST_SIZE)
    keys = cone_keys(graph)
    for i in range(graph.n):
        digest.update(keys[(i, 0)])
    return digest.digest()


def shared_cone_stats(
    candidate: PrefixGraph, base: PrefixGraph
) -> Tuple[int, int]:
    """``(shared, total)`` internal-cone overlap of candidate vs base.

    Counts the candidate's non-diagonal spans whose (cone key, width)
    pair also occurs in the base — as a multiset, so repeated identical
    sub-trees only match as many times as the base materializes them.
    ``total`` is the candidate's internal node count; a ``shared/total``
    near 1 means the candidate is a small delta on the base, the routing
    condition for the incremental evaluation path.
    """
    cand_keys = cone_keys(candidate)
    base_counts = Counter(
        (key, i - j) for (i, j), key in cone_keys(base).items() if i != j
    )
    shared = 0
    total = 0
    for (i, j), key in cand_keys.items():
        if i == j:
            continue
        total += 1
        pair = (key, i - j)
        if base_counts[pair] > 0:
            base_counts[pair] -= 1
            shared += 1
    return shared, total
