"""Crash-safe filesystem primitives shared by every persistence layer.

Run directories, record files and spec files must survive a ``kill -9``
mid-write: a reader may never observe a half-written JSON document.  The
helpers here follow the standard write-temp-then-rename recipe — the
temporary file lands in the *destination directory* (``os.replace`` is
only atomic within one filesystem) and the payload is fully serialized
before the first byte is written, so a serialization error can neither
truncate an existing file nor leave a stray temp file behind.

Appending (evaluation-history JSONL) is durable line-by-line instead:
each line is flushed as one write, and readers tolerate a truncated
final line (the signature of a writer killed mid-append).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional

__all__ = [
    "ensure_parent_dir",
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_write_json",
]


def ensure_parent_dir(path: str) -> str:
    """Create the parent directory of ``path``; returns the parent."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    return parent


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Creates missing parent directories.  On any failure the destination
    is untouched: either the old content survives intact or the new
    content is fully in place, never a mix.
    """
    parent = ensure_parent_dir(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write binary ``data`` to ``path`` atomically (temp + ``os.replace``).

    The binary sibling of :func:`atomic_write_text`; used for ``.npz``
    model/optimizer archives (serialize the archive to memory first,
    then land it in one rename).
    """
    parent = ensure_parent_dir(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: Any, indent: Optional[int] = None) -> None:
    """Serialize ``payload`` and write it atomically.

    Serialization happens *before* any file is opened, so an
    unserializable payload leaves both the destination and its directory
    exactly as they were.
    """
    text = json.dumps(payload, indent=indent)
    atomic_write_text(path, text + "\n" if indent is not None else text)
