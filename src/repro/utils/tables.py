"""Markdown/plain-text table formatting for benchmark reports.

The Table 1 bench prints cells in the paper's own format:
``median (q25 - q75)``.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_median_iqr"]


def format_median_iqr(median: float, q25: float, q75: float, digits: int = 2) -> str:
    """Render a statistic the way Table 1 does: ``4.54 (4.52 - 4.55)``."""
    return f"{median:.{digits}f} ({q25:.{digits}f} - {q75:.{digits}f})"


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace-aligned table with a markdown-style separator."""
    columns = [list(map(str, col)) for col in zip(header, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt_row(header)]
    lines.append("-+-".join("-" * w for w in widths))
    lines += [fmt_row(row) for row in rows]
    return "\n".join(lines)
