"""Advisory pid-file locks shared by the run-directory and cache layers.

The repo has two places where exactly-one-live-process coordination
matters: a run directory being executed (:mod:`repro.api.rundir`) and an
evaluation-cache directory being compacted (:mod:`repro.serve.compact`).
Both use the same discipline:

* the lock is a small JSON file naming the owning pid, written
  atomically;
* a lock whose pid is dead (the SIGKILLed run a resume exists for, a
  crashed compactor) is **stolen** with a :class:`RuntimeWarning` naming
  the dead pid — silent stealing hides the fact that a previous process
  died uncleanly;
* a lock whose pid is alive is respected (the caller raises or waits).

Advisory only: a pathological simultaneous acquire can still race, but
the realistic double-execution mistakes are caught.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Optional

from .io import atomic_write_json

__all__ = ["pid_alive", "read_lock_pid", "warn_stale_lock", "PidFileLock"]


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for an advisory lock owner."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        pass  # exists but owned elsewhere — treat as alive
    return True


def read_lock_pid(path: str) -> Optional[int]:
    """The pid recorded in a lock file, or None if unreadable/absent."""
    try:
        with open(path) as handle:
            return int(json.load(handle).get("pid"))
    except (ValueError, TypeError, OSError):
        return None


def warn_stale_lock(path: str, pid: Optional[int]) -> None:
    """Announce that a stale advisory lock is being stolen.

    Naming the dead pid matters: it tells the operator *which* previous
    process died uncleanly (e.g. the SIGKILLed run a resume recovers).
    """
    owner = f"dead process {pid}" if pid is not None else "an unreadable lock"
    warnings.warn(
        f"stealing stale advisory lock {path} left by {owner}",
        RuntimeWarning,
        stacklevel=3,
    )


class PidFileLock:
    """One advisory pid-file lock (used by cache compaction).

    ``acquire`` raises :class:`ValueError` when a live process holds the
    lock; a stale lock is stolen with a :class:`RuntimeWarning`.  Usable
    as a context manager.
    """

    def __init__(self, path: str, purpose: str = "resource") -> None:
        self.path = path
        self.purpose = purpose

    def acquire(self) -> None:
        if os.path.exists(self.path):
            pid = read_lock_pid(self.path)
            if pid is not None and pid != os.getpid() and pid_alive(pid):
                raise ValueError(
                    f"{self.purpose} is locked by live process {pid} "
                    f"({self.path}); wait for it (or remove the lock if "
                    "it is wrong)"
                )
            if pid != os.getpid():  # re-acquiring our own lock is silent
                warn_stale_lock(self.path, pid)
        atomic_write_json(self.path, {"pid": os.getpid()})

    def release(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "PidFileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
