"""Deterministic random-number management.

Every stochastic component in the repository takes an explicit
``np.random.Generator``.  Experiments spawn independent child generators
per (method, seed) so runs are reproducible and independent regardless of
execution order — the paper runs "five different random seeds and
independently collected initial datasets".
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["make_rng", "spawn", "seed_sequence"]


def make_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator from an integer seed."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Split ``count`` statistically independent child generators."""
    seeds = rng.integers(0, 2 ** 63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def seed_sequence(base_seed: int, count: int) -> List[int]:
    """Derive ``count`` well-separated seeds from one base seed."""
    ss = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in ss.spawn(count)]
