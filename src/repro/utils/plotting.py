"""ASCII rendering: cost curves, Pareto frontiers and prefix graphs.

Matplotlib is unavailable offline, so every figure bench emits (a) CSV
series with exactly the data the paper plots and (b) a terminal rendering
from this module, which is enough to read off the ordering and crossover
behaviour the reproduction is judged on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..prefix.graph import PrefixGraph

__all__ = ["ascii_plot", "ascii_scatter", "render_prefix_graph", "format_series_csv"]


def _scale(values: np.ndarray, lo: float, hi: float, size: int) -> np.ndarray:
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    pos = (values - lo) / (hi - lo) * (size - 1)
    return np.clip(np.round(pos).astype(int), 0, size - 1)


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot named (x, y) line series on a character canvas.

    Each series gets a distinct marker; a legend and axis ranges are
    appended.  Lower-left origin.
    """
    markers = "*o+x#@%&"
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    finite = np.isfinite(all_y)
    if not finite.any():
        return "(no finite data)"
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y[finite].min()), float(all_y[finite].max())
    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (name, (xs, ys)) in zip(markers, series.items()):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        ok = np.isfinite(ys)
        cols = _scale(xs[ok], x_lo, x_hi, width)
        rows = _scale(ys[ok], y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker
        legend.append(f"{marker} = {name}")
    lines = []
    if title:
        lines.append(title)
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(
        f"x: {xlabel} [{x_lo:g}, {x_hi:g}]   y: {ylabel} [{y_lo:.4g}, {y_hi:.4g}]"
    )
    lines.append("   ".join(legend))
    return "\n".join(lines)


def ascii_scatter(
    points: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Scatter version of :func:`ascii_plot` (used by the Pareto figure)."""
    return ascii_plot(points, width=width, height=height, title=title, xlabel=xlabel, ylabel=ylabel)


def render_prefix_graph(graph: PrefixGraph, label: str = "") -> str:
    """Draw the grid: '#' = present operator, '.' = absent, 'o' = diagonal.

    Row i is printed with i+1 cells (the lower triangle), matching the
    design drawings in the paper's Figs. 1 and 8.
    """
    lines = []
    if label:
        lines.append(label)
    for i in range(graph.n):
        cells = []
        for j in range(i + 1):
            if i == j:
                cells.append("o")
            elif graph.grid[i, j]:
                cells.append("#")
            else:
                cells.append(".")
        lines.append("".join(cells))
    lines.append(
        f"(nodes={graph.node_count()}, depth={graph.depth()})"
    )
    return "\n".join(lines)


def format_series_csv(
    header: Sequence[str], rows: Sequence[Sequence[float]]
) -> str:
    """Simple CSV emission for figure data."""
    lines = [",".join(header)]
    for row in rows:
        lines.append(",".join(f"{v:.6g}" if isinstance(v, float) else str(v) for v in row))
    return "\n".join(lines)
