"""``repro.utils`` — RNG management, ASCII plotting, table formatting."""

from .rng import make_rng, seed_sequence, spawn

__all__ = ["make_rng", "spawn", "seed_sequence"]
