#!/usr/bin/env python
"""Leading-zero detector design — the paper's suggested extension.

The conclusion of the paper claims CircuitVAE "may be applied unchanged to
optimize other prefix computations, such as leading zero detectors."  This
example does exactly that: the associative operator becomes OR, the cell
mapping emits an OR prefix network plus a one-hot output stage, and the
optimizer code is untouched.  Model health is checked with the latent
diagnostics before trusting the result.

Run:  python examples/leading_zero_detector.py [--bits 12] [--budget 120]
"""

import argparse

import numpy as np

from repro.circuits import lzd_task
from repro.core import (
    CircuitVAEConfig,
    CircuitVAEOptimizer,
    SearchConfig,
    TrainConfig,
    diagnose,
)
from repro.opt import CircuitSimulator
from repro.prefix import STRUCTURES, check_leading_zeros
from repro.utils.plotting import render_prefix_graph
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=12)
    parser.add_argument("--budget", type=int, default=120)
    parser.add_argument("--omega", type=float, default=0.6)
    args = parser.parse_args()

    task = lzd_task(n=args.bits, delay_weight=args.omega)
    simulator = CircuitSimulator(task, budget=args.budget)
    optimizer = CircuitVAEOptimizer(
        CircuitVAEConfig(
            latent_dim=16, base_channels=6, hidden_dim=64,
            initial_samples=min(48, args.budget // 3),
            train=TrainConfig(epochs=10, batch_size=32),
            search=SearchConfig(num_parallel=8, num_steps=40, capture_every=20),
        )
    )
    print(f"designing a {args.bits}-bit leading-zero detector "
          f"(omega={args.omega}, budget={args.budget})...")
    best = optimizer.run(simulator, np.random.default_rng(0))

    assert check_leading_zeros(best.graph, np.random.default_rng(1)), (
        "discovered circuit does not count leading zeros!"
    )
    diag = diagnose(optimizer.model, optimizer.dataset)
    print(f"model diagnostics: recon acc {diag.reconstruction_accuracy:.2f}, "
          f"cost rank-corr {diag.cost_rank_correlation:.2f}, "
          f"active latent dims {diag.latent_dim_active}")

    rows = []
    for name, builder in sorted(STRUCTURES.items()):
        result = task.synthesize(builder(args.bits))
        rows.append([name, f"{result.area_um2:.1f}", f"{result.delay_ns:.3f}",
                     f"{task.cost(result):.3f}"])
    rows.append(["**CircuitVAE**", f"{best.area_um2:.1f}", f"{best.delay_ns:.3f}",
                 f"{best.cost:.3f}"])
    print()
    print(format_table(["design", "area um2", "delay ns", "cost"], rows))
    print()
    print(render_prefix_graph(best.graph, label="discovered OR-prefix network"))


if __name__ == "__main__":
    main()
