#!/usr/bin/env python
"""Realistic datapath design (paper Sec. 5.4 / Fig. 6).

Designs adders for a datapath slot with per-bit IO timing constraints at
the scaled-8nm technology, searching with the repository's open flow and
evaluating the winners with the commercial-tool emulation — exactly the
paper's workflow, including its domain gap.  Prints the resulting
area-delay points against the tool's own provided adders.

Run:  python examples/realistic_datapath.py [--bits 16] [--budget 120]
"""

import argparse

import numpy as np

from repro.circuits import realistic_adder_task
from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig
from repro.opt import CircuitSimulator
from repro.synth import CommercialTool, scaled_library
from repro.utils.plotting import ascii_scatter
from repro.utils.tables import format_table


def small_optimizer(budget: int) -> CircuitVAEOptimizer:
    return CircuitVAEOptimizer(
        CircuitVAEConfig(
            latent_dim=16, base_channels=6, hidden_dim=64,
            initial_samples=min(48, budget // 3),
            train=TrainConfig(epochs=8, batch_size=32),
            search=SearchConfig(num_parallel=12, num_steps=30, capture_every=10),
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=16)
    parser.add_argument("--budget", type=int, default=120, help="simulations per delay weight")
    parser.add_argument("--profile", default="late-msb", choices=["late-msb", "late-lsb", "bowl"])
    args = parser.parse_args()

    io_timing = realistic_adder_task(args.bits, profile=args.profile).io_timing
    tool = CommercialTool(scaled_library("8nm"), io_timing)

    vae_points = []
    for omega in (0.05, 0.3, 0.6, 0.95):
        task = realistic_adder_task(args.bits, delay_weight=omega, profile=args.profile)
        simulator = CircuitSimulator(task, budget=args.budget)
        print(f"searching at delay weight {omega} ...")
        small_optimizer(args.budget).run(simulator, np.random.default_rng(int(omega * 100)))
        for evaluation in sorted(simulator.history, key=lambda e: e.cost)[:3]:
            result = tool.evaluate(evaluation.graph)
            vae_points.append((omega, result.area_um2, result.delay_ns))

    rows = [[f"CircuitVAE (w={w})", f"{a:.2f}", f"{d:.4f}"] for w, a, d in vae_points]
    provided = tool.provided_adders(args.bits)
    for name, result in sorted(provided.items()):
        rows.append([f"tool: {name}", f"{result.area_um2:.2f}", f"{result.delay_ns:.4f}"])
    print()
    print(format_table(["design", "area um2 (commercial)", "delay ns (commercial)"], rows))
    print()
    print(ascii_scatter(
        {
            "CircuitVAE": ([p[1] for p in vae_points], [p[2] for p in vae_points]),
            "tool": ([r.area_um2 for r in provided.values()],
                     [r.delay_ns for r in provided.values()]),
        },
        title="commercial-tool-evaluated area/delay",
        xlabel="area um2", ylabel="delay ns",
    ))


if __name__ == "__main__":
    main()
