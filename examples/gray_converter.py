#!/usr/bin/env python
"""Gray-to-binary converter design (paper Sec. 5.5 / Fig. 7).

Demonstrates the framework's generality: the identical CircuitVAE
machinery optimizes a different parallel prefix circuit — a gray-code
decoder whose associative operator is XOR — simply by switching the cell
mapping.  The script optimizes the converter, verifies the winner decodes
gray code exactly, and contrasts its structure with the best adder for
the same bitwidth (the paper's Fig. 8 observation).

Run:  python examples/gray_converter.py [--bits 13] [--budget 150]
"""

import argparse

import numpy as np

from repro.circuits import adder_task, gray_to_binary_task
from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig
from repro.opt import CircuitSimulator
from repro.prefix import check_gray_to_binary, hamming_distance, structure_summary
from repro.utils.plotting import render_prefix_graph
from repro.utils.tables import format_table


def optimizer_for(budget: int) -> CircuitVAEOptimizer:
    return CircuitVAEOptimizer(
        CircuitVAEConfig(
            latent_dim=16, base_channels=6, hidden_dim=64,
            initial_samples=min(48, budget // 3),
            train=TrainConfig(epochs=8, batch_size=32),
            search=SearchConfig(num_parallel=12, num_steps=30, capture_every=10),
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=13)
    parser.add_argument("--budget", type=int, default=150)
    args = parser.parse_args()

    print(f"designing a {args.bits}-bit gray-to-binary converter (omega=0.6)...")
    gray_sim = CircuitSimulator(gray_to_binary_task(n=args.bits), budget=args.budget)
    best_gray = optimizer_for(args.budget).run(gray_sim, np.random.default_rng(0))
    assert check_gray_to_binary(best_gray.graph, np.random.default_rng(1)), (
        "discovered circuit does not decode gray code!"
    )

    print(f"designing a {args.bits}-bit adder at a similar delay weight...")
    adder_sim = CircuitSimulator(adder_task(args.bits, 0.66), budget=args.budget)
    best_adder = optimizer_for(args.budget).run(adder_sim, np.random.default_rng(0))

    print()
    print(render_prefix_graph(best_gray.graph, label="best gray-to-binary design"))
    print()
    print(render_prefix_graph(best_adder.graph, label="best adder design"))
    print()
    rows = []
    for label, evaluation in (("gray-to-binary", best_gray), ("adder", best_adder)):
        s = structure_summary(evaluation.graph)
        rows.append([label, f"{evaluation.cost:.3f}", f"{evaluation.area_um2:.1f}",
                     f"{evaluation.delay_ns:.3f}", s["nodes"], s["depth"]])
    print(format_table(["task", "cost", "area um2", "delay ns", "nodes", "depth"], rows))
    print(f"\nstructural (grid hamming) distance between the two: "
          f"{hamming_distance(best_gray.graph, best_adder.graph)}")


if __name__ == "__main__":
    main()
