#!/usr/bin/env python
"""Head-to-head comparison of CircuitVAE against GA, RL and BO.

A miniature of the paper's Fig. 3 experiment: all four methods optimize
the same adder task under the same simulation budget with paired seeds;
the script prints the cost-vs-budget curves and the VAE speedup per
competitor (the Table 1 statistic).

Run:  python examples/compare_methods.py [--bits 12] [--budget 150] [--seeds 2]
"""

import argparse

import numpy as np

from repro.baselines import BOConfig, GAConfig, GeneticAlgorithm, LatentBO, PrefixRL, RLConfig
from repro.circuits import adder_task
from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig
from repro.opt import aggregate_curves, median_iqr, run_comparison, vae_speedup
from repro.utils.plotting import ascii_plot
from repro.utils.tables import format_median_iqr, format_table


def factories(budget: int):
    vae_cfg = CircuitVAEConfig(
        latent_dim=16, base_channels=6, hidden_dim=64,
        initial_samples=min(48, budget // 3),
        train=TrainConfig(epochs=8, batch_size=32),
        search=SearchConfig(num_parallel=12, num_steps=30, capture_every=10),
    )
    return {
        "CircuitVAE": lambda s: CircuitVAEOptimizer(vae_cfg),
        "GA": lambda s: GeneticAlgorithm(GAConfig(population_size=20)),
        "RL": lambda s: PrefixRL(RLConfig(episode_length=16)),
        "BO": lambda s: LatentBO(BOConfig(vae=vae_cfg, batch_per_round=12)),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=12)
    parser.add_argument("--budget", type=int, default=150)
    parser.add_argument("--omega", type=float, default=0.66)
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args()

    task = adder_task(args.bits, args.omega)
    print(f"running 4 methods x {args.seeds} seeds on {task.name} "
          f"(budget {args.budget}); this takes a few minutes...")
    results = run_comparison(
        factories(args.budget), task, budget=args.budget, num_seeds=args.seeds
    )

    budgets = list(range(args.budget // 8, args.budget + 1, args.budget // 8))
    series = {
        method: (budgets, aggregate_curves(records, budgets)["median"].tolist())
        for method, records in results.items()
    }
    print()
    print(ascii_plot(series, title="median best cost vs simulations",
                     xlabel="simulations", ylabel="cost"))

    rows = []
    vae_records = results["CircuitVAE"]
    for method, records in results.items():
        best = median_iqr([r.best_cost() for r in records])
        speedup = (
            "-" if method == "CircuitVAE"
            else format_median_iqr(*median_iqr(vae_speedup(vae_records, records)))
        )
        rows.append([method, format_median_iqr(*best, digits=3), speedup])
    print()
    print(format_table(["method", "best cost (median, IQR)", "VAE speedup"], rows))


if __name__ == "__main__":
    main()
