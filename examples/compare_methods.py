#!/usr/bin/env python
"""Head-to-head comparison of CircuitVAE against GA, RL and BO.

A miniature of the paper's Fig. 3 experiment: all four methods optimize
the same adder task under the same simulation budget with paired seeds;
the script prints the cost-vs-budget curves and the VAE speedup per
competitor (the Table 1 statistic).

The whole grid is one declarative :class:`repro.api.ExperimentSpec`
resolved by method name from the registry — pass ``--save-spec grid.json``
to export it and re-run the identical experiment with
``python -m repro run grid.json``.

Run:  python examples/compare_methods.py [--bits 12] [--budget 150] [--seeds 2]
"""

import argparse

from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec, save_spec
from repro.opt import median_iqr, vae_speedup
from repro.utils.plotting import ascii_plot
from repro.utils.tables import format_median_iqr, format_table


def method_specs(budget: int):
    vae = dict(
        latent_dim=16, base_channels=6, hidden_dim=64,
        initial_samples=min(48, budget // 3),
        train=dict(epochs=8, batch_size=32),
        search=dict(num_parallel=12, num_steps=30, capture_every=10),
    )
    return (
        MethodSpec("CircuitVAE", params=vae),
        MethodSpec("GA", params=dict(population_size=20)),
        MethodSpec("RL", params=dict(episode_length=16)),
        MethodSpec("BO", params=dict(vae=vae, batch_per_round=12)),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=12)
    parser.add_argument("--budget", type=int, default=150)
    parser.add_argument("--omega", type=float, default=0.66)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--save-spec", default=None,
                        help="write the spec as JSON (for python -m repro run)")
    args = parser.parse_args()

    spec = ExperimentSpec(
        name="compare-methods",
        task=TaskSpec(circuit_type="adder", n=args.bits, delay_weight=args.omega),
        methods=method_specs(args.budget),
        budget=args.budget,
        num_seeds=args.seeds,
        curve_points=min(8, args.budget),
    )
    if args.save_spec:
        save_spec(spec, args.save_spec)
        print(f"spec written to {args.save_spec}")

    task = spec.task.to_task()
    print(f"running {len(spec.methods)} methods x {args.seeds} seeds on {task.name} "
          f"(budget {args.budget}); this takes a few minutes...")
    with Session() as session:
        result = session.run(spec)

    budgets = result.budgets()
    series = {
        method: (budgets, agg["median"].tolist())
        for method, agg in result.curves().items()
    }
    print()
    print(ascii_plot(series, title="median best cost vs simulations",
                     xlabel="simulations", ylabel="cost"))

    rows = []
    vae_records = result.records["CircuitVAE"]
    for method, records in result.records.items():
        best = median_iqr([r.best_cost() for r in records])
        speedup = (
            "-" if method == "CircuitVAE"
            else format_median_iqr(*median_iqr(vae_speedup(vae_records, records)))
        )
        rows.append([method, format_median_iqr(*best, digits=3), speedup])
    print()
    print(format_table(["method", "best cost (median, IQR)", "VAE speedup"], rows))


if __name__ == "__main__":
    main()
