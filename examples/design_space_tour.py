#!/usr/bin/env python
"""A tour of the design space and the synthesis substrate.

No learning here — this example exercises the substrate layers directly:

1. builds every classical prefix structure at several bitwidths,
2. verifies each functionally (they must *add*),
3. synthesizes each through the physical flow (mapping, placement,
   buffering, sizing, STA) at both technology libraries,
4. prints the area/delay/cost landscape and renders two contrasting
   structures,
5. shows how the delay weight omega moves the optimum across structures.

Run:  python examples/design_space_tour.py [--bits 16 32]
"""

import argparse

import numpy as np

from repro.prefix import STRUCTURES, check_adder, make_structure
from repro.synth import cost_from_metrics, nangate45, scaled_library, synthesize
from repro.utils.plotting import render_prefix_graph
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, nargs="+", default=[16, 32])
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    for n in args.bits:
        print(f"\n=== {n}-bit adders ===")
        for lib_name, lib in (("nangate45", nangate45()), ("scaled-8nm", scaled_library("8nm"))):
            rows = []
            winners = {}
            for name in sorted(STRUCTURES):
                graph = make_structure(name, n)
                assert check_adder(graph, rng, trials=32), f"{name} does not add!"
                result = synthesize(graph, lib)
                rows.append([
                    name, graph.node_count(), graph.depth(),
                    f"{result.area_um2:.1f}", f"{result.delay_ns:.3f}",
                    result.num_buffers,
                ])
                for omega in (0.1, 0.5, 0.9):
                    cost = cost_from_metrics(result.area_um2, result.delay_ns, omega)
                    if omega not in winners or cost < winners[omega][1]:
                        winners[omega] = (name, cost)
            print(f"\n[{lib_name}]")
            print(format_table(
                ["structure", "nodes", "depth", "area um2", "delay ns", "buffers"], rows
            ))
            print("best structure by delay weight: " + ", ".join(
                f"w={omega}: {name}" for omega, (name, _) in sorted(winners.items())
            ))

    n = args.bits[0]
    print()
    print(render_prefix_graph(make_structure("ripple", n), label=f"ripple-carry ({n}b): minimum area"))
    print()
    print(render_prefix_graph(make_structure("kogge_stone", n), label=f"kogge-stone ({n}b): minimum depth"))


if __name__ == "__main__":
    main()
