#!/usr/bin/env python
"""Quickstart: optimize a 16-bit adder with CircuitVAE in ~1 minute.

Builds the standard benchmark task (Nangate45-modeled library, uniform IO
timing, delay weight 0.66), runs Algorithm 1 with a small simulation
budget, and compares the discovered adder against the classical
human-designed structures.

Run:  python examples/quickstart.py [--bits 16] [--budget 200] [--omega 0.66]
"""

import argparse

import numpy as np

from repro.circuits import adder_task
from repro.core import CircuitVAEConfig, CircuitVAEOptimizer, SearchConfig, TrainConfig
from repro.opt import CircuitSimulator
from repro.prefix import STRUCTURES, check_adder
from repro.utils.plotting import render_prefix_graph
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=16)
    parser.add_argument("--budget", type=int, default=200, help="simulation budget")
    parser.add_argument("--omega", type=float, default=0.66, help="delay weight")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = adder_task(args.bits, args.omega)
    simulator = CircuitSimulator(task, budget=args.budget)
    optimizer = CircuitVAEOptimizer(
        CircuitVAEConfig(
            latent_dim=16,
            base_channels=6,
            hidden_dim=64,
            initial_samples=min(64, args.budget // 3),
            train=TrainConfig(epochs=8, batch_size=32),
            search=SearchConfig(num_parallel=12, num_steps=30, capture_every=10),
        )
    )

    print(f"Optimizing a {args.bits}-bit adder at delay weight {args.omega} "
          f"with {args.budget} simulations...")
    best = optimizer.run(simulator, np.random.default_rng(args.seed))

    # Sanity: the discovered circuit must still be a correct adder.
    assert check_adder(best.graph, np.random.default_rng(1)), "found circuit is not an adder!"

    rows = []
    for name, builder in sorted(STRUCTURES.items()):
        result = task.synthesize(builder(args.bits))
        rows.append([name, f"{result.area_um2:.1f}", f"{result.delay_ns:.3f}",
                     f"{task.cost(result):.3f}"])
    rows.append(["**CircuitVAE**", f"{best.area_um2:.1f}", f"{best.delay_ns:.3f}",
                 f"{best.cost:.3f}"])
    print()
    print(format_table(["design", "area um2", "delay ns", "cost"], rows))
    print()
    print(render_prefix_graph(best.graph, label="discovered prefix graph"))
    print(f"\nsimulations used: {simulator.num_simulations}")


if __name__ == "__main__":
    main()
