#!/usr/bin/env python
"""Quickstart: optimize a 16-bit adder with CircuitVAE in ~1 minute.

Describes the standard benchmark setting (Nangate45-modeled library,
uniform IO timing, delay weight 0.66) as a declarative
:class:`repro.api.ExperimentSpec`, runs it through a
:class:`repro.api.Session`, and compares the discovered adder against the
classical human-designed structures.  The same spec, saved as JSON, runs
identically via ``python -m repro run``.

Run:  python examples/quickstart.py [--bits 16] [--budget 200] [--omega 0.66]
"""

import argparse

import numpy as np

from repro.api import ExperimentSpec, MethodSpec, Session, TaskSpec
from repro.prefix import STRUCTURES, check_adder
from repro.utils.plotting import render_prefix_graph
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=16)
    parser.add_argument("--budget", type=int, default=200, help="simulation budget")
    parser.add_argument("--omega", type=float, default=0.66, help="delay weight")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save-spec", default=None,
                        help="also write the spec as JSON (for python -m repro run)")
    args = parser.parse_args()

    spec = ExperimentSpec(
        name="quickstart",
        task=TaskSpec(circuit_type="adder", n=args.bits, delay_weight=args.omega),
        methods=(
            MethodSpec("CircuitVAE", params=dict(
                latent_dim=16, base_channels=6, hidden_dim=64,
                initial_samples=min(64, args.budget // 3),
                train=dict(epochs=8, batch_size=32),
                search=dict(num_parallel=12, num_steps=30, capture_every=10),
            )),
        ),
        budget=args.budget,
        seeds=(args.seed,),
        curve_points=min(8, args.budget),
    )
    if args.save_spec:
        from repro.api import save_spec
        save_spec(spec, args.save_spec)
        print(f"spec written to {args.save_spec}")

    print(f"Optimizing a {args.bits}-bit adder at delay weight {args.omega} "
          f"with {args.budget} simulations...")
    with Session() as session:
        result = session.run(spec)
    record = result.records["CircuitVAE"][0]
    best_cost, best_area, best_delay = record.best_metrics()

    # Sanity: the discovered circuit must still be a correct adder.
    assert check_adder(record.best_graph, np.random.default_rng(1)), \
        "found circuit is not an adder!"

    task = spec.task.to_task()
    rows = []
    for name, builder in sorted(STRUCTURES.items()):
        synth = task.synthesize(builder(args.bits))
        rows.append([name, f"{synth.area_um2:.1f}", f"{synth.delay_ns:.3f}",
                     f"{task.cost(synth):.3f}"])
    rows.append(["**CircuitVAE**", f"{best_area:.1f}", f"{best_delay:.3f}",
                 f"{best_cost:.3f}"])
    print()
    print(format_table(["design", "area um2", "delay ns", "cost"], rows))
    print()
    print(render_prefix_graph(record.best_graph, label="discovered prefix graph"))
    print(f"\nsimulations used: {record.num_simulations}")


if __name__ == "__main__":
    main()
