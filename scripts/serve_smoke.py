"""Serve smoke: a real daemon, concurrent tenants, SIGTERM, compaction.

The contracts the shared evaluation daemon (:mod:`repro.serve`) must
keep are distributional, so they are proven end to end with real
processes over a real unix socket:

1. start a daemon with ``python -m repro serve start``;
2. run the reference spec in-process (no ``$REPRO_ENGINE_SOCKET``);
3. run TWO concurrent client processes against the daemon and assert
   both wrote records bit-identical to the reference — fair-share
   scheduling must never leak into results;
4. compact the daemon's evaluation-cache directory while it is live,
   run a third client, and assert the daemon served it without any new
   synthesis (the warm cache survived compaction);
5. SIGTERM the daemon mid-run of a fourth client and assert the client
   still exits 0 with bit-identical records (graceful drain + client
   fallback to the in-process engine).

Exit code 0 = every contract held.  Used by the CI ``serve-smoke`` job;
run locally with ``PYTHONPATH=src python scripts/serve_smoke.py``.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.opt import load_records  # noqa: E402

SPEC = {
    "name": "serve-smoke",
    "task": {"circuit_type": "adder", "n": 8, "delay_weight": 0.66},
    "methods": [
        {"method": "GA", "label": None, "params": {"population_size": 8}},
        {"method": "Random", "label": None, "params": {}},
    ],
    "budget": 24,
    "num_seeds": 1,
    "base_seed": 0,
    "seeds": None,
    "curve_points": 4,
    "engine": {"cache_dir": None, "workers": None, "parallel_seeds": 1},
}


def cli(*args, socket=None, tenant=None, wait=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_ENGINE_SOCKET", None)
    if socket is not None:
        env["REPRO_ENGINE_SOCKET"] = socket
    if tenant is not None:
        env["REPRO_ENGINE_TENANT"] = tenant
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *args], env=env, cwd=REPO
    )
    if not wait:
        return process
    if process.wait() != 0:
        raise SystemExit(f"command failed: {args}")
    return process


def run_spec(spec_path, out, socket=None, tenant=None, wait=True):
    return cli("run", spec_path, "--out", out,
               socket=socket, tenant=tenant, wait=wait)


def assert_identical(path, reference_path, label):
    records = load_records(path)
    reference = load_records(reference_path)
    assert len(records) == len(reference), (label, len(records))
    for record, ref in zip(records, reference):
        assert record.method == ref.method and record.seed == ref.seed, label
        assert list(record.costs) == list(ref.costs), (label, record.method)
        assert list(record.areas) == list(ref.areas), (label, record.method)
        assert list(record.delays) == list(ref.delays), (label, record.method)
        assert record.best_graph == ref.best_graph, (label, record.method)
    print(f"[serve-smoke] {label}: bit-identical to the reference")


def daemon_stats(socket):
    from repro.serve.client import ServeClient

    client = ServeClient(socket)
    try:
        return client.stats().to_dict()
    finally:
        client.close()


def main():
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = os.path.join(tmp, "spec.json")
        with open(spec_path, "w") as handle:
            json.dump(SPEC, handle)
        socket = os.path.join(tmp, "eval.sock")
        cache_dir = os.path.join(tmp, "cache")

        # 1. reference, no daemon anywhere
        ref = os.path.join(tmp, "ref.jsonl")
        run_spec(spec_path, ref)

        # 2. daemon up
        cli("serve", "start", "--socket", socket, "--cache-dir", cache_dir)
        print(f"[serve-smoke] daemon listening on {socket}")

        # 3. two concurrent tenants, both bit-identical
        out_a = os.path.join(tmp, "a.jsonl")
        out_b = os.path.join(tmp, "b.jsonl")
        client_a = run_spec(spec_path, out_a, socket=socket,
                            tenant="tenant-a", wait=False)
        client_b = run_spec(spec_path, out_b, socket=socket,
                            tenant="tenant-b", wait=False)
        assert client_a.wait() == 0 and client_b.wait() == 0
        assert_identical(out_a, ref, "concurrent tenant A")
        assert_identical(out_b, ref, "concurrent tenant B")
        stats = daemon_stats(socket)
        completed = stats["jobs_completed"]
        assert completed >= 2, stats  # the remote path was actually used
        print(f"[serve-smoke] daemon completed {completed} jobs "
              f"for 2 concurrent tenants")

        # 4. compact the live cache, then a warm re-run: zero new synthesis
        synth_before = stats["telemetry"]["synth_calls"]
        cli("serve", "compact", cache_dir)
        out_c = os.path.join(tmp, "c.jsonl")
        run_spec(spec_path, out_c, socket=socket, tenant="tenant-c")
        assert_identical(out_c, ref, "post-compaction tenant C")
        synth_after = daemon_stats(socket)["telemetry"]["synth_calls"]
        assert synth_after == synth_before, (synth_before, synth_after)
        print("[serve-smoke] compaction kept the cache warm "
              f"(synth_calls stayed at {synth_after})")

        # 5. SIGTERM mid-run: drain + client fallback, still identical
        with open(os.path.join(tmp, "eval.sock.pid.json")) as handle:
            daemon_pid = json.load(handle)["pid"]
        out_d = os.path.join(tmp, "d.jsonl")
        client_d = run_spec(spec_path, out_d, socket=socket,
                            tenant="tenant-d", wait=False)
        time.sleep(1.0)  # let the run get going before pulling the plug
        os.kill(daemon_pid, signal.SIGTERM)
        assert client_d.wait() == 0, "client died with the daemon"
        assert_identical(out_d, ref, "SIGTERMed-daemon tenant D")
        for _ in range(150):
            if not os.path.exists(socket):
                break
            time.sleep(0.1)
        assert not os.path.exists(socket), "daemon left its socket behind"
        print("[serve-smoke] SIGTERM drained cleanly; client fell back "
              "and finished bit-identically")

    print("[serve-smoke] OK")


if __name__ == "__main__":
    main()
