"""Observability smoke: trace a tiny run end to end, validate, export.

Proves the whole :mod:`repro.obs` pipeline through the real API:

1. run the ``tiny`` preset durably (tracing is on by default for
   durable runs), collecting the ``ExperimentStarted.trace_path`` from
   the event stream;
2. read ``trace.jsonl`` back and run :func:`repro.obs.sink.validate_spans`
   — the schema must be clean (required fields, unique span ids, one
   trace id, resolvable parents, ``t1 >= t0``);
3. assert the span tree has exactly one ``experiment`` root whose
   direct children cover >= 95% of its wall-clock (the acceptance
   gate), and that trace-derived stage totals reproduce the run's
   ``stage_seconds`` telemetry within 1%;
4. export the Perfetto/chrome://tracing JSON and load it back;
5. re-run with ``REPRO_TRACE=0`` and assert no trace is written.

Exit code 0 = the trace pipeline is sound.  Used by the CI
``obs-smoke`` job; run locally with
``PYTHONPATH=src python scripts/obs_smoke.py [out_dir]``.
"""

import json
import os
import sys
import tempfile

from repro.api import Session
from repro.api.cli import bench_presets
from repro.api.events import ExperimentStarted
from repro.obs.report import build_tree, coverage, stage_totals
from repro.obs.sink import export_perfetto, read_trace, validate_spans


def main() -> int:
    base = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="obs_smoke_")
    spec = bench_presets()["tiny"]
    traced_dir = os.path.join(base, "traced")
    untraced_dir = os.path.join(base, "untraced")

    started = []
    with Session() as session:
        result = session.run(
            spec,
            out_dir=traced_dir,
            progress=lambda e: started.append(e)
            if isinstance(e, ExperimentStarted)
            else None,
        )
    trace_path = os.path.join(traced_dir, "trace.jsonl")
    assert started and started[0].trace_path == trace_path, started
    assert result.trace_path == trace_path, result.trace_path
    assert os.path.exists(trace_path), trace_path

    spans = read_trace(trace_path)
    problems = validate_spans(spans)
    assert not problems, problems[:10]

    roots = build_tree(spans)
    experiment_roots = [r for r in roots if r.name == "experiment"]
    assert len(roots) == len(experiment_roots) == 1, [r.name for r in roots]
    root = experiment_roots[0]
    cov = coverage(root)
    assert cov >= 0.95, f"coverage {cov:.3f} < 0.95"

    from_trace = stage_totals(spans)
    from_telemetry = (result.telemetry or {}).get("stage_seconds", {})
    for name, seconds in from_telemetry.items():
        if name.startswith("train_kernel:"):
            continue  # profiling breakdown; spans emitted only per round
        got = from_trace.get(name, 0.0)
        assert abs(got - seconds) <= max(0.01 * seconds, 1e-6), (
            name,
            got,
            seconds,
        )

    perfetto_path = export_perfetto(trace_path)
    with open(perfetto_path) as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    assert len(events) == len(spans), (len(events), len(spans))
    assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)

    os.environ["REPRO_TRACE"] = "0"
    try:
        with Session() as session:
            session.run(spec, out_dir=untraced_dir)
    finally:
        os.environ.pop("REPRO_TRACE")
    assert not os.path.exists(os.path.join(untraced_dir, "trace.jsonl"))

    print(
        f"obs smoke ok: {len(spans)} spans, coverage {cov:.1%}, "
        f"{len(from_telemetry)} stage totals reproduced, "
        f"perfetto -> {perfetto_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
